"""Ablations of the design choices DESIGN.md calls out.

All on the GTX Titan X (the device the paper analyses most deeply):

* **no-voltage** — disable the voltage steps (V = 1 everywhere): the
  linear-frequency assumption of prior work. Expectation: accuracy degrades,
  most visibly at core frequencies far from the reference.
* **single-utilization** — collapse the six per-component core utilizations
  into one aggregate activity: no per-component decomposition. Expectation:
  accuracy degrades because components have different power weights.
* **training-grid size** — fit on 3 configurations (the bootstrap set), on
  a 3x3 grid and on the full grid. Expectation: accuracy improves with
  coverage; the 3-configuration fit cannot see the voltage curve at all.
* **counter noise** — re-run the whole pipeline with the measurement chain
  noise disabled. Expectation: the validation error collapses to the
  structural model error (~1-3 %), confirming that event inaccuracy — the
  paper's explanation for Kepler — dominates the observed error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import numpy as np

from repro.analysis.validation import validate_model
from repro.config import NOISELESS_SETTINGS
from repro.core.dataset import TrainingDataset, TrainingRow
from repro.core.estimation import ModelEstimator
from repro.core.metrics import UtilizationVector
from repro.experiments.common import Lab, get_lab
from repro.hardware.components import CORE_COMPONENTS, Component
from repro.reporting.tables import format_kv

DEVICE = "GTX Titan X"


@dataclass(frozen=True)
class AblationsResult:
    device: str
    #: variant name -> validation MAE (%).
    mae_percent: Mapping[str, float]

    @property
    def full_model_mae(self) -> float:
        return self.mae_percent["full_model"]

    def degradation(self, variant: str) -> float:
        """MAE increase (percentage points) of a variant vs the full model."""
        return self.mae_percent[variant] - self.full_model_mae


def _aggregate_utilizations(dataset: TrainingDataset) -> TrainingDataset:
    """Collapse the per-component core utilizations into one activity."""
    rows = []
    for row in dataset.rows:
        aggregate = float(
            np.mean([row.utilizations[c] for c in CORE_COMPONENTS])
        )
        values = {component: 0.0 for component in CORE_COMPONENTS}
        values[Component.INT] = aggregate
        values[Component.DRAM] = row.utilizations[Component.DRAM]
        rows.append(
            TrainingRow(
                kernel_name=row.kernel_name,
                config=row.config,
                measured_watts=row.measured_watts,
                utilizations=UtilizationVector(values=values),
            )
        )
    return TrainingDataset(spec=dataset.spec, rows=tuple(rows))


class _AggregatedPredictor:
    """Wraps a model fitted on aggregated utilizations so validation can
    feed it full utilization vectors."""

    def __init__(self, model) -> None:
        self._model = model

    def predict_power(self, utilizations: UtilizationVector, config) -> float:
        aggregate = float(
            np.mean([utilizations[c] for c in CORE_COMPONENTS])
        )
        values = {component: 0.0 for component in CORE_COMPONENTS}
        values[Component.INT] = aggregate
        values[Component.DRAM] = utilizations[Component.DRAM]
        return self._model.predict_power(
            UtilizationVector(values=values), config
        )


def run(lab: Optional[Lab] = None) -> AblationsResult:
    lab = lab or get_lab()
    spec = lab.spec(DEVICE)
    session = lab.session(DEVICE)
    dataset = lab.dataset(DEVICE)
    workloads = lab.workloads(DEVICE)

    mae: Dict[str, float] = {}
    mae["full_model"] = lab.validation(DEVICE).mean_absolute_error_percent

    # --- no voltage modeling -----------------------------------------
    model, _ = ModelEstimator(dataset, model_voltage=False).estimate()
    mae["no_voltage"] = validate_model(
        model, session, workloads
    ).mean_absolute_error_percent

    # --- single aggregated utilization --------------------------------
    aggregated = _aggregate_utilizations(dataset)
    model, _ = ModelEstimator(aggregated).estimate()
    mae["single_utilization"] = validate_model(
        _AggregatedPredictor(model), session, workloads
    ).mean_absolute_error_percent

    # --- training-grid size -------------------------------------------
    estimator = ModelEstimator(dataset)
    bootstrap = dataset.subset(estimator.bootstrap_configurations())
    model, _ = ModelEstimator(bootstrap).estimate()
    mae["grid_3_configs"] = validate_model(
        model, session, workloads
    ).mean_absolute_error_percent

    from repro.core.baselines import AbeLinearModel

    # The estimator anchors V = 1 at the reference configuration, so the
    # sparse grid must contain it.
    grid9 = dataset.subset(
        AbeLinearModel.training_grid(spec) + [spec.reference]
    )
    model, _ = ModelEstimator(grid9).estimate()
    mae["grid_3x3"] = validate_model(
        model, session, workloads
    ).mean_absolute_error_percent

    # --- noiseless measurement chain -----------------------------------
    quiet_lab = Lab(settings=NOISELESS_SETTINGS)
    mae["noiseless"] = quiet_lab.validation(
        DEVICE
    ).mean_absolute_error_percent

    return AblationsResult(device=spec.name, mae_percent=mae)


def main() -> AblationsResult:
    result = run()
    print(f"=== Ablations on {result.device} — validation MAE ===")
    print(
        format_kv(
            {name: f"{value:.2f}%" for name, value in result.mae_percent.items()}
        )
    )
    for variant in ("no_voltage", "single_utilization", "grid_3_configs"):
        print(f"degradation of {variant}: {result.degradation(variant):+.2f} pp")
    return result


if __name__ == "__main__":
    main()
