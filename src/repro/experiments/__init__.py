"""Experiment harness: one module per paper table/figure.

Every module exposes ``run(lab=None)`` returning a structured result object,
and ``main()`` printing the same rows/series the paper reports. The shared
:class:`~repro.experiments.common.Lab` caches simulated devices, training
datasets and fitted models so a full harness run fits each device only once.

====================  =========================================
module                reproduces
====================  =========================================
``table1``            Table I   (performance-event tables)
``table2``            Table II  (device spec sheet)
``table3``            Table III (validation benchmark list)
``fig2``              Fig. 2    (DVFS impact on two applications)
``fig5``              Fig. 5    (microbenchmark suite behaviour)
``fig6``              Fig. 6    (predicted vs measured core voltage)
``fig7``              Fig. 7    (validation accuracy, 3 GPUs)
``fig8``              Fig. 8    (error vs memory frequency)
``fig9``              Fig. 9    (input-size effects + TDP throttling)
``fig10``             Fig. 10   (per-component power breakdown)
``baselines``         Sec. V-B / VI (comparison vs prior models)
``ablations``         design-choice ablations (DESIGN.md)
``discovery``         Sec. III-C (counter identification, L2 peak)
``sensitivity``       microbenchmarking-budget sensitivity
``dvfs_savings``      Sec. V-B use case 3 (measured energy savings)
``noise_sweep``       the Kepler explanation as a noise curve
``transfer``          cross-device transfer (per-device fitting)
``fewshot``           few-shot calibration on synthetic families
====================  =========================================
"""

from repro.experiments.common import Lab, get_lab

__all__ = ["Lab", "get_lab"]
