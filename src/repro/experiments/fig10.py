"""Figure 10 — power breakdown of the validation benchmarks, two configs.

The 26 Table-III workloads on the GTX Titan X at the reference configuration
(975, 3505) and the low-memory configuration (975, 810). Paper observations
carried by the run() result:

* per-benchmark breakdown MAE of 5.2 % at the reference and 8.8 % at the
  low-memory configuration;
* a large constant share: ~80 W at the reference vs ~50 W at the low-memory
  configuration (static + idle + non-modeled components);
* between the two configurations, the DRAM component shrinks dramatically
  while every core-side component stays almost unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.breakdown import BreakdownReport, breakdown_report
from repro.experiments.common import Lab, get_lab
from repro.hardware.components import CORE_COMPONENTS, Component
from repro.hardware.specs import FrequencyConfig
from repro.reporting.tables import format_table

DEVICE = "GTX Titan X"
REFERENCE_CONFIG = FrequencyConfig(975, 3505)
LOW_MEMORY_CONFIG = FrequencyConfig(975, 810)


@dataclass(frozen=True)
class Fig10Result:
    device: str
    reference: BreakdownReport
    low_memory: BreakdownReport

    # ------------------------------------------------------------------
    def dram_power_ratio(self) -> float:
        """Mean DRAM power at 810 MHz relative to 3505 MHz."""
        high = self.reference.component_means()[Component.DRAM]
        low = self.low_memory.component_means()[Component.DRAM]
        return low / high if high > 0 else 0.0

    def core_power_ratio(self) -> float:
        """Mean summed core-component power, low vs reference config."""
        high = sum(
            self.reference.component_means()[c] for c in CORE_COMPONENTS
        )
        low = sum(
            self.low_memory.component_means()[c] for c in CORE_COMPONENTS
        )
        return low / high if high > 0 else 0.0


def run(lab: Optional[Lab] = None) -> Fig10Result:
    lab = lab or get_lab()
    session = lab.session(DEVICE)
    model = lab.model(DEVICE)
    workloads = lab.workloads(DEVICE)
    reference = breakdown_report(model, session, workloads, REFERENCE_CONFIG)
    low_memory = breakdown_report(model, session, workloads, LOW_MEMORY_CONFIG)
    return Fig10Result(
        device=lab.spec(DEVICE).name,
        reference=reference,
        low_memory=low_memory,
    )


def main() -> Fig10Result:
    result = run()
    print(f"=== Fig. 10 — validation breakdown on {result.device} ===")
    for label, report in (
        ("fcore=975, fmem=3505", result.reference),
        ("fcore=975, fmem=810", result.low_memory),
    ):
        print(f"\n--- {label} ---")
        rows = []
        for entry in report.entries:
            cw = entry.component_watts
            rows.append(
                (
                    entry.workload,
                    f"{entry.constant_watts:.0f}",
                    f"{cw[Component.SP]:.1f}", f"{cw[Component.INT]:.1f}",
                    f"{cw[Component.DP]:.1f}", f"{cw[Component.SF]:.1f}",
                    f"{cw[Component.SHARED]:.1f}", f"{cw[Component.L2]:.1f}",
                    f"{cw[Component.DRAM]:.1f}",
                    f"{entry.predicted_watts:.1f}",
                    f"{entry.measured_watts:.1f}",
                )
            )
        print(
            format_table(
                ["workload", "const", "SP", "INT", "DP", "SF", "SH", "L2",
                 "DRAM", "pred W", "meas W"],
                rows,
            )
        )
        print(
            f"MAE {report.mean_absolute_error_percent:.1f}%  "
            f"constant (mean) {report.mean_constant_watts:.1f} W"
        )
    print(
        f"\nDRAM power ratio (810/3505): {result.dram_power_ratio():.2f}; "
        f"core components ratio: {result.core_power_ratio():.2f} "
        "(paper: DRAM varies strongly, core components stay ~constant)"
    )
    return result


if __name__ == "__main__":
    main()
