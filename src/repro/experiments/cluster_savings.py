"""Fleet energy savings under deadline constraints — the cluster sweep.

Runs every fleet scheduler over every stock traffic shape on one
heterogeneous fleet and reports fleet energy versus the max-clocks FIFO
baseline plus deadline-miss rates — the paper's per-kernel power model,
cashed out as datacenter-level numbers. A chaos scenario (seeded node
failures with job rescheduling) rides along to prove the simulator keeps
its completion guarantee under churn.

Full mode drives a 2048-node fleet (800 Titan Xp + 800 GTX Titan X +
448 Tesla K40c) through 12 000 jobs per shape; ``--quick`` shrinks that
to 20 nodes and 240 jobs for CI. Everything is virtual-time and seeded:
the only wall-clock numbers are the ``wall_seconds`` timings, which the
determinism tests scrub.

Run via ``python -m repro.cli experiment cluster_savings`` or directly
as ``python -m repro.experiments.cluster_savings [--quick] [--output
PATH]``; the gated benchmark wrapper is ``python -m repro.cli cluster
--bench`` (see :mod:`repro.cluster.bench`).
"""

from __future__ import annotations

import argparse
import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.cluster.faults import NodeFailurePlan
from repro.cluster.jobs import (
    JobTrace,
    fleet_reference_seconds,
    generate_job_trace,
)
from repro.cluster.node import DeviceOracle, build_fleet
from repro.cluster.schedulers import SCHEDULER_NAMES, scheduler_by_name
from repro.cluster.simulator import ClusterReport, ClusterSimulator
from repro.config import MASTER_SEED
from repro.errors import ValidationError
from repro.experiments.common import DEVICE_NAMES, Lab, get_lab
from repro.reporting.tables import format_table
from repro.traffic import SHAPE_NAMES

#: Schema identifier of the JSON report this experiment writes.
REPORT_SCHEMA = "repro.cluster_savings/v1"

#: The baseline every savings number is relative to.
BASELINE_SCHEDULER = "max-clocks"

#: Full-tier fleet: thousands of nodes, K40c as the TDP-bound minority.
FULL_MIX = {"Titan Xp": 800, "GTX Titan X": 800, "Tesla K40c": 448}
FULL_JOBS = 12_000

#: CI-tier fleet, same 40/40/20 proportions.
QUICK_MIX = {"Titan Xp": 8, "GTX Titan X": 8, "Tesla K40c": 4}
QUICK_JOBS = 240
QUICK_WORKLOADS = 8

#: Virtual horizon arrivals span (seconds).
HORIZON_S = 1.0

#: Chaos scenario: seeded node churn during the burst shape.
CHAOS_MTBF_S = 0.5
CHAOS_MTTR_S = 0.1


def default_mix(total_nodes: int) -> Dict[str, int]:
    """The canonical 40/40/20 heterogeneous split of ``total_nodes``."""
    if total_nodes < len(DEVICE_NAMES):
        raise ValidationError(
            f"fleet needs at least {len(DEVICE_NAMES)} nodes, "
            f"got {total_nodes}"
        )
    weights = {"Titan Xp": 0.4, "GTX Titan X": 0.4, "Tesla K40c": 0.2}
    mix = {
        device: max(1, int(total_nodes * weight))
        for device, weight in weights.items()
    }
    # Hand rounding leftovers to the first device, deterministically.
    mix["Titan Xp"] += total_nodes - sum(mix.values())
    return mix


@dataclass(frozen=True)
class ClusterSavingsResult:
    """One full sweep: per-shape per-scheduler reports plus the chaos run."""

    device_mix: Tuple[Tuple[str, int], ...]
    n_jobs: int
    seed: int
    #: ``shapes[shape][scheduler]`` -> finished :class:`ClusterReport`.
    shapes: Mapping[str, Mapping[str, ClusterReport]]
    #: ``(shape, scheduler)`` -> wall seconds of that simulation.
    wall_seconds: Mapping[Tuple[str, str], float]
    chaos: ClusterReport

    def savings(self, shape: str, scheduler: str) -> float:
        """Fleet-energy saving of a scheduler vs the max-clocks baseline."""
        baseline = self.shapes[shape][BASELINE_SCHEDULER].fleet_energy_joules
        if baseline <= 0:
            raise ValidationError(
                f"baseline fleet energy for shape {shape!r} is not positive"
            )
        return 1.0 - self.shapes[shape][scheduler].fleet_energy_joules / baseline

    def headline(self, scheduler: str = "edf") -> Dict[str, float]:
        """Worst-case-over-shapes summary of one scheduler."""
        return {
            "scheduler": scheduler,
            "min_savings_vs_max_clocks": min(
                self.savings(shape, scheduler) for shape in self.shapes
            ),
            "max_deadline_miss_rate": max(
                self.shapes[shape][scheduler].miss_rate
                for shape in self.shapes
            ),
            "baseline_max_deadline_miss_rate": max(
                self.shapes[shape][BASELINE_SCHEDULER].miss_rate
                for shape in self.shapes
            ),
        }

    def to_dict(self) -> Dict[str, object]:
        shapes: Dict[str, object] = {}
        for shape, by_scheduler in self.shapes.items():
            shapes[shape] = {
                scheduler: {
                    "fleet_energy_joules": report.fleet_energy_joules,
                    "savings_vs_max_clocks": self.savings(shape, scheduler),
                    "deadline_misses": report.deadline_misses,
                    "deadline_miss_rate": report.miss_rate,
                    "jobs": report.n_jobs,
                    "rescheduled": report.rescheduled,
                    "node_failures": report.node_failures,
                    "makespan_s": report.makespan_s,
                    "energy_by_device": dict(report.energy_by_device),
                    "wall_seconds": self.wall_seconds[(shape, scheduler)],
                }
                for scheduler, report in by_scheduler.items()
            }
        return {
            "device_mix": dict(self.device_mix),
            "nodes": sum(count for _, count in self.device_mix),
            "jobs": self.n_jobs,
            "seed": self.seed,
            "horizon_s": HORIZON_S,
            "shapes": shapes,
            "chaos": {
                "shape": self.chaos.shape_name,
                "scheduler": self.chaos.scheduler,
                "mtbf_s": CHAOS_MTBF_S,
                "mttr_s": CHAOS_MTTR_S,
                "node_failures": self.chaos.node_failures,
                "rescheduled": self.chaos.rescheduled,
                "completed": self.chaos.n_jobs,
                "deadline_miss_rate": self.chaos.miss_rate,
            },
            "headline": self.headline(),
        }


def build_oracles(
    kernels: Sequence, lab: Optional[Lab] = None, recorder=None
) -> Dict[str, DeviceOracle]:
    """One fitted oracle per device type, over the job kernel pool."""
    lab = lab or get_lab()
    return {
        device: DeviceOracle.fit(device, kernels, lab=lab, recorder=recorder)
        for device in DEVICE_NAMES
    }


def run(
    lab: Optional[Lab] = None,
    quick: bool = False,
    seed: int = MASTER_SEED,
    mix: Optional[Mapping[str, int]] = None,
    n_jobs: Optional[int] = None,
    schedulers: Sequence[str] = SCHEDULER_NAMES,
    recorder=None,
) -> ClusterSavingsResult:
    """The sweep: every scheduler over every stock shape, plus chaos.

    All simulations of one shape share the same trace and the same fresh
    fleet (nodes are reset per run), so energy differences are purely
    scheduling. The chaos run replays the burst trace under a seeded
    :class:`~repro.cluster.faults.NodeFailurePlan` with the ``edf``
    scheduler.
    """
    lab = lab or get_lab()
    kernels = tuple(lab.workloads(DEVICE_NAMES[0]))
    if quick:
        kernels = kernels[:QUICK_WORKLOADS]
    mix = dict(mix) if mix is not None else (dict(QUICK_MIX) if quick else dict(FULL_MIX))
    n_jobs = n_jobs if n_jobs is not None else (QUICK_JOBS if quick else FULL_JOBS)
    if BASELINE_SCHEDULER not in schedulers:
        raise ValidationError(
            f"sweep needs the {BASELINE_SCHEDULER!r} baseline scheduler"
        )

    oracles = build_oracles(kernels, lab=lab, recorder=recorder)
    references = fleet_reference_seconds(
        [oracles[device] for device in sorted(oracles)], kernels
    )
    nodes = build_fleet(oracles, mix)

    shapes: Dict[str, Dict[str, ClusterReport]] = {}
    walls: Dict[Tuple[str, str], float] = {}
    traces: Dict[str, JobTrace] = {}
    for shape in SHAPE_NAMES:
        trace = generate_job_trace(
            shape, n_jobs, seed, kernels, references, horizon_s=HORIZON_S
        )
        traces[shape] = trace
        by_scheduler: Dict[str, ClusterReport] = {}
        for name in schedulers:
            simulator = ClusterSimulator(
                nodes, scheduler_by_name(name), recorder=recorder
            )
            started = time.perf_counter()
            by_scheduler[name] = simulator.run(trace)
            walls[(shape, name)] = time.perf_counter() - started
        shapes[shape] = by_scheduler

    chaos_sim = ClusterSimulator(
        nodes,
        scheduler_by_name("edf"),
        recorder=recorder,
        failure_plan=NodeFailurePlan(
            mtbf_s=CHAOS_MTBF_S, mttr_s=CHAOS_MTTR_S, seed=seed
        ),
    )
    chaos = chaos_sim.run(traces["burst"])

    return ClusterSavingsResult(
        device_mix=tuple(sorted((d, int(c)) for d, c in mix.items())),
        n_jobs=n_jobs,
        seed=seed,
        shapes=shapes,
        wall_seconds=walls,
        chaos=chaos,
    )


def summarize(result: ClusterSavingsResult) -> str:
    """Human-readable per-shape scheduler comparison."""
    rows = []
    for shape, by_scheduler in result.shapes.items():
        for scheduler, report in by_scheduler.items():
            rows.append(
                (
                    shape,
                    scheduler,
                    f"{report.fleet_energy_joules:.1f}",
                    f"{result.savings(shape, scheduler) * 100:.1f}%",
                    f"{report.miss_rate * 100:.2f}%",
                    f"{report.makespan_s:.3f}",
                )
            )
    return format_table(
        ["shape", "scheduler", "energy (J)", "savings", "miss rate", "makespan (s)"],
        rows,
    )


def main(argv: Optional[Sequence[str]] = None) -> ClusterSavingsResult:
    # parse_known_args: the CLI's `experiment` command calls main() with
    # its own leftovers still in sys.argv.
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--seed", type=int, default=MASTER_SEED)
    parser.add_argument("--jobs", type=int, default=None)
    parser.add_argument(
        "--nodes",
        type=int,
        default=None,
        help="total fleet size (split 40/40/20 across device types)",
    )
    parser.add_argument("--output", default="CLUSTER_savings.json")
    args, _ = parser.parse_known_args(argv)

    mix = default_mix(args.nodes) if args.nodes is not None else None
    result = run(
        quick=args.quick, seed=args.seed, mix=mix, n_jobs=args.jobs
    )
    print("=== Cluster energy scheduling (fitted model as oracle) ===")
    print(summarize(result))
    headline = result.headline()
    print(
        f"\nedf worst-case over shapes: "
        f"{headline['min_savings_vs_max_clocks'] * 100:.1f}% savings, "
        f"{headline['max_deadline_miss_rate'] * 100:.2f}% miss rate "
        f"(baseline {headline['baseline_max_deadline_miss_rate'] * 100:.2f}%)"
    )
    chaos = result.chaos
    print(
        f"chaos: {chaos.node_failures} failures, {chaos.rescheduled} "
        f"rescheduled, all {chaos.n_jobs} jobs completed"
    )

    report = {"schema": REPORT_SCHEMA, "quick": args.quick}
    report.update(result.to_dict())
    path = Path(args.output)
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nreport written to {path}")
    return result


if __name__ == "__main__":
    main()
