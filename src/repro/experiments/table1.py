"""Table I — performance events per device.

Dumps the raw event set each architecture exposes for every metric of the
model, mirroring the layout of Table I (including the undisclosed numeric
event IDs and their per-device prefixes), and verifies each metric is
resolvable through the CUPTI layer on every device.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Tuple

from repro.driver.events import EVENT_ID_PREFIXES, EventTable, event_table_for
from repro.experiments.common import DEVICE_NAMES, Lab, get_lab
from repro.reporting.tables import format_table

#: Metric rows of Table I, in paper order.
METRIC_FIELDS = (
    ("ACycles", "active_cycles"),
    ("ABand_L2 (read)", "l2_read_sector_queries"),
    ("ABand_L2 (write)", "l2_write_sector_queries"),
    ("ABand_Shared (load)", "shared_load_transactions"),
    ("ABand_Shared (store)", "shared_store_transactions"),
    ("ABand_DRAM (read)", "dram_read_sectors"),
    ("ABand_DRAM (write)", "dram_write_sectors"),
    ("AWarps_SP/INT", "warps_sp_int"),
    ("AWarps_DP", "warps_dp"),
    ("AWarps_SF", "warps_sf"),
    ("Inst_INT", "inst_int"),
    ("Inst_SP", "inst_sp"),
)


@dataclass(frozen=True)
class Table1Result:
    #: device name -> its event table.
    tables: Mapping[str, EventTable]
    prefixes: Mapping[str, int]

    def events_for(self, device: str, metric_field: str) -> Tuple[str, ...]:
        return getattr(self.tables[device], metric_field)


def run(lab: Optional[Lab] = None) -> Table1Result:
    lab = lab or get_lab()
    tables = {
        lab.spec(name).name: event_table_for(lab.spec(name).architecture)
        for name in DEVICE_NAMES
    }
    return Table1Result(tables=tables, prefixes=dict(EVENT_ID_PREFIXES))


def main() -> Table1Result:
    result = run()
    print("=== Table I — performance events per device ===")
    rows = []
    for label, field in METRIC_FIELDS:
        row = [label]
        for device in result.tables:
            events = result.events_for(device, field)
            row.append(", ".join(events))
        rows.append(row)
    print(format_table(["metric"] + list(result.tables), rows))
    print("\nundisclosed-event ID prefixes:", dict(result.prefixes))
    return result


if __name__ == "__main__":
    main()
