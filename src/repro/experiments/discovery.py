"""Sec. III-C methodology — identifying undisclosed counters & the L2 peak.

Not a numbered figure, but the step that *produces* Table I: the paper's
authors had to discover which raw numeric events mean what ("selected
through an extensive experimental testing in order to assess their
meaning") and to measure the L2 peak bandwidth empirically. This experiment
runs that methodology end-to-end on every device:

* anonymize the CUPTI event names;
* run the probe campaign and identify every counter;
* grade the identification against the hidden mapping;
* measure the L2 peak bandwidth from the L2 microbenchmarks and compare it
  with the device's true capability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Tuple

from repro.discovery import (
    AnonymizedCupti,
    EventIdentifier,
    measure_l2_peak_bytes_per_cycle,
)
from repro.discovery.identify import IdentificationResult
from repro.experiments.common import DEVICE_NAMES, Lab, get_lab
from repro.reporting.tables import format_table


@dataclass(frozen=True)
class DeviceDiscovery:
    device: str
    architecture: str
    result: IdentificationResult
    identification_grade: float
    counter_count: int
    measured_l2_bytes_per_cycle: float
    true_l2_bytes_per_cycle: float

    @property
    def l2_relative_error(self) -> float:
        return (
            abs(self.measured_l2_bytes_per_cycle - self.true_l2_bytes_per_cycle)
            / self.true_l2_bytes_per_cycle
        )


@dataclass(frozen=True)
class DiscoveryResult:
    devices: Tuple[DeviceDiscovery, ...]

    def device(self, name: str) -> DeviceDiscovery:
        for entry in self.devices:
            if entry.device == name:
                return entry
        raise KeyError(name)

    def grades(self) -> Mapping[str, float]:
        return {d.device: d.identification_grade for d in self.devices}


def run(lab: Optional[Lab] = None) -> DiscoveryResult:
    lab = lab or get_lab()
    devices = []
    for name in DEVICE_NAMES:
        spec = lab.spec(name)
        gpu = lab.gpu(name)
        cupti = AnonymizedCupti(gpu)
        result = EventIdentifier(cupti, spec).identify()
        grade = result.grade(cupti.debug_true_mapping())
        measured_peak = measure_l2_peak_bytes_per_cycle(lab.session(name))
        devices.append(
            DeviceDiscovery(
                device=spec.name,
                architecture=spec.architecture,
                result=result,
                identification_grade=grade,
                counter_count=len(cupti.event_ids),
                measured_l2_bytes_per_cycle=measured_peak,
                true_l2_bytes_per_cycle=spec.l2_bytes_per_cycle,
            )
        )
    return DiscoveryResult(devices=tuple(devices))


def main() -> DiscoveryResult:
    result = run()
    print("=== Sec. III-C — counter identification & L2 peak measurement ===")
    rows = []
    for entry in result.devices:
        rows.append(
            (
                entry.device,
                entry.architecture,
                entry.counter_count,
                f"{100*entry.identification_grade:.0f}%",
                len(entry.result.unidentified),
                f"{entry.measured_l2_bytes_per_cycle:.0f}",
                f"{entry.true_l2_bytes_per_cycle:.0f}",
            )
        )
    print(
        format_table(
            ["device", "arch", "counters", "identified", "unknown",
             "L2 peak meas (B/cyc)", "L2 peak true"],
            rows,
        )
    )
    return result


if __name__ == "__main__":
    main()
