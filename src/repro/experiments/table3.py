"""Table III — the validation benchmark list.

26 applications from 4 suites (27 workload entries: K-Means contributes two
kernels, as in the paper's figures), with their utilization signatures at
the profiling device's reference configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Tuple

from repro.core.metrics import MetricCalculator, UtilizationVector
from repro.experiments.common import Lab, get_lab
from repro.hardware.components import Component
from repro.kernels.kernel import KernelDescriptor
from repro.reporting.tables import format_table
from repro.workloads.registry import APPLICATION_COUNT, WORKLOAD_COUNT

DEVICE = "GTX Titan X"


@dataclass(frozen=True)
class Table3Result:
    workloads: Tuple[KernelDescriptor, ...]
    utilizations: Mapping[str, UtilizationVector]

    def suites(self) -> Mapping[str, Tuple[str, ...]]:
        grouped: dict = {}
        for kernel in self.workloads:
            grouped.setdefault(kernel.suite, []).append(kernel.name)
        return {suite: tuple(names) for suite, names in grouped.items()}

    @property
    def workload_count(self) -> int:
        return len(self.workloads)


def run(lab: Optional[Lab] = None) -> Table3Result:
    lab = lab or get_lab()
    session = lab.session(DEVICE)
    calculator = MetricCalculator(lab.spec(DEVICE))
    workloads = tuple(lab.workloads(DEVICE))
    utilizations = {
        kernel.name: calculator.utilizations(session.collect_events(kernel))
        for kernel in workloads
    }
    return Table3Result(workloads=workloads, utilizations=utilizations)


def main() -> Table3Result:
    result = run()
    print("=== Table III — validation benchmarks ===")
    print(
        f"{APPLICATION_COUNT} applications / {WORKLOAD_COUNT} workload "
        "entries from 4 suites\n"
    )
    rows = []
    for kernel in result.workloads:
        u = result.utilizations[kernel.name]
        rows.append(
            (
                kernel.suite,
                kernel.name,
                f"{u[Component.SP]:.2f}", f"{u[Component.INT]:.2f}",
                f"{u[Component.DP]:.2f}", f"{u[Component.SF]:.2f}",
                f"{u[Component.SHARED]:.2f}", f"{u[Component.L2]:.2f}",
                f"{u[Component.DRAM]:.2f}",
            )
        )
    print(
        format_table(
            ["suite", "application", "SP", "INT", "DP", "SF", "SH", "L2",
             "DRAM"],
            rows,
        )
    )
    return result


if __name__ == "__main__":
    main()
