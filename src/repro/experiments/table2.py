"""Table II — the device specification sheet.

Prints the same rows Table II reports for the three simulated devices and
returns them structured for the benchmark assertions (frequency grid sizes,
defaults, unit counts, TDP).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Tuple

from repro.experiments.common import DEVICE_NAMES, Lab, get_lab
from repro.hardware.specs import GPUSpec
from repro.reporting.tables import format_table


@dataclass(frozen=True)
class Table2Result:
    specs: Tuple[GPUSpec, ...]

    def spec(self, name: str) -> GPUSpec:
        for spec in self.specs:
            if spec.name == name:
                return spec
        raise KeyError(name)

    def grid_sizes(self) -> Mapping[str, Tuple[int, int]]:
        """device -> (core levels, memory levels)."""
        return {
            spec.name: (
                len(spec.core_frequencies_mhz),
                len(spec.memory_frequencies_mhz),
            )
            for spec in self.specs
        }


def run(lab: Optional[Lab] = None) -> Table2Result:
    lab = lab or get_lab()
    return Table2Result(
        specs=tuple(lab.spec(name) for name in DEVICE_NAMES)
    )


def main() -> Table2Result:
    result = run()
    print("=== Table II — GPU devices ===")
    rows = []
    attributes = (
        ("Base architecture", lambda s: s.architecture),
        ("Compute capability", lambda s: s.compute_capability),
        ("Memory frequencies (MHz)",
         lambda s: "{" + ", ".join(f"{f:.0f}" for f in s.memory_frequencies_mhz) + "}"),
        ("Core freq. range (MHz)",
         lambda s: f"[{max(s.core_frequencies_mhz):.0f}:{min(s.core_frequencies_mhz):.0f}]"),
        ("Number of core freq. levels", lambda s: len(s.core_frequencies_mhz)),
        ("Default Mem. Frequency", lambda s: f"{s.default_memory_mhz:.0f}"),
        ("Default Core Frequency", lambda s: f"{s.default_core_mhz:.0f}"),
        ("Threads per warp", lambda s: s.warp_size),
        ("Number of SMs", lambda s: s.sm_count),
        ("Memory Bus Width", lambda s: f"{s.memory_bus_width_bytes}B"),
        ("Shared mem. banks", lambda s: s.shared_memory_banks),
        ("SP/INT Units/SM", lambda s: s.sp_int_units_per_sm),
        ("DP Units/SM", lambda s: s.dp_units_per_sm),
        ("SF Units/SM", lambda s: s.sf_units_per_sm),
        ("TDP (W)", lambda s: f"{s.tdp_watts:.0f}"),
    )
    for label, getter in attributes:
        rows.append([label] + [getter(spec) for spec in result.specs])
    print(format_table(["attribute"] + [s.name for s in result.specs], rows))
    return result


if __name__ == "__main__":
    main()
