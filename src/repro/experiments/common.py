"""Shared experiment context.

:class:`Lab` owns one simulated device, profiling session, training dataset
and fitted model per GPU, created lazily and cached — fitting the model for
the GTX Titan X takes a few seconds, and most experiments need it. Use
:func:`get_lab` for the process-wide instance (experiments and benchmarks
compose cheaply); construct a private ``Lab`` for isolation.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Sequence, Tuple

from repro.analysis.validation import ValidationResult, validate_model
from repro.config import DEFAULT_SETTINGS, SimulationSettings
from repro.core.dataset import TrainingDataset, collect_training_dataset
from repro.core.estimation import EstimatorReport, ModelEstimator
from repro.core.model import DVFSPowerModel
from repro.core.perf_estimation import (
    DevicePerformanceModel,
    PerformanceEstimator,
    PerformanceEstimatorReport,
)
from repro.driver.session import ProfilingSession
from repro.hardware.families import FamilyMember
from repro.hardware.gpu import SimulatedGPU
from repro.hardware.specs import GPUSpec, gpu_spec_by_name
from repro.kernels.kernel import KernelDescriptor
from repro.microbench import build_suite
from repro.workloads import all_workloads

#: Device names in the order the paper reports them.
DEVICE_NAMES = ("Titan Xp", "GTX Titan X", "Tesla K40c")


class Lab:
    """Lazily-built, cached simulation context for the experiments.

    All lazily-built caches are guarded by one reentrant lock, so a
    ``Lab`` may be shared by concurrent threads (e.g. experiments driven
    from a thread pool, or pytest-xdist-style in-process parallelism):
    each artifact is built exactly once and every caller sees the same
    instance. The lock is held across builds, so two threads asking for
    the same device's model serialize rather than fitting it twice.
    """

    def __init__(self, settings: SimulationSettings = DEFAULT_SETTINGS) -> None:
        self.settings = settings
        # Reentrant: model() -> dataset() -> session() -> gpu() nest.
        self._lock = threading.RLock()
        self._gpus: Dict[str, SimulatedGPU] = {}
        self._sessions: Dict[str, ProfilingSession] = {}
        self._datasets: Dict[str, TrainingDataset] = {}
        self._models: Dict[str, Tuple[DVFSPowerModel, EstimatorReport]] = {}
        self._performance: Dict[
            str, Tuple[DevicePerformanceModel, PerformanceEstimatorReport]
        ] = {}
        self._validations: Dict[str, ValidationResult] = {}
        self._suite: Optional[Tuple[KernelDescriptor, ...]] = None
        self._members: Dict[str, FamilyMember] = {}

    # ------------------------------------------------------------------
    def register_member(self, member: FamilyMember) -> str:
        """Make a synthetic family member resolvable by device name.

        Once registered, every Lab accessor — ``gpu``/``session``/
        ``dataset``/``model``/``validation`` and the cluster's
        ``DeviceOracle.fit`` — works on the member's name exactly as on
        the paper's three devices. Returns the registered name.
        """
        with self._lock:
            self._members[member.spec.name.lower()] = member
        return member.spec.name

    def spec(self, device: str) -> GPUSpec:
        with self._lock:
            member = self._members.get(device.strip().lower())
        if member is not None:
            return member.spec
        return gpu_spec_by_name(device)

    def gpu(self, device: str) -> SimulatedGPU:
        name = self.spec(device).name
        with self._lock:
            if name not in self._gpus:
                member = self._members.get(name.lower())
                if member is not None:
                    self._gpus[name] = member.build_gpu(
                        settings=self.settings
                    )
                else:
                    self._gpus[name] = SimulatedGPU(
                        self.spec(name), settings=self.settings
                    )
            return self._gpus[name]

    def session(self, device: str) -> ProfilingSession:
        name = self.spec(device).name
        with self._lock:
            if name not in self._sessions:
                self._sessions[name] = ProfilingSession(self.gpu(name))
            return self._sessions[name]

    # ------------------------------------------------------------------
    @property
    def suite(self) -> Tuple[KernelDescriptor, ...]:
        """The 83-microbenchmark suite (shared across devices)."""
        with self._lock:
            if self._suite is None:
                self._suite = build_suite()
            return self._suite

    def dataset(self, device: str) -> TrainingDataset:
        """Training dataset: full suite x full V-F grid of the device."""
        name = self.spec(device).name
        with self._lock:
            if name not in self._datasets:
                self._datasets[name] = collect_training_dataset(
                    self.session(name), self.suite
                )
            return self._datasets[name]

    def model(self, device: str) -> DVFSPowerModel:
        return self._fitted(device)[0]

    def report(self, device: str) -> EstimatorReport:
        return self._fitted(device)[1]

    def _fitted(self, device: str) -> Tuple[DVFSPowerModel, EstimatorReport]:
        name = self.spec(device).name
        with self._lock:
            if name not in self._models:
                estimator = ModelEstimator(self.dataset(name))
                self._models[name] = estimator.estimate()
            return self._models[name]

    def performance_model(self, device: str) -> DevicePerformanceModel:
        """Fitted runtime model over the microbenchmark suite."""
        return self._fitted_performance(device)[0]

    def performance_report(self, device: str) -> PerformanceEstimatorReport:
        return self._fitted_performance(device)[1]

    def _fitted_performance(
        self, device: str
    ) -> Tuple[DevicePerformanceModel, PerformanceEstimatorReport]:
        name = self.spec(device).name
        with self._lock:
            if name not in self._performance:
                estimator = PerformanceEstimator(
                    self.dataset(name), self.session(name), self.suite
                )
                self._performance[name] = estimator.estimate()
            return self._performance[name]

    # ------------------------------------------------------------------
    def workloads(self, device: str) -> Sequence[KernelDescriptor]:
        """The Table-III validation workloads (profiles are device-agnostic
        descriptors; the same set runs on every simulated GPU)."""
        del device  # Workloads are shared; parameter kept for symmetry.
        return all_workloads()

    def validation(self, device: str) -> ValidationResult:
        """Proposed-model validation sweep over the full grid (Fig. 7)."""
        name = self.spec(device).name
        with self._lock:
            if name not in self._validations:
                self._validations[name] = validate_model(
                    self.model(name),
                    self.session(name),
                    self.workloads(name),
                )
            return self._validations[name]


_LAB: Optional[Lab] = None
_LAB_LOCK = threading.Lock()


def get_lab() -> Lab:
    """The process-wide shared :class:`Lab`.

    There is exactly one instance per process; every experiment, benchmark
    and test that calls this shares its caches (and its lock). Creation is
    itself thread-safe.
    """
    global _LAB
    with _LAB_LOCK:
        if _LAB is None:
            _LAB = Lab()
        return _LAB
