"""Few-shot calibration — how much profiling does a new device need?

The transfer experiment (:mod:`repro.experiments.transfer`) shows the
zero-probe answer: parameter vectors do not travel between architectures.
This experiment sweeps the middle ground on the synthetic device families
of :mod:`repro.hardware.families`: for each generated device, fit the
power model from only ``k`` calibration microbenchmarks (each measured
over the device's full V-F grid, exactly like a real shortened campaign),
grade it on the Table-III workloads, and find the probe budget at which
the MAE enters the seed device's Table-III band.

The calibration subset of size ``k`` is a deterministic round-robin over
the Fig. 5 microbenchmark groups (stressing distinct components early),
middle-intensity kernels first — the schedule a field engineer would
actually run. Budgets below :data:`MIN_PROBES` leave the 11-parameter
model under-determined and are rejected.

Run via ``python -m repro.cli fewshot [--quick]`` or
``python -m repro.experiments.fewshot``. The JSON report
(:data:`REPORT_SCHEMA`) records, per device, the zero-shot transplant
MAE, the probe-budget-vs-MAE curve and the band-crossing budget; ``main``
exits non-zero when fewer than :data:`GATE_MIN_DEVICES` devices across
fewer than :data:`GATE_MIN_NODES` tech nodes reach their bands — the CI
gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.validation import validate_model
from repro.core.estimation import ModelEstimator
from repro.errors import EstimationError, ValidationError
from repro.experiments.common import Lab, get_lab
from repro.experiments.transfer import transplant
from repro.hardware.families import FamilyMember, standard_members
from repro.hardware.specs import FrequencyConfig
from repro.microbench.suite import MICROBENCHMARK_GROUPS, suite_group
from repro.reporting.tables import format_table

#: Schema identifier of the JSON report this experiment writes.
REPORT_SCHEMA = "repro.fewshot/v1"

#: Smallest calibration campaign that determines the 11-parameter model.
MIN_PROBES = 4

#: Probe budgets swept in full mode (83 = the whole Fig. 5 suite).
PROBE_BUDGETS: Tuple[int, ...] = (4, 6, 8, 12, 20, 40, 83)

#: Budgets and validation thinning of the CI tier.
QUICK_BUDGETS: Tuple[int, ...] = (4, 6, 12, 83)
QUICK_WORKLOADS = 12
QUICK_CONFIG_STRIDE = 2

#: Table-III MAE bands (expected MAE + reporting tolerance, in percent)
#: keyed by seed device — a synthetic member inherits its seed's band.
TABLE3_BANDS_PERCENT: Dict[str, float] = {
    "Titan Xp": 6.89,
    "GTX Titan X": 6.59,
    "Tesla K40c": 13.26,
}

#: Report-gate floors (the ISSUE's acceptance bar).
GATE_MIN_DEVICES = 6
GATE_MIN_NODES = 3

#: Round-robin order: groups stressing distinct components first, so small
#: budgets already cover compute, DRAM and the cache hierarchy.
GROUP_ORDER: Tuple[str, ...] = (
    "mix", "dram", "sp", "l2", "int", "shared", "dp", "sf", "idle",
)


def probe_schedule(k: int) -> Tuple[str, ...]:
    """The names of the first ``k`` calibration microbenchmarks.

    Deterministic: round-robin over :data:`GROUP_ORDER`, each group
    visited middle-intensity kernel first, then laddering outward — the
    middle of an intensity ladder is the most informative single probe for
    a component, the extremes refine it.
    """
    if not MIN_PROBES <= k <= sum(MICROBENCHMARK_GROUPS.values()):
        raise ValidationError(
            f"probe budget must be in [{MIN_PROBES}, "
            f"{sum(MICROBENCHMARK_GROUPS.values())}], got {k}"
        )
    ladders = []
    for group in GROUP_ORDER:
        kernels = suite_group(group)
        order = sorted(
            range(len(kernels)), key=lambda i: abs(i - len(kernels) // 2)
        )
        ladders.append([kernels[i].name for i in order])
    chosen: List[str] = []
    round_index = 0
    while len(chosen) < k:
        progressed = False
        for ladder in ladders:
            if round_index < len(ladder):
                chosen.append(ladder[round_index])
                progressed = True
                if len(chosen) >= k:
                    break
        if not progressed:  # pragma: no cover - k is bounded by the suite
            break
        round_index += 1
    return tuple(chosen)


@dataclass(frozen=True)
class ProbePoint:
    """MAE of the model fitted from ``budget`` calibration kernels.

    ``mae_percent`` is None when the truncated campaign could not fit at
    all (e.g. a power-capped device whose chosen kernels all throttled
    away from the reference configuration).
    """

    budget: int
    mae_percent: Optional[float]


@dataclass(frozen=True)
class DeviceFewshotResult:
    """One synthetic device's probe-budget sweep."""

    device: str
    family: str
    seed_device: str
    table: str
    node_nm: int
    band_percent: float
    transplant_mae_percent: float
    curve: Tuple[ProbePoint, ...]

    @property
    def full_mae_percent(self) -> Optional[float]:
        return self.curve[-1].mae_percent

    @property
    def probes_to_band(self) -> Optional[int]:
        """Smallest swept budget whose MAE enters the band, or None."""
        for point in self.curve:
            if point.mae_percent is not None and (
                point.mae_percent <= self.band_percent
            ):
                return point.budget
        return None

    @property
    def in_band(self) -> bool:
        return self.probes_to_band is not None

    def to_dict(self) -> Dict[str, object]:
        return {
            "device": self.device,
            "family": self.family,
            "seed_device": self.seed_device,
            "table": self.table,
            "node_nm": self.node_nm,
            "band_percent": self.band_percent,
            "transplant_mae_percent": self.transplant_mae_percent,
            "curve": [
                {"budget": point.budget, "mae_percent": point.mae_percent}
                for point in self.curve
            ],
            "probes_to_band": self.probes_to_band,
            "in_band": self.in_band,
        }


@dataclass(frozen=True)
class FewshotResult:
    """The whole fleet's sweep."""

    devices: Tuple[DeviceFewshotResult, ...]
    budgets: Tuple[int, ...]
    quick: bool

    @property
    def devices_in_band(self) -> int:
        return sum(1 for device in self.devices if device.in_band)

    @property
    def nodes_in_band(self) -> int:
        return len({d.node_nm for d in self.devices if d.in_band})

    @property
    def passes_gate(self) -> bool:
        return (
            self.devices_in_band >= GATE_MIN_DEVICES
            and self.nodes_in_band >= GATE_MIN_NODES
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": REPORT_SCHEMA,
            "quick": self.quick,
            "budgets": list(self.budgets),
            "devices_in_band": self.devices_in_band,
            "nodes_in_band": self.nodes_in_band,
            "passes_gate": self.passes_gate,
            "devices": [device.to_dict() for device in self.devices],
        }


def sweep_device(
    lab: Lab,
    member: FamilyMember,
    budgets: Sequence[int] = PROBE_BUDGETS,
    quick: bool = False,
) -> DeviceFewshotResult:
    """Probe-budget sweep of one synthetic device.

    The full campaign is collected once (through the Lab cache); every
    budget fits on a kernel-filtered view of it, so the sweep costs one
    campaign plus ``len(budgets)`` cheap fits. The zero-probe baseline is
    the seed device's own fitted model transplanted onto the member's grid
    (V = 1), exactly the transfer experiment's construction.
    """
    name = lab.register_member(member)
    session = lab.session(name)
    dataset = lab.dataset(name)
    workloads = list(lab.workloads(name))
    configs: Optional[Sequence[FrequencyConfig]] = None
    if quick:
        workloads = workloads[:QUICK_WORKLOADS]
        configs = session.gpu.spec.all_configurations()[::QUICK_CONFIG_STRIDE]

    transplanted = transplant(lab.model(member.seed_device), lab, name)
    transplant_mae = validate_model(
        transplanted, session, workloads, configs
    ).mean_absolute_error_percent

    curve: List[ProbePoint] = []
    for budget in budgets:
        subset = dataset.subset_kernels(probe_schedule(budget))
        try:
            model, _report = ModelEstimator(subset).estimate()
        except EstimationError:
            curve.append(ProbePoint(budget=budget, mae_percent=None))
            continue
        mae = validate_model(
            model, session, workloads, configs
        ).mean_absolute_error_percent
        curve.append(ProbePoint(budget=budget, mae_percent=mae))
    return DeviceFewshotResult(
        device=name,
        family=member.family,
        seed_device=member.seed_device,
        table=member.table_name,
        node_nm=member.node_nm,
        band_percent=TABLE3_BANDS_PERCENT[member.seed_device],
        transplant_mae_percent=transplant_mae,
        curve=tuple(curve),
    )


def run(
    lab: Optional[Lab] = None,
    quick: bool = False,
    members: Optional[Sequence[FamilyMember]] = None,
) -> FewshotResult:
    """Sweep the standard synthetic fleet (or ``members``)."""
    lab = lab or get_lab()
    members = tuple(members) if members is not None else standard_members()
    budgets = QUICK_BUDGETS if quick else PROBE_BUDGETS
    results = tuple(
        sweep_device(lab, member, budgets=budgets, quick=quick)
        for member in members
    )
    return FewshotResult(devices=results, budgets=budgets, quick=quick)


def main(argv: Optional[Sequence[str]] = None) -> FewshotResult:
    # parse_known_args: the CLI's `experiment` command calls main() with
    # its own leftovers still in sys.argv.
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--output", default="FEWSHOT.json")
    parser.add_argument(
        "--no-gate",
        action="store_true",
        help="report only; do not exit non-zero when the fleet misses "
        "the band-coverage floors",
    )
    args, _ = parser.parse_known_args(argv)

    result = run(quick=args.quick)
    print("=== Few-shot calibration on synthetic device families ===")
    rows = []
    for device in result.devices:
        def _fmt(value: Optional[float]) -> str:
            return "fit failed" if value is None else f"{value:.2f}%"

        rows.append(
            (
                device.device,
                f"{device.node_nm}nm",
                f"{device.band_percent:.2f}%",
                _fmt(device.transplant_mae_percent),
                " ".join(
                    f"{p.budget}:{_fmt(p.mae_percent)}" for p in device.curve
                ),
                str(device.probes_to_band or "-"),
            )
        )
    print(
        format_table(
            [
                "device", "node", "band", "0-probe MAE",
                "k:MAE curve", "k to band",
            ],
            rows,
        )
    )
    print(
        f"\n{result.devices_in_band}/{len(result.devices)} devices across "
        f"{result.nodes_in_band} tech nodes reach their Table-III band."
    )
    path = Path(args.output)
    path.write_text(json.dumps(result.to_dict(), indent=2) + "\n")
    print(f"report written to {path}")
    if not args.no_gate and not result.passes_gate:
        print(
            f"GATE FAILED: need >= {GATE_MIN_DEVICES} devices across "
            f">= {GATE_MIN_NODES} nodes in band",
            file=sys.stderr,
        )
        raise SystemExit(1)
    return result


if __name__ == "__main__":
    main()
