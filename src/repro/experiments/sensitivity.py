"""Sensitivity studies: how much microbenchmarking does the model need?

The paper fixes its methodology at 83 microbenchmarks, power at every grid
point and 10 measurement repeats; this experiment quantifies how the
validation accuracy responds when those budgets shrink — the question a
practitioner porting the method to a new device asks first.

* **Suite size** — fit on a stratified subset of the microbenchmark suite
  (every group keeps its proportional share, intensity ladders subsampled
  evenly) and validate on the full Table-III set.
* **Component coverage** — fit on single-group suites (arithmetic-only,
  memory-only) to show why the suite must span all components.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional

from repro.analysis.validation import validate_model
from repro.core.dataset import collect_training_dataset
from repro.core.estimation import ModelEstimator
from repro.experiments.common import Lab, get_lab
from repro.kernels.kernel import KernelDescriptor
from repro.microbench import build_suite, suite_group
from repro.reporting.tables import format_table

DEVICE = "GTX Titan X"

#: Stratified suite-size steps (83 = the paper's full suite).
SUITE_SIZES = (20, 40, 60, 83)


def stratified_subset(size: int) -> List[KernelDescriptor]:
    """A ``size``-kernel subset keeping every group proportionally covered.

    Ladders are subsampled evenly (first/last always kept) so the intensity
    range stays spanned; the Idle workload is always included.
    """
    suite = build_suite()
    if size >= len(suite):
        return list(suite)
    groups: Mapping[str, List[KernelDescriptor]] = {}
    for kernel in suite:
        groups.setdefault(kernel.tags["group"], []).append(kernel)
    total = len(suite)
    chosen: List[KernelDescriptor] = []
    for name, kernels in groups.items():
        if name == "idle":
            chosen.extend(kernels)
            continue
        quota = max(2, round(size * len(kernels) / total))
        quota = min(quota, len(kernels))
        if quota == len(kernels):
            chosen.extend(kernels)
            continue
        # Even subsample keeping the ladder endpoints.
        indices = [
            round(i * (len(kernels) - 1) / (quota - 1)) for i in range(quota)
        ]
        chosen.extend(kernels[i] for i in sorted(set(indices)))
    return chosen


@dataclass(frozen=True)
class SensitivityResult:
    device: str
    #: suite size actually used -> validation MAE (%).
    mae_by_suite_size: Mapping[int, float]
    #: coverage label -> validation MAE (%).
    mae_by_coverage: Mapping[str, float]

    @property
    def full_suite_mae(self) -> float:
        return self.mae_by_suite_size[max(self.mae_by_suite_size)]


def _fit_and_validate(lab: Lab, kernels: List[KernelDescriptor]) -> float:
    session = lab.session(DEVICE)
    dataset = collect_training_dataset(session, kernels)
    model, _ = ModelEstimator(dataset).estimate()
    result = validate_model(model, session, lab.workloads(DEVICE))
    return result.mean_absolute_error_percent


def run(lab: Optional[Lab] = None) -> SensitivityResult:
    lab = lab or get_lab()

    by_size = {}
    for size in SUITE_SIZES:
        kernels = stratified_subset(size)
        by_size[len(kernels)] = _fit_and_validate(lab, kernels)

    by_coverage = {
        "arithmetic_only": _fit_and_validate(
            lab,
            suite_group("int") + suite_group("sp") + suite_group("dp")
            + suite_group("sf") + suite_group("idle"),
        ),
        "memory_only": _fit_and_validate(
            lab,
            suite_group("l2") + suite_group("shared") + suite_group("dram")
            + suite_group("idle"),
        ),
        "full": by_size[max(by_size)],
    }
    return SensitivityResult(
        device=lab.spec(DEVICE).name,
        mae_by_suite_size=by_size,
        mae_by_coverage=by_coverage,
    )


def main() -> SensitivityResult:
    result = run()
    print(f"=== Sensitivity study on {result.device} ===")
    rows = [
        (size, f"{mae:.2f}%")
        for size, mae in sorted(result.mae_by_suite_size.items())
    ]
    print(format_table(["suite size", "validation MAE"], rows,
                       title="training-suite size:"))
    rows = [
        (label, f"{mae:.2f}%")
        for label, mae in result.mae_by_coverage.items()
    ]
    print(format_table(["coverage", "validation MAE"], rows,
                       title="\ncomponent coverage:"))
    return result


if __name__ == "__main__":
    main()
