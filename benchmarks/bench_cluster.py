#!/usr/bin/env python
"""Cluster benchmark harness — runnable wrapper around the CLI gate.

Fits one oracle per device type, sweeps every fleet scheduler over the
three arrival shapes on the full 2048-node fleet (12k jobs), gates the
deadline-aware scheduler on energy savings and miss rate, and writes
``BENCH_cluster.json``::

    python benchmarks/bench_cluster.py              # full fleet gate
    python benchmarks/bench_cluster.py --quick      # CI smoke tier
    python benchmarks/bench_cluster.py --min-energy-savings 0.15

Equivalent: ``python -m repro.cli cluster --bench ...``.
"""

import sys
from pathlib import Path

try:
    from repro.cli import main
except ImportError:  # running from a source checkout without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.cli import main

if __name__ == "__main__":
    sys.exit(main(["cluster", "--bench", *sys.argv[1:]]))
