"""Bench: Sec. III-C methodology — counter identification & L2 peak.

Shape criteria:
* every anonymous counter is identified correctly on every device (the
  paper shipped a complete Table I, so the methodology must converge);
* the empirically measured L2 peak bandwidth lands within ~15 % of the
  device's true capability on Pascal and Maxwell; on Kepler the systematic
  counter inaccuracy inflates the estimate (it stays within 2x) — the same
  counter-quality story behind the paper's 12.4 % Kepler validation error.
"""

from __future__ import annotations

from repro.experiments import discovery


def test_discovery_methodology(run_once, lab):
    result = run_once(discovery.run, lab)

    for device, grade in result.grades().items():
        assert grade == 1.0, device
    for entry in result.devices:
        assert not entry.result.unidentified, entry.device

    for device in ("Titan Xp", "GTX Titan X"):
        entry = result.device(device)
        assert entry.l2_relative_error < 0.15, device

    kepler = result.device("Tesla K40c")
    assert kepler.measured_l2_bytes_per_cycle < 2.0 * kepler.true_l2_bytes_per_cycle
    assert kepler.l2_relative_error > result.device("GTX Titan X").l2_relative_error

    discovery.main()
