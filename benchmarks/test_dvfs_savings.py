"""Bench: DVFS energy-savings study (Sec. V-B use case 3).

Shape criteria:
* compute/shared-memory-bound workloads (CUTCP, LUD) bank > 15 % measured
  energy savings within a 10 % slowdown budget, mostly by dropping the
  memory clock;
* DRAM-saturated workloads (BlackScholes, LBM) have < 5 % headroom — their
  runtime *is* the memory clock;
* relaxing the slowdown budget never reduces any workload's saving;
* mean savings are positive under both budgets.
"""

from __future__ import annotations

from repro.experiments import dvfs_savings


def test_dvfs_energy_savings(run_once, lab):
    result = run_once(dvfs_savings.run, lab)

    for name in ("cutcp", "lud"):
        entry = result.workload(name)
        assert entry.saving(1.10) > 0.15, name
        # The big win comes from the memory domain.
        assert entry.config(1.10).memory_mhz < 3505, name

    for name in ("blackscholes", "lbm"):
        assert result.workload(name).saving(1.10) < 0.05, name

    for entry in result.workloads:
        assert entry.saving(1.10) >= entry.saving(1.05) - 1e-9, entry.workload

    assert result.mean_saving(1.05) > 0.0
    assert result.mean_saving(1.10) >= result.mean_saving(1.05)

    dvfs_savings.main()
