"""Bench: Fig. 2 — DVFS impact on BlackScholes and CUTCP (GTX Titan X).

Shape criteria (DESIGN.md):
* power anchors at the defaults: BlackScholes ~181 W, CUTCP ~135 W (+-15%);
* the memory-frequency drop costs BlackScholes ~52 % but CUTCP only ~24 %
  (DRAM-utilization gap), i.e. BlackScholes' drop is at least double;
* power is non-linear in the core frequency (implicit voltage scaling).
"""

from __future__ import annotations

import pytest

from repro.experiments import fig2
from repro.hardware.components import Component


def _curve_slopes(curve):
    frequencies = sorted(curve)
    return [
        (curve[b] - curve[a]) / (b - a)
        for a, b in zip(frequencies, frequencies[1:])
    ]


def test_fig2_dvfs_impact(run_once, lab):
    result = run_once(fig2.run, lab)

    blackscholes = result.application("blackscholes")
    cutcp = result.application("cutcp")

    # Power anchors at the default configuration (Fig. 2 annotations).
    assert blackscholes.reference_power_watts == pytest.approx(181, rel=0.15)
    assert cutcp.reference_power_watts == pytest.approx(135, rel=0.15)
    assert blackscholes.reference_power_watts > cutcp.reference_power_watts

    # Memory-frequency sensitivity follows the DRAM utilization gap.
    assert blackscholes.utilizations[Component.DRAM] > 0.7
    assert cutcp.utilizations[Component.DRAM] < 0.2
    bs_drop = blackscholes.memory_drop_fraction()
    cutcp_drop = cutcp.memory_drop_fraction()
    assert bs_drop == pytest.approx(0.52, abs=0.10)
    assert cutcp_drop == pytest.approx(0.24, abs=0.10)
    assert bs_drop > 2 * cutcp_drop

    # Non-linearity in the core frequency: the slope above the voltage
    # breakpoint clearly exceeds the slope below it.
    slopes = _curve_slopes(cutcp.power_curves[3505.0])
    assert max(slopes[-3:]) > 1.2 * min(slopes[:3])

    fig2.main()
