"""Bench: Fig. 9 — matrixMulCUBLAS input-size effects (GTX Titan X).

Shape criteria (DESIGN.md):
* utilizations and power grow with the matrix size (64 -> 512 -> 4096);
* the model tracks the measured curves (paper: 6.8 % MAE; we assert < 10 %);
* at f_core = 1164 MHz the 4096 case trips TDP throttling and falls back to
  1126 MHz — the paper's footnote (a).
"""

from __future__ import annotations

from repro.experiments import fig9
from repro.hardware.components import Component


def test_fig9_input_size_effects(run_once, lab):
    result = run_once(fig9.run, lab)

    by_size = {entry.matrix_size: entry for entry in result.sizes}

    # Monotone utilization growth with input size.
    for component in (Component.SP, Component.L2, Component.DRAM):
        values = [by_size[s].utilizations[component] for s in (64, 512, 4096)]
        assert values[0] < values[1] < values[2], component

    # Monotone power growth at the reference core frequency.
    powers = [by_size[s].reference_power_watts for s in (64, 512, 4096)]
    assert powers[0] < powers[1] < powers[2]

    # Prediction accuracy.
    assert result.overall_mae_percent < 10.0
    for entry in result.sizes:
        assert entry.mae_percent < 12.0, entry.matrix_size

    # TDP throttling: only the 4096 case, only at the top level.
    assert by_size[4096].throttled_levels() == {1164.0: 1126.0}
    assert not by_size[64].throttled_levels()
    assert not by_size[512].throttled_levels()

    fig9.main()
