"""Bench: design-choice ablations (DESIGN.md experiment index).

Shape criteria:
* disabling the voltage modeling degrades accuracy (the paper's central
  claim: linear-frequency models miss the V^2 curvature);
* collapsing the per-component utilizations into a single activity degrades
  accuracy (per-component decomposition carries signal);
* training on only the 3 bootstrap configurations is clearly worse than the
  full grid; a 3x3 grid sits in between;
* disabling the measurement-chain noise drops the error to the structural
  floor, confirming event inaccuracy drives the observed error (the paper's
  Kepler explanation).
"""

from __future__ import annotations

from repro.experiments import ablations


def test_ablations(run_once, lab):
    result = run_once(ablations.run, lab)

    full = result.full_model_mae

    # Voltage modeling matters.
    assert result.mae_percent["no_voltage"] > full + 1.0

    # Per-component decomposition matters.
    assert result.mae_percent["single_utilization"] > full + 0.5

    # Training-grid coverage matters, monotonically.
    assert result.mae_percent["grid_3_configs"] > result.mae_percent["grid_3x3"]
    assert result.mae_percent["grid_3_configs"] > full + 2.0
    assert result.mae_percent["grid_3x3"] >= full - 0.5

    # The noise injection is a real driver of the observed error.
    assert result.mae_percent["noiseless"] < full

    ablations.main()
