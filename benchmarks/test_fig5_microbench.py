"""Bench: Fig. 5 — microbenchmark-suite utilizations and power breakdown.

Shape criteria (DESIGN.md):
* 83 microbenchmarks with the Fig. 5 group sizes;
* along each intensity ladder the target unit's utilization rises while the
  DRAM utilization falls;
* the model's constant power at the defaults is ~84 W (+-20 %);
* the maximum dynamic share lands near the paper's ~49 % (we allow a broad
  band — our MIX kernels run slightly hotter);
* the model fits the training suite tightly (MAE < 6 %).
"""

from __future__ import annotations

import pytest

from repro.experiments import fig5
from repro.hardware.components import Component


def test_fig5_microbenchmark_suite(run_once, lab):
    result = run_once(fig5.run, lab)

    assert len(result.utilizations) == 83

    ladders = {
        "int": Component.INT,
        "sp": Component.SP,
        "dp": Component.DP,
        "sf": Component.SF,
    }
    for group, component in ladders.items():
        ladder = result.group_utilizations(group, component)
        assert ladder[-1] > ladder[0], group
        dram = result.group_utilizations(group, Component.DRAM)
        assert dram[-1] < dram[0], group

    for group, component in (
        ("shared", Component.SHARED),
        ("l2", Component.L2),
        ("dram", Component.DRAM),
    ):
        assert max(result.group_utilizations(group, component)) > 0.7, group

    # Fig. 5B anchors.
    assert result.constant_watts == pytest.approx(84.0, rel=0.20)
    assert 0.35 <= result.max_dynamic_share <= 0.70
    assert result.fit_mae_percent < 6.0

    fig5.main()
