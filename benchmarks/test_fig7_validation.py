"""Bench: Fig. 7 — validation accuracy over all V-F configurations, 3 GPUs.

Shape criteria (DESIGN.md):
* mean absolute errors in the paper's bands — Pascal and Maxwell in single
  digits (paper: 6.9 % / 6.0 %), Kepler clearly worse (paper: 12.4 %) and
  below 20 %;
* the Kepler error exceeds both others (its counters characterize the
  utilizations worst — Sec. V-B);
* measured powers on the GTX Titan X span a wide range (paper: ~40-248 W).
"""

from __future__ import annotations

from repro.experiments import fig7


def test_fig7_all_configuration_validation(run_once, lab):
    result = run_once(fig7.run, lab)

    mae = result.mae_by_architecture()
    assert mae["Pascal"] < 10.0
    assert mae["Maxwell"] < 10.0
    assert 8.0 < mae["Kepler"] < 20.0
    assert mae["Kepler"] > mae["Pascal"]
    assert mae["Kepler"] > mae["Maxwell"]

    titan_x = result.device("GTX Titan X")
    low, high = titan_x.result.power_range_watts()
    assert low < 80.0
    assert high > 200.0

    # Grid sizes validate the sweep actually covered every configuration.
    assert titan_x.core_levels * titan_x.memory_levels == 64
    xp = result.device("Titan Xp")
    assert xp.core_levels * xp.memory_levels == 44

    fig7.main()
