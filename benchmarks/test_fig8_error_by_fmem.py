"""Bench: Fig. 8 — prediction error per memory frequency (GTX Titan X).

Shape criteria (DESIGN.md):
* the error grows with distance from the reference configuration:
  MAE at 810 MHz clearly above MAE at the reference 3505 MHz
  (paper: 8.7 % vs 4.9 %);
* the overall error over the 2x core / 4x memory range stays near the
  paper's 6.0 %;
* every memory level yields errors for all 26+ workloads.
"""

from __future__ import annotations

import pytest

from repro.experiments import fig8


def test_fig8_error_by_memory_frequency(run_once, lab):
    result = run_once(fig8.run, lab)

    assert set(result.mae_by_memory_mhz) == {4005.0, 3505.0, 3300.0, 810.0}

    # Reference-distance structure.
    assert result.low_memory_mae > result.reference_memory_mae
    assert result.reference_memory_mae == pytest.approx(4.9, abs=2.0)
    assert result.low_memory_mae == pytest.approx(8.7, abs=3.0)

    # Overall accuracy near the paper's 6.0 %.
    assert result.overall_mae_percent == pytest.approx(6.0, abs=2.5)

    # Per-workload signed errors exist for the whole validation set.
    for memory, per_workload in result.signed_errors.items():
        assert len(per_workload) >= 26, memory

    fig8.main()
