#!/usr/bin/env python
"""Pipeline benchmark harness — runnable wrapper around
:mod:`repro.benchmarking`.

Times collect / estimate / validate per device (grid fast path vs the
scalar walk vs the sharded multi-process campaign) and writes
``BENCH_pipeline.json``::

    python benchmarks/bench_pipeline.py             # full grid, all devices
    python benchmarks/bench_pipeline.py --quick     # tier-2 smoke (< 60 s)
    python benchmarks/bench_pipeline.py --device "GTX Titan X" --repeats 3

Equivalent: ``python -m repro.cli bench ...``.
"""

import sys
from pathlib import Path

try:
    from repro.benchmarking import main
except ImportError:  # running from a source checkout without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.benchmarking import main

if __name__ == "__main__":
    sys.exit(main())
