"""Bench: sensitivity of the model to the microbenchmarking budget.

Shape criteria:
* validation accuracy improves (weakly) monotonically with the training
  suite size, and the full 83-kernel suite is at least as good as every
  stratified subset;
* even a ~20-kernel stratified subset stays within 1.5 pp of the full
  suite (the method degrades gracefully);
* dropping whole component families hurts: a memory-only suite is clearly
  worse than the full one.
"""

from __future__ import annotations

from repro.experiments import sensitivity


def test_training_budget_sensitivity(run_once, lab):
    result = run_once(sensitivity.run, lab)

    sizes = sorted(result.mae_by_suite_size)
    maes = [result.mae_by_suite_size[size] for size in sizes]
    # Weak monotonicity with a small tolerance for measurement noise.
    for smaller, larger in zip(maes[1:], maes[:-1]):
        assert smaller <= larger + 0.5

    full = result.full_suite_mae
    smallest = maes[0]
    assert smallest - full < 1.5  # graceful degradation

    assert result.mae_by_coverage["memory_only"] > full + 1.0
    assert result.mae_by_coverage["full"] == full

    sensitivity.main()
