#!/usr/bin/env python
"""Serving benchmark harness — runnable wrapper around the CLI load test.

Fits (or resolves) the device model in a registry, replays a seeded
request stream against the asyncio prediction server at several
concurrency levels (cold cache, then warm) and writes
``BENCH_serving.json``::

    python benchmarks/bench_serving.py              # full stream, Titan Xp
    python benchmarks/bench_serving.py --quick      # CI smoke tier
    python benchmarks/bench_serving.py --device "Tesla K40c" --requests 500

Equivalent: ``python -m repro.cli load-test ...``.
"""

import sys
from pathlib import Path

try:
    from repro.cli import main
except ImportError:  # running from a source checkout without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.cli import main

if __name__ == "__main__":
    sys.exit(main(["load-test", *sys.argv[1:]]))
