"""Bench: Table I — performance-event tables.

Shape criteria (DESIGN.md): every metric of Eq. 8-10 resolves to at least
one raw event on each of the three devices, and the undisclosed-event ID
prefixes match the Table-I footnote.
"""

from __future__ import annotations

from repro.experiments import table1


def test_table1_event_tables(run_once, lab):
    result = run_once(table1.run, lab)

    assert set(result.tables) == {"Titan Xp", "GTX Titan X", "Tesla K40c"}
    for device, table in result.tables.items():
        for label, field in table1.METRIC_FIELDS:
            events = result.events_for(device, field)
            assert events, f"{device}: no events for {label}"

    assert result.prefixes == {
        "Pascal": 352321, "Maxwell": 335544, "Kepler": 318767
    }
    # Architecture-specific quirks of Table I.
    assert len(result.tables["Tesla K40c"].warps_sp_int) == 4
    assert len(result.tables["GTX Titan X"].warps_sp_int) == 2
    assert len(result.tables["Tesla K40c"].l2_read_sector_queries) == 4

    table1.main()
