"""Bench: Sec. V-B / VI — comparison against prior-work baseline models.

Shape criteria (DESIGN.md):
* the proposed model beats the Abe-style linear regression, the
  GPUWattch-style linear-frequency model and the fixed-configuration model
  on both wide-frequency-range devices (Titan Xp, GTX Titan X);
* the fixed-configuration model collapses on any DVFS sweep (> 2x the
  proposed model's error on the multi-memory-level devices);
* on the Tesla K40c — 4 core levels over a 1.3x range, one memory level —
  all DVFS-aware models cluster together. (The paper's 23.5 % Kepler figure
  for Abe et al. comes from that paper's own implementation and undisclosed
  event set; see EXPERIMENTS.md.)
"""

from __future__ import annotations

from repro.experiments import baselines


def test_baseline_comparison(run_once, lab):
    result = run_once(baselines.run, lab)

    for device in ("Titan Xp", "GTX Titan X"):
        entry = result.device(device)
        proposed = entry.mae_percent["proposed"]
        assert entry.proposed_wins, device
        assert proposed < entry.mae_percent["abe_linear"]
        assert proposed < entry.mae_percent["linear_frequency"]
        assert entry.mae_percent["fixed_config"] > 2 * proposed

    kepler = result.device("Tesla K40c")
    # All DVFS-aware models within 2 pp of each other on the narrow-range
    # device; the proposed model is not beaten by more than measurement
    # noise.
    dvfs_aware = [
        kepler.mae_percent[name]
        for name in ("proposed", "abe_linear", "linear_frequency")
    ]
    assert max(dvfs_aware) - min(dvfs_aware) < 2.0
    assert kepler.mae_percent["proposed"] < 20.0

    baselines.main()
