"""Bench: Fig. 1 — the device block diagram, generated from the spec.

Shape criteria: the rendered diagram communicates Fig. 1's structural
facts — the two independent V-F domains with the L2 cache on the core side
and the DRAM on the memory side, the SM count, and the per-SM unit counts
of Table II.
"""

from __future__ import annotations

from repro.experiments import fig1


def test_fig1_block_diagrams(run_once, lab):
    result = run_once(fig1.run, lab)

    for device in ("Titan Xp", "GTX Titan X", "Tesla K40c"):
        text = result.diagram(device)
        assert "CORE DOMAIN" in text
        assert "MEMORY DOMAIN" in text
        # L2 belongs to the core domain: it must appear before the memory
        # domain's banner.
        assert text.index("L2 CACHE") < text.index("MEMORY DOMAIN")
        assert text.index("DRAM") > text.index("MEMORY DOMAIN")
        spec = lab.spec(device)
        assert f"x{spec.sm_count}" in text
        assert f"INT/FP x{spec.sp_int_units_per_sm}" in text
        assert f"DP x{spec.dp_units_per_sm}" in text

    # The domain key the figure encodes.
    assert fig1.domain_of_block("L2 cache") == "core"
    assert fig1.domain_of_block("DRAM") == "memory"
    assert fig1.domain_of_block("Shared Memory") == "core"

    fig1.main()
