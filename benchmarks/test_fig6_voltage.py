"""Bench: Fig. 6 — measured vs predicted core voltage.

Shape criteria (DESIGN.md):
* the predicted curve reproduces the two regions — flat, then linearly
  increasing — on both the GTX Titan X and the Titan Xp;
* the detected breakpoint falls within one frequency level of the truth;
* the worst-case voltage error stays below 7 % of the reference voltage.
"""

from __future__ import annotations

import pytest

from repro.experiments import fig6


def test_fig6_voltage_prediction(run_once, lab):
    result = run_once(fig6.run, lab)

    level_spacing = {"GTX Titan X": 38.0, "Titan Xp": 64.0}
    for entry in result.devices:
        # Two distinct regions detected: a flat level and a positive slope.
        assert entry.region_fit.has_flat_region, entry.device
        assert entry.region_fit.slope_per_mhz > 1e-5

        # Breakpoint within one frequency level of the hidden truth.
        assert entry.breakpoint_error_mhz <= level_spacing[entry.device] + 1.0

        # Voltage accuracy.
        assert entry.errors["max_abs_error"] < 0.07, entry.device

        # Predicted curve is monotone non-decreasing.
        values = [entry.predicted_curve[f] for f in sorted(entry.predicted_curve)]
        assert all(b >= a - 1e-6 for a, b in zip(values, values[1:]))

        # Anchored at 1.0 at the device's default core frequency.
        spec = lab.spec(entry.device)
        assert entry.predicted_curve[spec.default_core_mhz] == pytest.approx(
            1.0
        )

    fig6.main()
