"""Bench: Table III — the validation benchmark list.

Shape criteria (DESIGN.md): 26 applications across the 4 suites (27 workload
entries — K-Means contributes two kernels, as in the paper's figures), each
with a resolvable utilization signature.
"""

from __future__ import annotations

from repro.experiments import table3
from repro.hardware.components import Component
from repro.workloads.registry import APPLICATION_COUNT


def test_table3_validation_workloads(run_once, lab):
    result = run_once(table3.run, lab)

    assert APPLICATION_COUNT == 26
    assert result.workload_count == 27
    suites = result.suites()
    assert len(suites["rodinia"]) == 11  # 10 apps, K-Means twice
    assert len(suites["parboil"]) == 2
    assert len(suites["polybench"]) == 11
    assert len(suites["cuda_sdk"]) == 3

    # Every workload exhibits measurable activity on some component.
    for name, utilization in result.utilizations.items():
        assert any(
            utilization[component] > 0.03 for component in Component
        ), name

    table3.main()
