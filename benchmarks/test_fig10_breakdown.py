"""Bench: Fig. 10 — validation-set power breakdown at two configurations.

Shape criteria (DESIGN.md):
* breakdown MAE near the paper's 5.2 % at the reference configuration and
  8.8 % at the low-memory configuration (low-memory strictly worse);
* a large constant share: ~80 W at the reference vs ~50-70 W at the
  low-memory configuration (ours sits slightly higher; +-35 % band);
* between the configurations the DRAM component shrinks dramatically while
  the summed core components stay nearly constant.
"""

from __future__ import annotations

import pytest

from repro.experiments import fig10


def test_fig10_power_breakdown(run_once, lab):
    result = run_once(fig10.run, lab)

    assert len(result.reference.entries) == 27
    assert len(result.low_memory.entries) == 27

    # Accuracy shape: low-memory configuration is harder.
    reference_mae = result.reference.mean_absolute_error_percent
    low_memory_mae = result.low_memory.mean_absolute_error_percent
    assert reference_mae < low_memory_mae
    assert reference_mae == pytest.approx(5.2, abs=2.5)
    assert low_memory_mae == pytest.approx(8.8, abs=3.5)

    # Constant-share anchors (paper: ~80 W and ~50 W).
    assert result.reference.mean_constant_watts == pytest.approx(80.0, rel=0.35)
    assert result.low_memory.mean_constant_watts == pytest.approx(50.0, rel=0.45)
    assert (
        result.low_memory.mean_constant_watts
        < result.reference.mean_constant_watts
    )

    # DRAM power collapses with the memory clock; core components persist.
    assert result.dram_power_ratio() < 0.5
    assert result.core_power_ratio() > 0.6

    fig10.main()
