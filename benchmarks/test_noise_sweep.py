"""Bench: counter/sensor-noise sweep (the Kepler explanation, quantified).

Shape criteria:
* the validation MAE is monotone non-decreasing in the noise scale;
* the clean (0x) pipeline exposes a structural floor clearly above zero —
  the reference-utilization transfer error inherent to profile-once
  methodology — but below the nominal error;
* at 4x the Maxwell noise the error reaches the Kepler band (>= 11 %),
  reproducing the paper's cross-device accuracy story on a single device
  with one knob.
"""

from __future__ import annotations

from repro.experiments import noise_sweep


def test_noise_sweep(run_once, lab):
    result = run_once(noise_sweep.run, lab)

    assert result.is_monotone()
    assert 2.0 < result.structural_floor < result.nominal
    assert result.mae_by_scale[4.0] >= 11.0
    assert result.mae_by_scale[4.0] > 2 * result.nominal

    noise_sweep.main()
