"""Benchmark-harness fixtures.

One process-wide :class:`~repro.experiments.common.Lab` backs every
benchmark, so devices are fitted once and later benchmarks reuse the cached
models/validations — mirroring how the experiments compose. Benchmarks use
``benchmark.pedantic(..., rounds=1)`` because each experiment is a
seconds-long end-to-end pipeline, not a microbenchmark.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import get_lab


@pytest.fixture(scope="session")
def lab():
    return get_lab()


@pytest.fixture()
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def _run(function, *args):
        return benchmark.pedantic(function, args=args, rounds=1, iterations=1)

    return _run
