"""Bench: Table II — device spec sheet.

Shape criteria (DESIGN.md): frequency grids of 22x2 (Titan Xp), 16x4
(GTX Titan X) and 4x1 (Tesla K40c), with the paper's defaults and unit
counts.
"""

from __future__ import annotations

from repro.experiments import table2


def test_table2_device_specs(run_once, lab):
    result = run_once(table2.run, lab)

    assert result.grid_sizes() == {
        "Titan Xp": (22, 2),
        "GTX Titan X": (16, 4),
        "Tesla K40c": (4, 1),
    }

    titan_xp = result.spec("Titan Xp")
    assert titan_xp.default_core_mhz == 1404
    assert titan_xp.default_memory_mhz == 5705
    assert titan_xp.sm_count == 30

    titan_x = result.spec("GTX Titan X")
    assert titan_x.default_core_mhz == 975
    assert titan_x.default_memory_mhz == 3505
    assert set(titan_x.memory_frequencies_mhz) == {4005, 3505, 3300, 810}

    k40c = result.spec("Tesla K40c")
    assert k40c.default_core_mhz == 875
    assert k40c.dp_units_per_sm == 64
    assert k40c.tdp_watts == 235

    table2.main()
