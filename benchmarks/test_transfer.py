"""Bench: cross-device model transfer (Sec. VI motivation).

Shape criteria: transplanting one device's fitted coefficients onto the
other degrades the validation MAE by at least 2x in both directions —
the quantitative case for the paper's per-device microbenchmarking.
"""

from __future__ import annotations

from repro.experiments import transfer


def test_cross_device_transfer(run_once, lab):
    result = run_once(transfer.run, lab)

    for source, target in (
        ("GTX Titan X", "Titan Xp"),
        ("Titan Xp", "GTX Titan X"),
    ):
        native, transferred = result.pairs[(source, target)]
        assert native < 10.0, (source, target)
        assert transferred > 2 * native, (source, target)

    transfer.main()
