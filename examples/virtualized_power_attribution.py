#!/usr/bin/env python
"""Per-VM power attribution on a shared GPU (Sec. V-B use case 2).

The NVIDIA GRID / Hyper-V scenario: several guest VMs time-slice one board.
Guests have no power sensor — often no NVML at all — but they do see their
own kernels' performance events. The hypervisor builds the power model once
on the instrumented host, provisions each guest with a serialized copy, and
settles the energy bill from activity alone:

1. the hypervisor fits the model and exports it (plain JSON);
2. each guest meters itself with the event-driven estimator;
3. the hypervisor attributes the board's energy across guests — including
   the shared idle overhead, split by busy-time share — and the bill is
   power-aware, not merely time-sliced: a DRAM-saturated tenant pays more
   per second than a cache-friendly one.
"""

from __future__ import annotations

import repro
from repro.runtime.virtual import HypervisorPowerService


def main() -> None:
    gpu = repro.SimulatedGPU(repro.GTX_TITAN_X)
    session = repro.ProfilingSession(gpu)
    print("hypervisor: fitting the power model on the instrumented host...")
    model, _ = repro.fit_power_model(session)
    service = HypervisorPowerService(model, session)

    # --- guest side: metering without a sensor -------------------------
    guest = service.provision_guest()
    print("\nguest VM: metering its own kernels from events alone")
    for name in ("gemm", "gemm", "lbm"):
        kernel = repro.workload_by_name(name)
        reading = guest.observe(session.collect_events(kernel))
        print(
            f"  launch {name:6s}: {reading.power_watts:6.1f} W over "
            f"{1e3*reading.window_seconds:.2f} ms -> "
            f"{1e3*reading.energy_joules:.1f} mJ"
        )
    print(f"  guest total: {guest.total_energy_joules:.3f} J "
          "(no sensor reading used)")

    # --- hypervisor side: the energy bill -------------------------------
    print("\nhypervisor: attributing one accounting period across 3 tenants")
    usages = service.attribute(
        {
            "tenant-ml": [(repro.workload_by_name("gemm"), 40),
                          (repro.workload_by_name("backprop"), 20)],
            "tenant-sim": [(repro.workload_by_name("lbm"), 30)],
            "tenant-quant": [(repro.workload_by_name("blackscholes"), 30)],
        }
    )
    total = sum(u.energy_joules for u in usages.values())
    for name, usage in sorted(usages.items()):
        print(
            f"  {name:14s} busy {1e3*usage.busy_seconds:7.1f} ms   "
            f"avg {usage.average_power_watts:6.1f} W   "
            f"bill {usage.energy_joules:7.3f} J "
            f"({100*usage.energy_joules/total:.0f}%)"
        )
    print(f"  period total: {total:.3f} J")
    print(
        "\nnote: tenant-quant's DRAM-saturated kernels cost more per busy "
        "second than tenant-ml's cache-friendly GEMMs — the attribution is "
        "power-aware, not just time-sliced."
    )


if __name__ == "__main__":
    main()
