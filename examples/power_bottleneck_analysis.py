#!/usr/bin/env python
"""Application power-bottleneck analysis via per-component decomposition.

The Sec. V-B "application analysis" use case: the fitted model decomposes an
application's power draw into per-component contributions, pointing the
developer at the dominant consumers — "an alternative to the usual
performance optimization". The script analyses the Fig. 9 scenario: how the
power profile of matrixMulCUBLAS shifts as the input matrices grow from
64x64 (latency-bound, nearly idle) to 4096x4096 (SP/L2-saturated, TDP-bound
at the top core frequency).
"""

from __future__ import annotations

import repro
from repro.workloads.cuda_sdk import matrixmul_cublas


def analyse(model, session, size: int) -> None:
    spec = session.gpu.spec
    kernel = matrixmul_cublas(size, spec)
    utilizations = repro.MetricCalculator(spec).utilizations(
        session.collect_events(kernel)
    )
    breakdown = model.predict_breakdown(utilizations, spec.reference)
    measured = session.measure_power(kernel).average_watts

    print(f"\n=== matrixMulCUBLAS {size}x{size} ===")
    print(f"measured {measured:.1f} W | predicted {breakdown.total_watts:.1f} W")
    print(f"  {'constant':10s} {breakdown.constant_watts:6.1f} W")
    ranked = sorted(
        breakdown.component_watts.items(), key=lambda kv: kv[1], reverse=True
    )
    for component, watts in ranked:
        if watts < 0.5:
            continue
        utilization = utilizations[component]
        print(f"  {component.value:10s} {watts:6.1f} W  (U={utilization:.2f})")
    top = ranked[0]
    print(f"power bottleneck: {top[0].value} ({top[1]:.1f} W)")

    # TDP check at the top core frequency (the Fig. 9 footnote).
    top_config = repro.FrequencyConfig(
        max(spec.core_frequencies_mhz), spec.default_memory_mhz
    )
    measurement = session.measure_power(kernel, top_config)
    if measurement.throttled:
        print(
            f"note: at fcore={top_config.core_mhz:.0f} MHz the device "
            f"throttles to {measurement.applied_config.core_mhz:.0f} MHz "
            f"to respect the {spec.tdp_watts:.0f} W TDP"
        )


def main() -> None:
    gpu = repro.SimulatedGPU(repro.GTX_TITAN_X)
    session = repro.ProfilingSession(gpu)
    print(f"fitting the power model for {gpu.spec.name}...")
    model, _ = repro.fit_power_model(session)

    for size in (64, 512, 4096):
        analyse(model, session, size)


if __name__ == "__main__":
    main()
