#!/usr/bin/env python
"""Port the methodology to a device the paper never measured.

The paper's pipeline is device-agnostic: give it a spec sheet and the
microbenchmark campaign does the rest. This script defines a Volta-class
device ("Titan V-ish": 80 SMs, HBM-style memory levels, wide DP), builds the
full simulated board from the datasheet numbers, runs the complete fit, and
validates on the standard benchmarks — exactly the steps a user with new
hardware would follow.
"""

from __future__ import annotations

import repro
from repro.hardware.custom import build_spec, custom_gpu


def main() -> None:
    spec = build_spec(
        name="Titan V-ish",
        architecture="Volta-like",
        compute_capability="7.0",
        sm_count=80,
        core_range_mhz=(607, 1700),
        core_levels=16,
        default_core_mhz=1455,
        memory_levels_mhz=(850, 810, 425),
        default_memory_mhz=850,
        sp_int_units_per_sm=64,
        dp_units_per_sm=32,
        sf_units_per_sm=16,
        memory_bus_width_bytes=384,  # 3072-bit HBM2
        l2_bytes_per_cycle=2048.0,
        tdp_watts=320.0,
    )
    gpu = custom_gpu(
        spec, voltage_flat_level=0.90, voltage_breakpoint_fraction=0.5
    )
    session = repro.ProfilingSession(gpu)

    print(f"device: {spec.name} — {spec.sm_count} SMs, "
          f"{len(spec.core_frequencies_mhz)}x{len(spec.memory_frequencies_mhz)} "
          f"V-F grid, "
          f"{spec.dram_peak_bandwidth(spec.default_memory_mhz)/1e9:.0f} GB/s peak")

    print("running the 83-microbenchmark campaign and fitting...")
    model, report = repro.fit_power_model(session)
    print(f"  {report.iterations} iterations, "
          f"training MAE {report.train_mae_percent:.2f}%")

    curve = model.core_voltage_curve(spec.default_memory_mhz)
    frequencies = sorted(curve)
    print(f"  learned voltage curve: V({frequencies[0]:.0f})="
          f"{curve[frequencies[0]]:.2f} ... V({frequencies[-1]:.0f})="
          f"{curve[frequencies[-1]]:.2f}")

    result = repro.validate_model(model, session, repro.all_workloads())
    low, high = result.power_range_watts()
    print(f"validation on the 26 standard benchmarks, full grid:")
    print(f"  MAE {result.mean_absolute_error_percent:.2f}%  "
          f"(power span {low:.0f}-{high:.0f} W)")

    # The usual downstream products work unchanged — and reveal how the
    # same binary behaves differently on the new part: SYRK_DOUBLE, DP-bound
    # on the Titan X's 4 DP units/SM, barely tickles this device's wide DP
    # array and turns memory-bound.
    kernel = repro.workload_by_name("syrk_double")
    utilizations = repro.MetricCalculator(spec).utilizations(
        session.collect_events(kernel)
    )
    breakdown = model.predict_breakdown(utilizations, spec.reference)
    top = max(breakdown.component_watts, key=breakdown.component_watts.get)
    print(
        f"\nsyrk_double at the defaults: {breakdown.total_watts:.1f} W, "
        f"dominant dynamic component {top.value} "
        f"({breakdown.component_watts[top]:.1f} W); "
        f"DP utilization {utilizations[repro.Component.DP]:.2f} vs "
        "0.50 on the GTX Titan X — the wide DP array absorbs the same "
        "kernel without breaking a sweat"
    )


if __name__ == "__main__":
    main()
