#!/usr/bin/env python
"""Energy-aware what-if simulation of frequency plans (Sec. VII).

"The proposed model can be used for the development of novel energy-aware
GPU simulators": once each kernel of an application trace is profiled at the
reference configuration, the combination of the DVFS-aware power model and
the frequency-scaling time predictor evaluates *any* frequency plan with
zero further executions — where the exhaustive approach of [29] would
execute the trace at all 64 configurations of the GTX Titan X.

The script sweeps every static plan, compares the best ones against
per-kernel policy plans, and finally grades the simulator's predictions
against the (simulated) device.
"""

from __future__ import annotations

import repro
from repro.runtime import ApplicationTrace, EnergyPolicy
from repro.simulator import EnergyAwareSimulator, StaticPlan


def main() -> None:
    gpu = repro.SimulatedGPU(repro.GTX_TITAN_X)
    session = repro.ProfilingSession(gpu)
    print(f"fitting the power model for {gpu.spec.name}...")
    model, _ = repro.fit_power_model(session)
    simulator = EnergyAwareSimulator(model, session)

    trace = ApplicationTrace.from_pairs(
        "analytics-pipeline",
        [
            (repro.workload_by_name("kmeans"), 60),
            (repro.workload_by_name("gemm"), 40),
            (repro.workload_by_name("gesummv"), 60),
        ],
    )

    # What-if: every static configuration, evaluated purely from the model.
    plans = [
        StaticPlan(config, f"static({config.core_mhz:.0f},{config.memory_mhz:.0f})")
        for config in gpu.spec.all_configurations()
    ]
    results = simulator.compare_plans(trace, plans)
    reference = next(
        r for r in results
        if r.plan_name == "static(975,3505)"
    )
    print(
        f"\nreference plan: {reference.total_energy_joules:.2f} J, "
        f"{reference.total_time_seconds*1e3:.0f} ms"
    )
    print("\nbest 5 static plans by predicted energy:")
    for result in results[:5]:
        saving = 1 - result.total_energy_joules / reference.total_energy_joules
        slowdown = result.total_time_seconds / reference.total_time_seconds
        print(
            f"  {result.plan_name:18s} {result.total_energy_joules:7.2f} J "
            f"({100*saving:+5.1f}%)  runtime x{slowdown:.2f}"
        )

    # Per-kernel policy plan: each kernel gets its own configuration.
    policy_plan = simulator.policy_plan(
        EnergyPolicy(max_slowdown=1.10), "per-kernel energy policy"
    )
    policy_result = simulator.simulate(trace, policy_plan)
    saving = 1 - policy_result.total_energy_joules / reference.total_energy_joules
    print(
        f"\n{policy_result.plan_name}: "
        f"{policy_result.total_energy_joules:.2f} J ({100*saving:+.1f}%), "
        f"runtime x{policy_result.total_time_seconds / reference.total_time_seconds:.2f}"
    )
    for phase in policy_result.phases:
        print(f"  {phase.kernel_name:10s} -> {phase.config}")

    # Honesty check: execute the chosen plan on the device and compare.
    grade = simulator.grade_against_device(trace, policy_plan)
    print(
        f"\nsimulator accuracy on the chosen plan: "
        f"energy {100*grade['energy_error_fraction']:+.1f}%, "
        f"time {100*grade['time_error_fraction']:+.1f}% "
        "(predicted vs measured)"
    )


if __name__ == "__main__":
    main()
