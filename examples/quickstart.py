#!/usr/bin/env python
"""Quickstart: build a DVFS-aware power model and predict across the grid.

Reproduces the paper's core workflow end-to-end on the simulated GTX Titan X
(Maxwell):

1. run the 83-microbenchmark suite across the V-F grid and fit the model
   (Sec. III-D — takes a few seconds);
2. profile an *unseen* application (BlackScholes) once, at the reference
   configuration, to obtain its component utilizations (Eq. 8-10);
3. predict its power at every core/memory frequency configuration and
   compare a few of them against the simulated device's measurements.
"""

from __future__ import annotations

import repro


def main() -> None:
    gpu = repro.SimulatedGPU(repro.GTX_TITAN_X)
    session = repro.ProfilingSession(gpu)

    print(f"fitting the power model for {gpu.spec.name}...")
    model, report = repro.fit_power_model(session)
    print(
        f"  converged={report.converged} after {report.iterations} "
        f"iterations, training MAE {report.train_mae_percent:.1f}%"
    )
    p = model.parameters
    print(
        f"  beta0={p.beta0:.2f} W  beta1={p.beta1*1e3:.2f} mW/MHz  "
        f"omega_mem={p.omega_mem*1e3:.2f} mW/MHz"
    )

    # Profile an application the model has never seen — once, at the
    # reference configuration.
    kernel = repro.workload_by_name("blackscholes")
    events = session.collect_events(kernel)
    utilizations = repro.MetricCalculator(gpu.spec).utilizations(events)
    print(f"\nBlackScholes utilizations at {gpu.spec.reference}:")
    for component in repro.Component:
        value = utilizations[component]
        if value >= 0.01:
            print(f"  {component.value:7s} {value:.2f}")

    # Predict across configurations; spot-check against measurements.
    print("\nprediction vs measurement:")
    for core, memory in ((975, 3505), (1164, 3505), (975, 810), (595, 810)):
        config = repro.FrequencyConfig(core, memory)
        predicted = model.predict_power(utilizations, config)
        measured = session.measure_power(kernel, config).average_watts
        error = 100.0 * abs(predicted - measured) / measured
        print(
            f"  fcore={core:5.0f} fmem={memory:5.0f}:  "
            f"predicted {predicted:6.1f} W   measured {measured:6.1f} W   "
            f"({error:.1f}% error)"
        )

    # Per-component decomposition at the defaults (Fig. 5B/10 style).
    breakdown = model.predict_breakdown(utilizations, gpu.spec.reference)
    print(f"\npower breakdown at the defaults "
          f"({breakdown.total_watts:.1f} W total):")
    print(f"  constant {breakdown.constant_watts:.1f} W")
    for component, watts in breakdown.component_watts.items():
        if watts >= 0.5:
            print(f"  {component.value:7s} {watts:.1f} W")


if __name__ == "__main__":
    main()
