#!/usr/bin/env python
"""Sensor-less power estimation (use case 1 of Sec. V-B).

Many deployment GPUs expose no power sensor (or a VM hides it — the paper's
NVIDIA GRID / Hyper-V scenario): a model *built elsewhere* still turns plain
performance events into power estimates. This script:

1. builds the model on a "lab" device that has the NVML sensor;
2. ships only the fitted parameters to a "production" device of the same
   part, whose sensor we refuse to read;
3. estimates power for a stream of production kernels from their events
   alone, and — since this is a simulation — grades the estimates against
   the hidden truth the production host never saw.
"""

from __future__ import annotations

import repro


def main() -> None:
    # --- lab: device with a sensor; build the model once ---------------
    lab_gpu = repro.SimulatedGPU(repro.GTX_TITAN_X)
    lab_session = repro.ProfilingSession(lab_gpu)
    print("building the model on the lab device (sensor available)...")
    model, _ = repro.fit_power_model(lab_session)

    # --- production: same part, sensor off-limits ----------------------
    production_gpu = repro.SimulatedGPU(repro.GTX_TITAN_X)
    cupti = repro.CuptiContext(production_gpu)
    calculator = repro.MetricCalculator(production_gpu.spec)

    print("\nestimating production kernels from events only:")
    print(f"{'kernel':24s} {'config':28s} {'estimate':>9s} {'truth':>8s} {'err':>6s}")
    workload_names = (
        "blackscholes", "gemm", "lbm", "cutcp", "srad_v1", "kmeans",
    )
    configs = (
        repro.FrequencyConfig(975, 3505),
        repro.FrequencyConfig(1126, 3505),
        repro.FrequencyConfig(785, 810),
    )
    errors = []
    for name in workload_names:
        kernel = repro.workload_by_name(name)
        # Events are measured at the reference configuration, as always.
        events = cupti.collect_events(kernel)
        utilizations = calculator.utilizations(events)
        for config in configs:
            estimate = model.predict_power(utilizations, config)
            # Grading only: the hidden ground truth of the simulator.
            truth = production_gpu.run(kernel, config).true_power_watts
            error = 100.0 * abs(estimate - truth) / truth
            errors.append(error)
            print(
                f"{name:24s} {str(config):28s} "
                f"{estimate:8.1f}W {truth:7.1f}W {error:5.1f}%"
            )
    print(f"\nmean estimation error: {sum(errors)/len(errors):.1f}% "
          "(no sensor reading used)")


if __name__ == "__main__":
    main()
