#!/usr/bin/env python
"""DVFS management: find energy-optimal frequency configurations.

The Sec. V-B "DVFS management" use case and the paper's future-work
direction: instead of exhaustively *executing* an application at all 64 V-F
configurations of the GTX Titan X, profile it once, predict the power
everywhere with the model, and pick the configuration minimizing energy (or
energy-delay product) under a performance-loss budget.

The script tunes three applications with very different characters:

* BlackScholes — DRAM-bound: big savings come from core down-clocking,
  since its runtime barely depends on the core clock;
* CUTCP — compute-bound: memory down-clocking is nearly free, core
  down-clocking costs runtime;
* GEMM — balanced: the optimum sits in the middle of the grid.
"""

from __future__ import annotations

import repro
from repro.analysis.dvfs import DVFSAdvisor


def tune(advisor: DVFSAdvisor, name: str, max_slowdown: float) -> None:
    kernel = repro.workload_by_name(name)
    print(f"\n=== {name} (<= {100*(max_slowdown-1):.0f}% slowdown allowed) ===")
    reference = advisor.score_configurations(
        kernel, [advisor.session.gpu.spec.reference]
    )[0]
    print(
        f"reference {reference.config}: {reference.predicted_power_watts:.1f} W, "
        f"{1e3*reference.time_seconds:.2f} ms, "
        f"{reference.energy_joules:.3f} J"
    )
    for objective in ("energy", "edp"):
        best = advisor.recommend(
            kernel, objective=objective, max_slowdown=max_slowdown
        )
        saving = 1.0 - best.objective_value(objective) / reference.objective_value(
            objective
        )
        print(
            f"best {objective:6s}: {best.config}  "
            f"{best.predicted_power_watts:6.1f} W  "
            f"{1e3*best.time_seconds:7.2f} ms  "
            f"{best.energy_joules:.3f} J  "
            f"({100*saving:.1f}% {objective} saved)"
        )


def main() -> None:
    gpu = repro.SimulatedGPU(repro.GTX_TITAN_X)
    session = repro.ProfilingSession(gpu)
    print(f"fitting the power model for {gpu.spec.name}...")
    model, _ = repro.fit_power_model(session)
    advisor = DVFSAdvisor(model, session)

    tune(advisor, "blackscholes", max_slowdown=1.10)
    tune(advisor, "cutcp", max_slowdown=1.10)
    tune(advisor, "gemm", max_slowdown=1.10)

    # Unbounded energy minimum for the DRAM-bound case: the model lets the
    # search skip 63 of the 64 executions the exhaustive approach [29] needs.
    kernel = repro.workload_by_name("blackscholes")
    summary = advisor.savings_versus_reference(kernel, objective="energy")
    print(
        f"\nunbounded energy optimum for blackscholes: "
        f"fcore={summary['best_core_mhz']:.0f} MHz, "
        f"fmem={summary['best_memory_mhz']:.0f} MHz, "
        f"{100*summary['objective_saving_fraction']:.1f}% energy saved "
        f"at {summary['slowdown']:.2f}x runtime"
    )


if __name__ == "__main__":
    main()
