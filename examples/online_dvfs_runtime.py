#!/usr/bin/env python
"""Online DVFS management of an iterative application (Sec. VII).

The paper's closing future-work sketch, running end-to-end: an iterative
solver alternates a compute-heavy GEMM kernel with a memory-heavy streaming
kernel over many iterations. The :class:`OnlineDVFSManager` profiles each
kernel once, on its first invocation, predicts power across the whole V-F
grid with the model, picks the best configuration under an energy policy
with a 10 % slowdown budget, and pins every later invocation to it.

The script contrasts three policies on the same trace and shows the
profile-once cost amortizing over the run.
"""

from __future__ import annotations

import repro
from repro.runtime import (
    ApplicationTrace,
    EdpPolicy,
    EnergyPolicy,
    OnlineDVFSManager,
    PowerCapPolicy,
)


def run_policy(model, session, trace, label, policy) -> None:
    manager = OnlineDVFSManager(model, session, policy)
    report = manager.run_trace(trace)
    print(f"\n--- {label} ---")
    for name, config in report.chosen_configs().items():
        print(f"  {name:14s} -> {config}")
    print(
        f"  energy {report.total_energy_joules:.2f} J "
        f"({100*report.energy_saving_fraction:+.1f}% vs all-reference), "
        f"runtime x{report.slowdown:.3f}"
    )


def main() -> None:
    gpu = repro.SimulatedGPU(repro.GTX_TITAN_X)
    session = repro.ProfilingSession(gpu)
    print(f"fitting the power model for {gpu.spec.name}...")
    model, _ = repro.fit_power_model(session)

    # An iterative solver: 200 outer iterations, each launching a GEMM
    # update and a streaming residual kernel.
    trace = ApplicationTrace.from_pairs(
        "iterative-solver",
        [
            (repro.workload_by_name("gemm"), 200),
            (repro.workload_by_name("lbm"), 200),
            (repro.workload_by_name("gemm"), 100),
        ],
    )
    print(
        f"trace: {trace.total_invocations} kernel invocations, "
        f"{len(trace.distinct_kernels())} distinct kernels "
        "(each profiled exactly once)"
    )

    run_policy(
        model, session, trace,
        "minimum energy, <= 10% slowdown", EnergyPolicy(max_slowdown=1.10),
    )
    run_policy(model, session, trace, "minimum EDP", EdpPolicy())
    run_policy(
        model, session, trace,
        "150 W power cap, fastest admissible", PowerCapPolicy(cap_watts=150.0),
    )


if __name__ == "__main__":
    main()
