"""Legacy setuptools shim.

The offline environment has no ``wheel`` package, so PEP 660 editable
installs (``pip install -e .`` with a declared build backend) fail with
``invalid command 'bdist_wheel'``. Keeping this shim (and no
``[build-system]`` table in pyproject.toml) routes pip through the legacy
``setup.py develop`` path, which works without wheel. All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
