"""Failure-injection and robustness tests for the estimation pipeline.

A production measurement campaign occasionally misbehaves: a sensor glitch
doubles one reading, a configuration's data goes missing, a counter sticks
at zero. The estimator must degrade, not detonate.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.config import NOISELESS_SETTINGS
from repro.core.dataset import TrainingDataset, TrainingRow, collect_training_dataset
from repro.core.estimation import ModelEstimator
from repro.core.metrics import MetricCalculator, UtilizationVector
from repro.driver.session import ProfilingSession
from repro.hardware.components import ALL_COMPONENTS
from repro.hardware.gpu import SimulatedGPU
from repro.hardware.specs import FrequencyConfig, GTX_TITAN_X
from repro.microbench import suite_group
from repro.workloads import workload_by_name


@pytest.fixture(scope="module")
def base_session() -> ProfilingSession:
    return ProfilingSession(
        SimulatedGPU(GTX_TITAN_X, settings=NOISELESS_SETTINGS)
    )


@pytest.fixture(scope="module")
def base_dataset(base_session) -> TrainingDataset:
    kernels = (
        suite_group("sp") + suite_group("int") + suite_group("dram")
        + suite_group("shared") + suite_group("l2") + suite_group("idle")
    )
    configs = [
        FrequencyConfig(core, memory)
        for core in (595, 785, 975, 1164)
        for memory in (3505, 810)
    ]
    return collect_training_dataset(base_session, kernels, configs)


def validation_mae(model, session) -> float:
    from repro.analysis.validation import validate_model
    from repro.workloads import all_workloads

    configs = [
        FrequencyConfig(core, memory)
        for core in (595, 975, 1164)
        for memory in (3505, 810)
    ]
    return validate_model(
        model, session, all_workloads(), configs
    ).mean_absolute_error_percent


class TestOutlierMeasurements:
    def test_single_doubled_reading_barely_moves_the_model(
        self, base_session, base_dataset
    ):
        clean_model, _ = ModelEstimator(base_dataset).estimate()
        clean_mae = validation_mae(clean_model, base_session)

        rows = list(base_dataset.rows)
        victim = rows[7]
        rows[7] = dataclasses.replace(
            victim, measured_watts=victim.measured_watts * 2.0
        )
        corrupted = TrainingDataset(spec=base_dataset.spec, rows=tuple(rows))
        dirty_model, report = ModelEstimator(corrupted).estimate()
        assert report.iterations <= 50
        dirty_mae = validation_mae(dirty_model, base_session)
        # One bad row in ~360: the damage must stay under 1.5 pp.
        assert dirty_mae - clean_mae < 1.5

    def test_corrupted_configuration_is_contained(
        self, base_session, base_dataset
    ):
        """A whole configuration's power readings inflated by 30 % distorts
        that configuration's voltage estimate but not the rest."""
        target = FrequencyConfig(785, 3505)
        rows = []
        for row in base_dataset.rows:
            if row.config == target:
                row = dataclasses.replace(
                    row, measured_watts=row.measured_watts * 1.3
                )
            rows.append(row)
        corrupted = TrainingDataset(spec=base_dataset.spec, rows=tuple(rows))
        model, _ = ModelEstimator(corrupted).estimate()
        clean_model, _ = ModelEstimator(base_dataset).estimate()
        # The corrupted configuration absorbs the inflation in its voltage...
        assert (
            model.voltage_at(target).v_core
            > clean_model.voltage_at(target).v_core
        )
        # ...while the reference stays pinned and the far corner stays sane.
        far = FrequencyConfig(1164, 810)
        assert model.voltage_at(far).v_core == pytest.approx(
            clean_model.voltage_at(far).v_core, abs=0.08
        )


class TestDegenerateInputs:
    def test_zeroed_utilizations_still_fit(self, base_dataset):
        """All-zero utilization vectors (stuck counters) reduce the model to
        its constant terms without crashing."""
        zero = UtilizationVector(
            values={component: 0.0 for component in ALL_COMPONENTS}
        )
        rows = tuple(
            TrainingRow(
                kernel_name=row.kernel_name,
                config=row.config,
                measured_watts=row.measured_watts,
                utilizations=zero,
            )
            for row in base_dataset.rows
        )
        dataset = TrainingDataset(spec=base_dataset.spec, rows=rows)
        model, report = ModelEstimator(dataset).estimate()
        assert report.final_rmse >= 0
        # Predictions collapse to the constant part, identical per config.
        gemm = zero
        a = model.predict_power(gemm, FrequencyConfig(975, 3505))
        assert a > 0

    def test_single_configuration_dataset_fits_constants(self, base_session):
        kernels = suite_group("sp") + suite_group("dram") + suite_group("idle")
        dataset = collect_training_dataset(
            base_session, kernels, [GTX_TITAN_X.reference]
        )
        model, report = ModelEstimator(dataset).estimate()
        assert report.iterations <= 50
        # At the only seen configuration the fit must be tight.
        assert report.train_mae_percent < 5.0

    def test_duplicate_rows_are_harmless(self, base_dataset):
        doubled = TrainingDataset(
            spec=base_dataset.spec,
            rows=base_dataset.rows + base_dataset.rows,
        )
        model, _ = ModelEstimator(doubled).estimate()
        clean_model, _ = ModelEstimator(base_dataset).estimate()
        utilizations = MetricCalculator(GTX_TITAN_X).utilizations(
            ProfilingSession(
                SimulatedGPU(GTX_TITAN_X, settings=NOISELESS_SETTINGS)
            ).collect_events(workload_by_name("gemm"))
        )
        config = FrequencyConfig(975, 810)
        assert model.predict_power(utilizations, config) == pytest.approx(
            clean_model.predict_power(utilizations, config), rel=0.01
        )


class TestSeedStability:
    def test_different_master_seed_same_conclusions(self):
        """Re-rolling every noise source keeps the headline result in band:
        the accuracy claims do not hinge on one lucky seed."""
        from repro.analysis.validation import validate_model
        from repro.config import SimulationSettings
        from repro.core.estimation import fit_power_model
        from repro.workloads import all_workloads

        settings = SimulationSettings(master_seed=987654321)
        session = ProfilingSession(
            SimulatedGPU(GTX_TITAN_X, settings=settings)
        )
        model, _ = fit_power_model(session)
        configs = [
            FrequencyConfig(core, memory)
            for core in (595, 975, 1164)
            for memory in (3505, 810)
        ]
        result = validate_model(model, session, all_workloads(), configs)
        assert result.mean_absolute_error_percent < 9.0
