"""LRU prediction-cache tests (:mod:`repro.serving.cache`).

The hypothesis section pins the quantized-key contract the whole serving
layer leans on: ``1e-6`` bucketing is stable under float round-trips
(re-quantizing a canonical row is the identity), keys never collide across
distinct artifact ``version_key``s, and the fleet's vectorized
``quantize_matrix``/``dequantize_matrix`` agree element-for-element with
the scalar path the asyncio server uses.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ServingError
from repro.serving.cache import (
    DEFAULT_QUANTUM,
    PredictionCache,
    dequantize_matrix,
    quantize_matrix,
)


def key_of(cache, *values, version="m@v1:abc"):
    return cache.key(version, list(values))


class TestKeys:
    def test_quantize_buckets_nearby_values_together(self):
        cache = PredictionCache(quantum=0.01)
        assert cache.quantize([0.500, 0.5004]) == (50, 50)
        assert cache.quantize([0.506]) == (51,)

    def test_default_quantum_separates_distinct_utilizations(self):
        cache = PredictionCache()
        assert cache.quantum == DEFAULT_QUANTUM
        assert cache.quantize([0.5]) != cache.quantize([0.500002])

    def test_dequantize_is_canonical(self):
        cache = PredictionCache(quantum=0.01)
        row = cache.dequantize(cache.quantize([0.123, 0.9999]))
        assert row == pytest.approx([0.12, 1.0])
        # Idempotent: quantizing the canonical row changes nothing.
        assert cache.quantize(row) == cache.quantize([0.123, 0.9999])

    def test_key_carries_model_version(self):
        cache = PredictionCache()
        a = cache.key("m@v1:abc", [0.5])
        b = cache.key("m@v2:def", [0.5])
        assert a != b
        assert a[1] == b[1]


class TestLRU:
    def test_hit_returns_stored_vector(self):
        cache = PredictionCache()
        key = key_of(cache, 0.5)
        cache.put(key, np.asarray([1.0, 2.0]))
        stored = cache.get(key)
        assert list(stored) == [1.0, 2.0]

    def test_stored_vectors_are_read_only(self):
        cache = PredictionCache()
        key = key_of(cache, 0.5)
        cache.put(key, np.asarray([1.0, 2.0]))
        with pytest.raises(ValueError):
            cache.get(key)[0] = 99.0

    def test_capacity_evicts_least_recent(self):
        cache = PredictionCache(capacity=2)
        first, second, third = (key_of(cache, v) for v in (0.1, 0.2, 0.3))
        cache.put(first, np.asarray([1.0]))
        cache.put(second, np.asarray([2.0]))
        cache.put(third, np.asarray([3.0]))
        assert first not in cache
        assert second in cache and third in cache
        assert len(cache) == 2

    def test_get_refreshes_recency(self):
        cache = PredictionCache(capacity=2)
        first, second, third = (key_of(cache, v) for v in (0.1, 0.2, 0.3))
        cache.put(first, np.asarray([1.0]))
        cache.put(second, np.asarray([2.0]))
        cache.get(first)
        cache.put(third, np.asarray([3.0]))
        assert first in cache
        assert second not in cache

    def test_put_overwrites_and_refreshes(self):
        cache = PredictionCache(capacity=2)
        first, second, third = (key_of(cache, v) for v in (0.1, 0.2, 0.3))
        cache.put(first, np.asarray([1.0]))
        cache.put(second, np.asarray([2.0]))
        cache.put(first, np.asarray([1.5]))
        cache.put(third, np.asarray([3.0]))
        assert list(cache.get(first)) == [1.5]
        assert second not in cache

    def test_clear_empties_entries(self):
        cache = PredictionCache()
        cache.put(key_of(cache, 0.5), np.asarray([1.0]))
        cache.clear()
        assert len(cache) == 0


class TestStats:
    def test_counters_track_hits_misses_evictions(self):
        cache = PredictionCache(capacity=1)
        key = key_of(cache, 0.5)
        assert cache.get(key) is None
        cache.put(key, np.asarray([1.0]))
        cache.get(key)
        cache.put(key_of(cache, 0.6), np.asarray([2.0]))
        stats = cache.stats()
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.evictions == 1
        assert stats.entries == 1
        assert stats.capacity == 1
        assert stats.hit_rate == 0.5

    def test_hit_rate_of_idle_cache_is_zero(self):
        assert PredictionCache().stats().hit_rate == 0.0


#: Utilizations as the metric layer produces them: finite, in [0, 1].
unit_floats = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
utilization_rows = st.lists(unit_floats, min_size=1, max_size=7)
version_keys = st.text(min_size=1, max_size=24)


class TestQuantizationProperties:
    @given(utilization_rows)
    @settings(max_examples=200, deadline=None)
    def test_bucketing_is_stable_under_float_round_trips(self, values):
        """quantize ∘ dequantize is the identity on bucket space."""
        cache = PredictionCache()
        buckets = cache.quantize(values)
        canonical = cache.dequantize(buckets)
        assert cache.quantize(list(canonical)) == buckets
        # And once canonical, the row is a fixed point of the round trip.
        again = cache.dequantize(cache.quantize(list(canonical)))
        assert again.tobytes() == canonical.tobytes()

    @given(utilization_rows, version_keys, version_keys)
    @settings(max_examples=200, deadline=None)
    def test_keys_never_collide_across_version_keys(
        self, values, first_version, second_version
    ):
        cache = PredictionCache()
        first = cache.key(first_version, values)
        second = cache.key(second_version, values)
        assert (first == second) == (first_version == second_version)

    @given(st.lists(utilization_rows.map(lambda r: (r + [0.0] * 7)[:7]),
                    min_size=1, max_size=12))
    @settings(max_examples=200, deadline=None)
    def test_vectorized_path_matches_scalar_bitwise(self, rows):
        """The fleet's matrix helpers and the server's scalar path agree
        on every bucket and on every dequantized byte."""
        cache = PredictionCache()
        buckets = quantize_matrix(rows)
        rows_back = dequantize_matrix(buckets)
        for index, row in enumerate(rows):
            scalar = cache.quantize(row)
            assert tuple(buckets[index].tolist()) == scalar
            assert (
                rows_back[index].tobytes()
                == cache.dequantize(scalar).tobytes()
            )

    @given(unit_floats, st.integers(min_value=-1, max_value=1))
    @settings(max_examples=200, deadline=None)
    def test_neighbouring_buckets_stay_distinct(self, value, offset):
        """Shifting any value by one full quantum always changes its key
        (at a round-half-even tie it may hop two buckets — never zero)."""
        cache = PredictionCache()
        shifted = value + offset * cache.quantum
        (a,), (b,) = cache.quantize([value]), cache.quantize([shifted])
        assert (a == b) == (offset == 0)


class TestValidation:
    def test_zero_capacity_rejected(self):
        with pytest.raises(ServingError, match="capacity"):
            PredictionCache(capacity=0)

    def test_bad_quantum_rejected(self):
        with pytest.raises(ServingError, match="quantum"):
            PredictionCache(quantum=0.0)
        with pytest.raises(ServingError, match="quantum"):
            PredictionCache(quantum=1.5)
