"""LRU prediction-cache tests (:mod:`repro.serving.cache`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ServingError
from repro.serving.cache import DEFAULT_QUANTUM, PredictionCache


def key_of(cache, *values, version="m@v1:abc"):
    return cache.key(version, list(values))


class TestKeys:
    def test_quantize_buckets_nearby_values_together(self):
        cache = PredictionCache(quantum=0.01)
        assert cache.quantize([0.500, 0.5004]) == (50, 50)
        assert cache.quantize([0.506]) == (51,)

    def test_default_quantum_separates_distinct_utilizations(self):
        cache = PredictionCache()
        assert cache.quantum == DEFAULT_QUANTUM
        assert cache.quantize([0.5]) != cache.quantize([0.500002])

    def test_dequantize_is_canonical(self):
        cache = PredictionCache(quantum=0.01)
        row = cache.dequantize(cache.quantize([0.123, 0.9999]))
        assert row == pytest.approx([0.12, 1.0])
        # Idempotent: quantizing the canonical row changes nothing.
        assert cache.quantize(row) == cache.quantize([0.123, 0.9999])

    def test_key_carries_model_version(self):
        cache = PredictionCache()
        a = cache.key("m@v1:abc", [0.5])
        b = cache.key("m@v2:def", [0.5])
        assert a != b
        assert a[1] == b[1]


class TestLRU:
    def test_hit_returns_stored_vector(self):
        cache = PredictionCache()
        key = key_of(cache, 0.5)
        cache.put(key, np.asarray([1.0, 2.0]))
        stored = cache.get(key)
        assert list(stored) == [1.0, 2.0]

    def test_stored_vectors_are_read_only(self):
        cache = PredictionCache()
        key = key_of(cache, 0.5)
        cache.put(key, np.asarray([1.0, 2.0]))
        with pytest.raises(ValueError):
            cache.get(key)[0] = 99.0

    def test_capacity_evicts_least_recent(self):
        cache = PredictionCache(capacity=2)
        first, second, third = (key_of(cache, v) for v in (0.1, 0.2, 0.3))
        cache.put(first, np.asarray([1.0]))
        cache.put(second, np.asarray([2.0]))
        cache.put(third, np.asarray([3.0]))
        assert first not in cache
        assert second in cache and third in cache
        assert len(cache) == 2

    def test_get_refreshes_recency(self):
        cache = PredictionCache(capacity=2)
        first, second, third = (key_of(cache, v) for v in (0.1, 0.2, 0.3))
        cache.put(first, np.asarray([1.0]))
        cache.put(second, np.asarray([2.0]))
        cache.get(first)
        cache.put(third, np.asarray([3.0]))
        assert first in cache
        assert second not in cache

    def test_put_overwrites_and_refreshes(self):
        cache = PredictionCache(capacity=2)
        first, second, third = (key_of(cache, v) for v in (0.1, 0.2, 0.3))
        cache.put(first, np.asarray([1.0]))
        cache.put(second, np.asarray([2.0]))
        cache.put(first, np.asarray([1.5]))
        cache.put(third, np.asarray([3.0]))
        assert list(cache.get(first)) == [1.5]
        assert second not in cache

    def test_clear_empties_entries(self):
        cache = PredictionCache()
        cache.put(key_of(cache, 0.5), np.asarray([1.0]))
        cache.clear()
        assert len(cache) == 0


class TestStats:
    def test_counters_track_hits_misses_evictions(self):
        cache = PredictionCache(capacity=1)
        key = key_of(cache, 0.5)
        assert cache.get(key) is None
        cache.put(key, np.asarray([1.0]))
        cache.get(key)
        cache.put(key_of(cache, 0.6), np.asarray([2.0]))
        stats = cache.stats()
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.evictions == 1
        assert stats.entries == 1
        assert stats.capacity == 1
        assert stats.hit_rate == 0.5

    def test_hit_rate_of_idle_cache_is_zero(self):
        assert PredictionCache().stats().hit_rate == 0.0


class TestValidation:
    def test_zero_capacity_rejected(self):
        with pytest.raises(ServingError, match="capacity"):
            PredictionCache(capacity=0)

    def test_bad_quantum_rejected(self):
        with pytest.raises(ServingError, match="quantum"):
            PredictionCache(quantum=0.0)
        with pytest.raises(ServingError, match="quantum"):
            PredictionCache(quantum=1.5)
