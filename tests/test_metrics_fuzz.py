"""Property tests (seeded fuzz) for the Eq. 8-10 utilization metrics.

Whatever raw event values CUPTI hands back — including the corner cases the
chaos layer injects (zero counters, 32-bit saturated counters, wildly
inconsistent mixtures) — the computed utilizations must always be finite
and land in [0, 1], and the only rejection the calculator is allowed is the
documented ``active_cycles <= 0`` :class:`MetricError`.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.metrics import MetricCalculator
from repro.driver.cupti import EventRecord
from repro.driver.events import event_table_for
from repro.errors import MetricError
from repro.hardware.components import ALL_COMPONENTS
from repro.hardware.specs import ALL_GPUS

#: Hypothesis/load-generator heavy suite: part of the --runslow tier
#: (CI's coverage job passes --runslow; see CONTRIBUTING.md).
pytestmark = pytest.mark.slow

#: The value a pegged 32-bit hardware counter reads back.
SATURATED = float(2**32 - 1)

#: The event-table groups the calculator consumes.
GROUPS = (
    "active_cycles",
    "warps_sp_int",
    "warps_dp",
    "warps_sf",
    "inst_int",
    "inst_sp",
    "l2_read_sector_queries",
    "l2_write_sector_queries",
    "shared_load_transactions",
    "shared_store_transactions",
    "dram_read_sectors",
    "dram_write_sectors",
)


def _event_names(spec):
    table = event_table_for(spec.architecture)
    names = []
    for group in GROUPS:
        names.extend(getattr(table, group))
    return tuple(dict.fromkeys(names))


def _record(spec, values, config=None):
    return EventRecord(
        kernel_name="fuzz",
        architecture=spec.architecture,
        config=config or spec.reference,
        values=values,
        elapsed_seconds=1e-3,
    )


#: One raw counter value: zero, tiny, plausible, huge, or 32-bit saturated.
counter_values = st.one_of(
    st.just(0.0),
    st.just(SATURATED),
    st.floats(
        min_value=0.0,
        max_value=SATURATED,
        allow_nan=False,
        allow_infinity=False,
    ),
)


@pytest.mark.parametrize(
    "spec", ALL_GPUS, ids=[spec.name for spec in ALL_GPUS]
)
class TestUtilizationProperties:
    @settings(max_examples=120, deadline=None, derandomize=True)
    @given(data=st.data())
    def test_utilizations_always_in_unit_interval(self, spec, data):
        names = _event_names(spec)
        values = {
            name: data.draw(counter_values, label=name) for name in names
        }
        configs = spec.all_configurations()
        config = configs[data.draw(
            st.integers(min_value=0, max_value=len(configs) - 1),
            label="config",
        )]
        calculator = MetricCalculator(spec)
        record = _record(spec, values, config)
        active_cycles = record.total(calculator.table.active_cycles)
        if active_cycles <= 0:
            with pytest.raises(MetricError):
                calculator.utilizations(record)
            return
        vector = calculator.utilizations(record)
        for component in ALL_COMPONENTS:
            value = vector[component]
            assert np.isfinite(value)
            assert 0.0 <= value <= 1.0
        assert np.isfinite(vector.core_array()).all()

    def test_zero_cycle_record_raises_metric_error(self, spec):
        values = {name: 0.0 for name in _event_names(spec)}
        with pytest.raises(MetricError):
            MetricCalculator(spec).utilizations(_record(spec, values))

    def test_all_saturated_counters_clip_to_one(self, spec):
        """Every counter pegged at 2^32-1: the chaos layer's saturation
        fault in its most extreme form. Everything must clip into [0, 1]
        (the SP/INT split sees a 50/50 instruction mix, so those two land
        at most at 1 after clipping, never above)."""
        values = {name: SATURATED for name in _event_names(spec)}
        vector = MetricCalculator(spec).utilizations(_record(spec, values))
        for component in ALL_COMPONENTS:
            assert np.isfinite(vector[component])
            assert 0.0 <= vector[component] <= 1.0

    def test_zero_instructions_zero_sp_int_split(self, spec):
        """Eq. 10 with inst_int + inst_sp == 0 must not divide by zero."""
        names = _event_names(spec)
        table = event_table_for(spec.architecture)
        values = {name: 0.0 for name in names}
        for name in table.active_cycles:
            values[name] = 1e6
        for name in table.warps_sp_int:
            values[name] = SATURATED  # warps counted, instructions lost
        vector = MetricCalculator(spec).utilizations(_record(spec, values))
        from repro.hardware.components import Component

        assert vector[Component.SP] == 0.0
        assert vector[Component.INT] == 0.0
