"""Unit tests for :mod:`repro.hardware.components`."""

from __future__ import annotations

import pytest

from repro.hardware.components import (
    ALL_COMPONENTS,
    CORE_COMPONENTS,
    COMPONENT_DOMAINS,
    MEMORY_COMPONENTS,
    Component,
    Domain,
    components_of,
)


class TestComponentTaxonomy:
    def test_seven_modeled_components(self):
        # Sec. III-B: Int, SP, DP, SF, shared memory, L2 cache, DRAM.
        assert len(ALL_COMPONENTS) == 7

    def test_core_domain_has_six_components(self):
        assert len(CORE_COMPONENTS) == 6
        assert Component.DRAM not in CORE_COMPONENTS

    def test_memory_domain_is_dram_only(self):
        assert MEMORY_COMPONENTS == (Component.DRAM,)

    def test_l2_belongs_to_core_domain(self):
        # Sec. III-A: "the core domain (Pcore), which includes the L2 cache".
        assert Component.L2.domain is Domain.CORE

    def test_dram_belongs_to_memory_domain(self):
        assert Component.DRAM.domain is Domain.MEMORY

    def test_every_component_has_a_domain(self):
        for component in Component:
            assert component in COMPONENT_DOMAINS

    def test_compute_units(self):
        compute = {c for c in Component if c.is_compute_unit}
        assert compute == {
            Component.INT, Component.SP, Component.DP, Component.SF
        }

    def test_memory_levels(self):
        memory = {c for c in Component if c.is_memory_level}
        assert memory == {Component.SHARED, Component.L2, Component.DRAM}

    def test_compute_and_memory_partition_components(self):
        for component in Component:
            assert component.is_compute_unit != component.is_memory_level

    def test_components_of_core(self):
        assert components_of(Domain.CORE) == CORE_COMPONENTS

    def test_components_of_memory(self):
        assert components_of(Domain.MEMORY) == MEMORY_COMPONENTS

    def test_all_components_order_is_core_then_memory(self):
        assert ALL_COMPONENTS == CORE_COMPONENTS + MEMORY_COMPONENTS
