"""Tests for multi-kernel applications (:mod:`repro.workloads.composite`)."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.hardware.specs import FrequencyConfig
from repro.workloads import workload_by_name
from repro.workloads.composite import (
    MultiKernelApplication,
    kmeans_application,
)


class TestStructure:
    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            MultiKernelApplication(name="empty", kernels=())

    def test_rejects_zero_launches(self):
        with pytest.raises(ValidationError):
            MultiKernelApplication(
                name="bad", kernels=((workload_by_name("gemm"), 0),)
            )

    def test_rejects_duplicate_kernels(self):
        gemm = workload_by_name("gemm")
        with pytest.raises(ValidationError):
            MultiKernelApplication(
                name="dup", kernels=((gemm, 1), (gemm, 2))
            )

    def test_of_builder(self):
        application = MultiKernelApplication.of(
            "pair", workload_by_name("gemm"), workload_by_name("lbm")
        )
        assert len(application.kernels) == 2

    def test_kmeans_has_two_kernels(self):
        application = kmeans_application()
        names = [kernel.name for kernel, _ in application.kernels]
        assert names == ["kmeans", "kmeans_2"]


class TestWeightedAggregation:
    def test_single_kernel_reduces_to_plain_measurement(self, lab):
        session = lab.session("GTX Titan X")
        gemm = workload_by_name("gemm")
        application = MultiKernelApplication.of("solo", gemm)
        combined = application.measure_power(session)
        plain = session.measure_power(gemm).average_watts
        assert combined == pytest.approx(plain)

    def test_weighted_power_between_components(self, lab):
        """The application's power lies between its kernels' powers."""
        session = lab.session("GTX Titan X")
        application = MultiKernelApplication.of(
            "pair", workload_by_name("blackscholes"), workload_by_name("cutcp")
        )
        combined = application.measure_power(session)
        powers = [
            session.measure_power(kernel).average_watts
            for kernel, _ in application.kernels
        ]
        assert min(powers) <= combined <= max(powers)

    def test_launch_multiplicity_shifts_the_weighting(self, lab):
        session = lab.session("GTX Titan X")
        hot = workload_by_name("blackscholes")
        cool = workload_by_name("gaussian")
        hot_heavy = MultiKernelApplication(
            name="hot-heavy", kernels=((hot, 10), (cool, 1))
        )
        cool_heavy = MultiKernelApplication(
            name="cool-heavy", kernels=((hot, 1), (cool, 10))
        )
        assert hot_heavy.measure_power(session) > cool_heavy.measure_power(
            session
        )

    def test_dominant_kernel(self, lab):
        session = lab.session("GTX Titan X")
        application = MultiKernelApplication(
            name="skewed",
            kernels=((workload_by_name("gemm"), 10),
                     (workload_by_name("lbm"), 1)),
        )
        assert application.dominant_kernel(session) == "gemm"

    def test_dominance_can_flip_with_configuration(self, lab):
        """At the low memory clock the DRAM-bound kernel's runtime balloons,
        so the time weighting shifts toward it — the effect the paper's
        weighted aggregation exists to capture."""
        session = lab.session("GTX Titan X")
        application = MultiKernelApplication(
            name="balance",
            kernels=((workload_by_name("cutcp"), 2),
                     (workload_by_name("blackscholes"), 1)),
        )
        at_reference = application.dominant_kernel(session)
        at_low_memory = application.dominant_kernel(
            session, FrequencyConfig(975, 810)
        )
        assert at_reference == "cutcp"
        assert at_low_memory == "blackscholes"


class TestPrediction:
    def test_prediction_tracks_measurement(self, lab):
        session = lab.session("GTX Titan X")
        model = lab.model("GTX Titan X")
        application = kmeans_application()
        for config in (FrequencyConfig(975, 3505), FrequencyConfig(785, 810)):
            predicted = application.predict_power(model, session, config)
            measured = application.measure_power(session, config)
            assert predicted == pytest.approx(measured, rel=0.15), config

    def test_pre_collected_utilizations_reused(self, lab):
        from repro.core.metrics import MetricCalculator

        session = lab.session("GTX Titan X")
        model = lab.model("GTX Titan X")
        application = kmeans_application()
        calculator = MetricCalculator(session.gpu.spec)
        vectors = {
            kernel.name: calculator.utilizations(
                session.collect_events(kernel)
            )
            for kernel, _ in application.kernels
        }
        a = application.predict_power(model, session, utilizations=vectors)
        b = application.predict_power(model, session)
        assert a == pytest.approx(b)
