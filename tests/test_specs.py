"""Unit tests for :mod:`repro.hardware.specs` (Table II)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import FrequencyError, SpecError
from repro.hardware.components import Component
from repro.hardware.specs import (
    ALL_GPUS,
    FrequencyConfig,
    GPUSpec,
    GTX_TITAN_X,
    TESLA_K40C,
    TITAN_XP,
    gpu_spec_by_name,
)


class TestTableII:
    """The spec sheet values the paper reports."""

    def test_three_devices(self):
        assert len(ALL_GPUS) == 3

    @pytest.mark.parametrize(
        "spec, architecture, capability, sms",
        [
            (TITAN_XP, "Pascal", "6.1", 30),
            (GTX_TITAN_X, "Maxwell", "5.2", 24),
            (TESLA_K40C, "Kepler", "3.5", 15),
        ],
    )
    def test_architecture_row(self, spec, architecture, capability, sms):
        assert spec.architecture == architecture
        assert spec.compute_capability == capability
        assert spec.sm_count == sms

    @pytest.mark.parametrize(
        "spec, core_levels, memory_levels",
        [(TITAN_XP, 22, 2), (GTX_TITAN_X, 16, 4), (TESLA_K40C, 4, 1)],
    )
    def test_frequency_level_counts(self, spec, core_levels, memory_levels):
        assert len(spec.core_frequencies_mhz) == core_levels
        assert len(spec.memory_frequencies_mhz) == memory_levels

    @pytest.mark.parametrize(
        "spec, default_core, default_memory",
        [
            (TITAN_XP, 1404, 5705),
            (GTX_TITAN_X, 975, 3505),
            (TESLA_K40C, 875, 3004),
        ],
    )
    def test_defaults(self, spec, default_core, default_memory):
        assert spec.default_core_mhz == default_core
        assert spec.default_memory_mhz == default_memory

    @pytest.mark.parametrize(
        "spec, low, high",
        [
            (TITAN_XP, 582, 1911),
            (GTX_TITAN_X, 595, 1164),
            (TESLA_K40C, 666, 875),
        ],
    )
    def test_core_ranges(self, spec, low, high):
        assert min(spec.core_frequencies_mhz) == low
        assert max(spec.core_frequencies_mhz) == high

    def test_titan_x_has_fig9_throttle_level(self):
        # The Fig. 9 footnote: throttling from 1164 falls to 1126 MHz.
        assert 1126 in GTX_TITAN_X.core_frequencies_mhz

    def test_unit_counts(self, any_spec):
        assert any_spec.warp_size == 32
        assert any_spec.sf_units_per_sm == 32
        assert any_spec.shared_memory_banks == 32

    def test_kepler_unit_counts_differ(self):
        assert TESLA_K40C.sp_int_units_per_sm == 192
        assert TESLA_K40C.dp_units_per_sm == 64
        assert GTX_TITAN_X.dp_units_per_sm == 4

    @pytest.mark.parametrize(
        "spec, tdp", [(TITAN_XP, 250), (GTX_TITAN_X, 250), (TESLA_K40C, 235)]
    )
    def test_tdp(self, spec, tdp):
        assert spec.tdp_watts == tdp

    @pytest.mark.parametrize(
        "spec, refresh", [(TITAN_XP, 35), (GTX_TITAN_X, 100), (TESLA_K40C, 15)]
    )
    def test_nvml_refresh_periods(self, spec, refresh):
        assert spec.nvml_refresh_ms == refresh


class TestFrequencyConfig:
    def test_rejects_nonpositive(self):
        with pytest.raises(SpecError):
            FrequencyConfig(0, 3505)

    def test_equality(self):
        assert FrequencyConfig(975, 3505) == FrequencyConfig(975, 3505)

    def test_reference(self):
        assert GTX_TITAN_X.reference == FrequencyConfig(975, 3505)

    def test_max_configuration(self):
        assert GTX_TITAN_X.max_configuration == FrequencyConfig(1164, 4005)


class TestConfigurationGrid:
    def test_grid_size(self, any_spec):
        grid = any_spec.all_configurations()
        expected = len(any_spec.core_frequencies_mhz) * len(
            any_spec.memory_frequencies_mhz
        )
        assert len(grid) == expected
        assert len(set(grid)) == expected

    def test_grid_contains_reference(self, any_spec):
        assert any_spec.reference in any_spec.all_configurations()

    def test_validate_snaps_to_level(self):
        snapped = GTX_TITAN_X.validate_configuration(
            FrequencyConfig(975.3, 3505.2)
        )
        assert snapped == FrequencyConfig(975, 3505)

    def test_validate_rejects_unknown_core(self):
        with pytest.raises(FrequencyError):
            GTX_TITAN_X.validate_configuration(FrequencyConfig(1000, 3505))

    def test_validate_rejects_unknown_memory(self):
        with pytest.raises(FrequencyError):
            GTX_TITAN_X.validate_configuration(FrequencyConfig(975, 2000))


class TestPeakRates:
    def test_dram_peak_bandwidth_matches_public_figure(self):
        # 3505 MHz x 48 B x DDR = ~336.5 GB/s, the Titan X datasheet figure.
        assert GTX_TITAN_X.dram_peak_bandwidth(3505) == pytest.approx(
            336.48e9, rel=1e-3
        )

    def test_dram_peak_scales_with_memory_frequency(self):
        full = GTX_TITAN_X.dram_peak_bandwidth(3505)
        low = GTX_TITAN_X.dram_peak_bandwidth(810)
        assert low / full == pytest.approx(810 / 3505)

    def test_shared_peak_scales_with_core_frequency(self):
        full = GTX_TITAN_X.shared_peak_bandwidth(975)
        half = GTX_TITAN_X.shared_peak_bandwidth(487.5)
        assert half == pytest.approx(full / 2)

    def test_peak_warp_rate_sp(self):
        # 128 lanes / 32 = 4 warps per SM per cycle, 24 SMs at 975 MHz.
        expected = 4 * 24 * 975e6
        assert GTX_TITAN_X.peak_warp_rate(Component.SP, 975) == pytest.approx(
            expected
        )

    def test_peak_warp_rate_rejects_memory_level(self):
        with pytest.raises(SpecError):
            GTX_TITAN_X.peak_warp_rate(Component.DRAM, 975)

    def test_peak_bandwidth_rejects_compute_unit(self):
        with pytest.raises(SpecError):
            GTX_TITAN_X.peak_bandwidth(Component.SP, GTX_TITAN_X.reference)

    def test_units_per_sm_int_equals_sp(self, any_spec):
        # Sec. III-C: SP and INT share the same execution units.
        assert any_spec.units_per_sm(Component.INT) == any_spec.units_per_sm(
            Component.SP
        )


class TestSpecValidationAndLookup:
    def test_lookup_by_name(self):
        assert gpu_spec_by_name("gtx titan x") is GTX_TITAN_X

    def test_lookup_by_architecture(self):
        assert gpu_spec_by_name("Pascal") is TITAN_XP

    def test_lookup_unknown_raises(self):
        with pytest.raises(SpecError):
            gpu_spec_by_name("Volta")

    def test_default_core_must_be_a_level(self):
        with pytest.raises(SpecError):
            dataclasses.replace(GTX_TITAN_X, default_core_mhz=1000)

    def test_default_memory_must_be_a_level(self):
        with pytest.raises(SpecError):
            dataclasses.replace(GTX_TITAN_X, default_memory_mhz=9999)

    def test_sm_count_must_be_positive(self):
        with pytest.raises(SpecError):
            dataclasses.replace(GTX_TITAN_X, sm_count=0)
