"""Tests for the event-meaning discovery subsystem
(:mod:`repro.discovery`, reproducing the Sec. III-C methodology)."""

from __future__ import annotations

import pytest

from repro.config import NOISELESS_SETTINGS
from repro.discovery import (
    AnonymizedCupti,
    EventIdentifier,
    measure_l2_peak_bytes_per_cycle,
)
from repro.discovery.identify import _default_probes
from repro.driver.session import ProfilingSession
from repro.errors import ValidationError
from repro.hardware.gpu import SimulatedGPU
from repro.hardware.specs import GTX_TITAN_X, TESLA_K40C, TITAN_XP
from repro.workloads import workload_by_name


class TestAnonymizedCupti:
    def test_names_are_opaque(self):
        cupti = AnonymizedCupti(SimulatedGPU(GTX_TITAN_X))
        for event_id in cupti.event_ids:
            assert event_id.startswith("event_0x")

    def test_mapping_is_a_bijection(self):
        cupti = AnonymizedCupti(SimulatedGPU(GTX_TITAN_X))
        mapping = cupti.debug_true_mapping()
        assert len(set(mapping.values())) == len(mapping)
        assert set(mapping) == set(cupti.event_ids)

    def test_values_preserved_under_renaming(self):
        gpu = SimulatedGPU(GTX_TITAN_X, settings=NOISELESS_SETTINGS)
        anonymous = AnonymizedCupti(gpu)
        kernel = workload_by_name("gemm")
        record = anonymous.collect_events(kernel)
        truth = gpu.run(kernel)
        mapping = anonymous.debug_true_mapping()
        # The anonymous record holds the same multiset of values as a
        # plain collection would.
        from repro.driver.cupti import CuptiContext

        plain = CuptiContext(gpu).collect_events(kernel)
        for anonymous_name, value in record.values.items():
            assert value == pytest.approx(plain.value(mapping[anonymous_name]))
        assert truth is not None

    def test_scramble_seed_changes_ids(self):
        gpu = SimulatedGPU(GTX_TITAN_X)
        a = AnonymizedCupti(gpu, scramble_seed=0).debug_true_mapping()
        b = AnonymizedCupti(gpu, scramble_seed=1).debug_true_mapping()
        assert a != b


class TestEventIdentifier:
    @pytest.mark.parametrize("spec", [GTX_TITAN_X, TITAN_XP, TESLA_K40C])
    def test_full_identification_under_default_noise(self, spec):
        """Every counter identified correctly on every device — the paper
        shipped a complete Table I, so the methodology must converge even on
        Kepler's noisy counters."""
        gpu = SimulatedGPU(spec)
        cupti = AnonymizedCupti(gpu)
        result = EventIdentifier(cupti, spec).identify()
        assert result.grade(cupti.debug_true_mapping()) == 1.0
        assert not result.unidentified

    def test_subpartition_counts_recovered(self):
        spec = TESLA_K40C
        cupti = AnonymizedCupti(SimulatedGPU(spec))
        result = EventIdentifier(cupti, spec).identify()
        # Kepler splits the L2 queries over 4 sub-partitions and the
        # SP/INT warps over 4 raw events.
        assert len(result.counters_for("l2_read_sector_queries")) == 4
        assert len(result.counters_for("warps_sp_int")) == 4
        assert len(result.counters_for("dram_read_sectors")) == 2

    def test_identification_robust_to_scrambling(self):
        spec = GTX_TITAN_X
        gpu = SimulatedGPU(spec)
        for seed in (1, 2, 3):
            cupti = AnonymizedCupti(gpu, scramble_seed=seed)
            result = EventIdentifier(cupti, spec).identify()
            assert result.grade(cupti.debug_true_mapping()) == 1.0

    def test_semantic_of_unknown_counter_is_none(self):
        cupti = AnonymizedCupti(SimulatedGPU(GTX_TITAN_X))
        result = EventIdentifier(cupti, GTX_TITAN_X).identify()
        assert result.semantic_of("event_0xdead") is None

    def test_requires_enough_probes(self):
        cupti = AnonymizedCupti(SimulatedGPU(GTX_TITAN_X))
        with pytest.raises(ValidationError):
            EventIdentifier(
                cupti, GTX_TITAN_X, probes=_default_probes()[:2]
            )

    def test_probe_set_contains_asymmetric_probes(self):
        names = {probe.name for probe in _default_probes()}
        assert "probe_dram_read_heavy" in names
        assert "probe_shared_store_heavy" in names


class TestL2PeakMeasurement:
    def test_measured_peak_close_to_spec(self):
        session = ProfilingSession(
            SimulatedGPU(GTX_TITAN_X, settings=NOISELESS_SETTINGS)
        )
        peak = measure_l2_peak_bytes_per_cycle(session)
        assert peak == pytest.approx(
            GTX_TITAN_X.l2_bytes_per_cycle, rel=0.10
        )

    def test_peak_is_a_lower_bound(self):
        session = ProfilingSession(
            SimulatedGPU(GTX_TITAN_X, settings=NOISELESS_SETTINGS)
        )
        peak = measure_l2_peak_bytes_per_cycle(session)
        assert peak <= GTX_TITAN_X.l2_bytes_per_cycle * 1.01

    def test_weak_kernels_give_smaller_estimate(self):
        from repro.microbench import suite_group

        session = ProfilingSession(
            SimulatedGPU(GTX_TITAN_X, settings=NOISELESS_SETTINGS)
        )
        weak = measure_l2_peak_bytes_per_cycle(
            session, kernels=suite_group("l2")[:2]
        )
        strong = measure_l2_peak_bytes_per_cycle(session)
        assert weak <= strong

    def test_rejects_empty_kernel_set(self):
        session = ProfilingSession(SimulatedGPU(GTX_TITAN_X))
        with pytest.raises(ValidationError):
            measure_l2_peak_bytes_per_cycle(session, kernels=[])

    def test_rejects_trafficless_kernels(self):
        from repro.kernels.kernel import idle_kernel

        session = ProfilingSession(SimulatedGPU(GTX_TITAN_X))
        with pytest.raises(ValidationError):
            measure_l2_peak_bytes_per_cycle(session, kernels=[idle_kernel()])
