"""Unit tests for the 83-microbenchmark suite (:mod:`repro.microbench`)."""

from __future__ import annotations

import pytest

from repro.config import NOISELESS_SETTINGS
from repro.core.metrics import MetricCalculator
from repro.driver.cupti import CuptiContext
from repro.errors import ValidationError
from repro.hardware.components import Component
from repro.hardware.gpu import SimulatedGPU
from repro.hardware.specs import GTX_TITAN_X
from repro.microbench import MICROBENCHMARK_GROUPS, build_suite, suite_group
from repro.microbench.suite import SUITE_SIZE


class TestSuiteComposition:
    def test_total_size_is_83(self):
        assert len(build_suite()) == SUITE_SIZE == 83

    def test_group_sizes_match_fig5(self):
        # Fig. 5 annotations: INT x12, SP x11, DP x12, SF x8, L2 x10,
        # Shared x10, DRAM x12, MIX x7 (+ Idle).
        assert MICROBENCHMARK_GROUPS == {
            "int": 12, "sp": 11, "dp": 12, "sf": 8,
            "l2": 10, "shared": 10, "dram": 12, "mix": 7, "idle": 1,
        }

    @pytest.mark.parametrize("group", list(MICROBENCHMARK_GROUPS))
    def test_each_group_builds_declared_count(self, group):
        assert len(suite_group(group)) == MICROBENCHMARK_GROUPS[group]

    def test_unknown_group_rejected(self):
        with pytest.raises(ValidationError):
            suite_group("texture")

    def test_names_unique(self):
        names = [kernel.name for kernel in build_suite()]
        assert len(set(names)) == len(names)

    def test_all_tagged_with_group(self):
        for kernel in build_suite():
            assert kernel.tags.get("group") in MICROBENCHMARK_GROUPS

    def test_suite_marker(self):
        assert all(k.suite == "microbench" for k in build_suite())


class TestIntensityLadders:
    """Fig. 5A: along each ladder the target unit's utilization grows while
    the memory hierarchy's utilization falls."""

    @pytest.fixture(scope="class")
    def utilizations(self):
        gpu = SimulatedGPU(GTX_TITAN_X, settings=NOISELESS_SETTINGS)
        cupti = CuptiContext(gpu)
        calculator = MetricCalculator(GTX_TITAN_X)
        return {
            kernel.name: calculator.utilizations(cupti.collect_events(kernel))
            for kernel in build_suite()
        }

    @pytest.mark.parametrize(
        "group, component",
        [
            ("int", Component.INT),
            ("sp", Component.SP),
            ("dp", Component.DP),
            ("sf", Component.SF),
        ],
    )
    def test_target_unit_utilization_grows_with_intensity(
        self, utilizations, group, component
    ):
        ladder = [utilizations[k.name][component] for k in suite_group(group)]
        assert ladder[0] < ladder[-1]
        # Monotone non-decreasing along the ladder.
        assert all(b >= a - 1e-9 for a, b in zip(ladder, ladder[1:]))

    @pytest.mark.parametrize("group", ["int", "sp"])
    def test_dram_utilization_falls_with_intensity(self, utilizations, group):
        ladder = [
            utilizations[k.name][Component.DRAM] for k in suite_group(group)
        ]
        assert ladder[0] > ladder[-1]

    def test_high_intensity_saturates_unit(self, utilizations):
        final = suite_group("sp")[-1]
        assert utilizations[final.name][Component.SP] > 0.85

    @pytest.mark.parametrize(
        "group, component",
        [
            ("shared", Component.SHARED),
            ("l2", Component.L2),
            ("dram", Component.DRAM),
        ],
    )
    def test_memory_groups_stress_their_level(
        self, utilizations, group, component
    ):
        peak = max(
            utilizations[k.name][component] for k in suite_group(group)
        )
        assert peak > 0.7

    def test_dram_ladder_covers_a_range(self, utilizations):
        values = [
            utilizations[k.name][Component.DRAM]
            for k in suite_group("dram")
        ]
        assert max(values) - min(values) > 0.3

    def test_mix_kernels_touch_multiple_components(self, utilizations):
        for kernel in suite_group("mix"):
            active = [
                component
                for component in Component
                if utilizations[kernel.name][component] > 0.1
            ]
            assert len(active) >= 2, kernel.name

    def test_idle_has_zero_utilization_everywhere(self, utilizations):
        idle = utilizations["idle"]
        for component in Component:
            assert idle[component] == 0.0
