"""Property suite for the cluster job-trace generator and failure plans.

The generator's contract is exactly what the simulator's determinism
rests on: exact job counts, monotone virtual timestamps inside the
horizon, and bitwise seed determinism — pinned here with hypothesis
across shapes, counts and seeds.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.faults import NodeFailurePlan
from repro.cluster.jobs import (
    DEFAULT_SIZE_RANGE,
    generate_job_trace,
)
from repro.errors import ValidationError
from repro.traffic import SHAPE_NAMES, shape_by_name
from repro.workloads import all_workloads

KERNELS = tuple(all_workloads())[:5]
REFERENCE = {kernel.name: 0.002 for kernel in KERNELS}

shape_names = st.sampled_from(SHAPE_NAMES)
job_counts = st.integers(min_value=1, max_value=200)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


class TestTraceProperties:
    @given(shape=shape_names, n=job_counts, seed=seeds)
    @settings(max_examples=40, deadline=None)
    def test_exact_job_count(self, shape, n, seed):
        trace = generate_job_trace(shape, n, seed, KERNELS, REFERENCE)
        assert len(trace) == n
        assert [job.job_id for job in trace.jobs] == list(range(n))

    @given(shape=shape_names, n=job_counts, seed=seeds)
    @settings(max_examples=40, deadline=None)
    def test_monotone_timestamps_within_horizon(self, shape, n, seed):
        trace = generate_job_trace(shape, n, seed, KERNELS, REFERENCE)
        times = [job.arrival_s for job in trace.jobs]
        assert all(b >= a for a, b in zip(times, times[1:]))
        assert times[0] >= 0.0
        assert times[-1] <= trace.horizon_s

    @given(shape=shape_names, n=job_counts, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_seed_determinism_bitwise(self, shape, n, seed):
        first = generate_job_trace(shape, n, seed, KERNELS, REFERENCE)
        second = generate_job_trace(shape, n, seed, KERNELS, REFERENCE)
        assert first.jobs == second.jobs  # dataclass equality is bitwise
        assert first.shape == second.shape

    @given(shape=shape_names, n=job_counts, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_job_invariants(self, shape, n, seed):
        trace = generate_job_trace(shape, n, seed, KERNELS, REFERENCE)
        lo, hi = DEFAULT_SIZE_RANGE
        pool = {kernel.name for kernel in KERNELS}
        for job in trace.jobs:
            assert lo <= job.invocations <= hi
            assert job.kernel.name in pool
            assert job.deadline_s > job.arrival_s

    def test_different_seeds_differ(self):
        a = generate_job_trace("diurnal", 50, 1, KERNELS, REFERENCE)
        b = generate_job_trace("diurnal", 50, 2, KERNELS, REFERENCE)
        assert a.jobs != b.jobs

    def test_horizon_rescaling(self):
        short = generate_job_trace(
            "burst", 80, 3, KERNELS, REFERENCE, horizon_s=0.5
        )
        long = generate_job_trace(
            "burst", 80, 3, KERNELS, REFERENCE, horizon_s=2.0
        )
        assert short.horizon_s == 0.5
        assert long.horizon_s == 2.0
        assert max(j.arrival_s for j in long.jobs) > max(
            j.arrival_s for j in short.jobs
        )

    def test_trace_accessors(self):
        trace = generate_job_trace("mixed", 30, 9, KERNELS, REFERENCE)
        assert trace.total_invocations == sum(
            job.invocations for job in trace.jobs
        )
        assert set(trace.kernel_names()) <= {k.name for k in KERNELS}


class TestTraceValidation:
    def test_empty_kernel_pool(self):
        with pytest.raises(ValidationError):
            generate_job_trace("burst", 10, 0, (), {})

    def test_missing_reference_seconds(self):
        with pytest.raises(ValidationError, match="missing kernels"):
            generate_job_trace("burst", 10, 0, KERNELS, {})

    def test_bad_size_range(self):
        with pytest.raises(ValidationError, match="size range"):
            generate_job_trace(
                "burst", 10, 0, KERNELS, REFERENCE, size_range=(0, 4)
            )

    def test_bad_slack_range(self):
        with pytest.raises(ValidationError, match="slack range"):
            generate_job_trace(
                "burst", 10, 0, KERNELS, REFERENCE, slack_range=(2.0, 1.0)
            )

    def test_unknown_shape_name(self):
        with pytest.raises(ValidationError):
            generate_job_trace("weekly", 10, 0, KERNELS, REFERENCE)

    def test_custom_shape_accepted(self):
        shape = dataclasses.replace(shape_by_name("burst"), name="flash")
        trace = generate_job_trace(shape, 12, 5, KERNELS, REFERENCE)
        assert trace.shape.name == "flash"


class TestSharedTrafficImplementation:
    def test_serving_reexport_is_the_same_object(self):
        import repro.serving.traffic as serving_traffic
        import repro.traffic as traffic

        assert serving_traffic.sample_arrivals is traffic.sample_arrivals
        assert serving_traffic.TrafficShape is traffic.TrafficShape
        assert serving_traffic.shape_by_name is traffic.shape_by_name


class TestNodeFailurePlan:
    def test_streams_deterministic_per_name(self):
        plan = NodeFailurePlan(mtbf_s=0.5, mttr_s=0.1, seed=7)
        draws_a = [plan.time_to_failure(plan.stream("node-a")) for _ in range(3)]
        draws_b = [plan.time_to_failure(plan.stream("node-a")) for _ in range(3)]
        assert draws_a == draws_b
        assert draws_a[0] != plan.time_to_failure(plan.stream("node-b"))

    def test_streams_independent_of_other_nodes(self):
        plan = NodeFailurePlan(mtbf_s=0.5, mttr_s=0.1, seed=7)
        rng = plan.stream("node-a")
        lone = [plan.time_to_failure(rng) for _ in range(4)]
        rng_a = plan.stream("node-a")
        rng_b = plan.stream("node-b")
        interleaved = []
        for _ in range(4):
            interleaved.append(plan.time_to_failure(rng_a))
            plan.time_to_failure(rng_b)
        assert lone == interleaved

    @given(
        mtbf=st.floats(min_value=1e-3, max_value=10, allow_nan=False),
        mttr=st.floats(min_value=1e-3, max_value=10, allow_nan=False),
    )
    @settings(max_examples=20, deadline=None)
    def test_draws_positive(self, mtbf, mttr):
        plan = NodeFailurePlan(mtbf_s=mtbf, mttr_s=mttr)
        rng = plan.stream("n")
        assert plan.time_to_failure(rng) > 0
        assert plan.repair_time(rng) > 0

    def test_validation(self):
        with pytest.raises(ValidationError):
            NodeFailurePlan(mtbf_s=0.0, mttr_s=0.1)
        with pytest.raises(ValidationError):
            NodeFailurePlan(mtbf_s=0.1, mttr_s=-1.0)
