"""Public API surface tests (:mod:`repro`)."""

from __future__ import annotations

import importlib

import pytest

import repro


class TestPublicSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_key_entry_points_present(self):
        for name in (
            "SimulatedGPU", "ProfilingSession", "fit_power_model",
            "MetricCalculator", "validate_model", "DVFSAdvisor",
            "save_model", "load_model", "build_suite", "all_workloads",
            "ClusterSimulator", "ClusterReport", "JobTrace",
            "generate_job_trace", "scheduler_by_name", "NodeFailurePlan",
            "TrafficShape", "sample_arrivals",
        ):
            assert name in repro.__all__, name

    def test_scheduler_variants_exported(self):
        from repro.cluster import SCHEDULER_NAMES

        for name in SCHEDULER_NAMES:
            variant = repro.scheduler_by_name(name)
            assert isinstance(variant, repro.Scheduler)
            assert variant.name == name

    @pytest.mark.parametrize(
        "module",
        [
            "repro.hardware", "repro.driver", "repro.kernels",
            "repro.microbench", "repro.workloads", "repro.core",
            "repro.analysis", "repro.runtime", "repro.simulator",
            "repro.discovery", "repro.codegen", "repro.experiments",
            "repro.reporting", "repro.serialization", "repro.cli",
            "repro.parallel", "repro.traffic", "repro.cluster",
            "repro.serving.traffic",
        ],
    )
    def test_subpackages_import_cleanly(self, module):
        importlib.import_module(module)

    def test_lazy_hardware_exports(self):
        from repro import hardware

        assert hardware.SimulatedGPU is repro.SimulatedGPU
        with pytest.raises(AttributeError):
            hardware.DoesNotExist  # noqa: B018

    def test_quickstart_snippet_from_docstring(self):
        """The module docstring's quickstart must actually run."""
        gpu = repro.SimulatedGPU(repro.GTX_TITAN_X)
        session = repro.ProfilingSession(gpu)
        # A tiny fit keeps this test fast; the snippet's full-suite call is
        # exercised by the integration tests.
        from repro.microbench import suite_group

        kernels = suite_group("sp") + suite_group("dram") + suite_group("idle")
        configs = [
            repro.FrequencyConfig(975, 3505),
            repro.FrequencyConfig(595, 3505),
            repro.FrequencyConfig(975, 810),
        ]
        model, report = repro.fit_power_model(session, kernels, configs)
        kernel = repro.workload_by_name("blackscholes")
        utilizations = repro.MetricCalculator(gpu.spec).utilizations(
            session.collect_events(kernel)
        )
        watts = model.predict_power(
            utilizations, repro.FrequencyConfig(595, 810)
        )
        assert watts > 0
