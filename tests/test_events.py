"""Unit tests for the Table-I event tables (:mod:`repro.driver.events`)."""

from __future__ import annotations

import pytest

from repro.driver.events import (
    EVENT_ID_PREFIXES,
    event_table_for,
    raw_event_name,
)
from repro.errors import UnknownEventError


class TestTableIContents:
    def test_prefixes_match_table_footnote(self):
        assert EVENT_ID_PREFIXES == {
            "Pascal": 352321,
            "Maxwell": 335544,
            "Kepler": 318767,
        }

    def test_raw_event_name_format(self):
        assert raw_event_name("Pascal", 580) == "event_352321580"
        assert raw_event_name("Maxwell", 361) == "event_335544361"

    @pytest.mark.parametrize(
        "architecture, suffixes",
        [
            ("Pascal", (580, 581)),
            ("Maxwell", (361, 362)),
            ("Kepler", (131, 134, 136, 137)),
        ],
    )
    def test_sp_int_warp_events(self, architecture, suffixes):
        table = event_table_for(architecture)
        expected = tuple(raw_event_name(architecture, s) for s in suffixes)
        assert table.warps_sp_int == expected

    @pytest.mark.parametrize(
        "architecture, dp, sf, inst_int, inst_sp",
        [
            ("Pascal", 584, 560, 831, 829),
            ("Maxwell", 364, 359, 504, 502),
            ("Kepler", 141, 133, 205, 203),
        ],
    )
    def test_undisclosed_event_ids(self, architecture, dp, sf, inst_int, inst_sp):
        table = event_table_for(architecture)
        assert table.warps_dp == (raw_event_name(architecture, dp),)
        assert table.warps_sf == (raw_event_name(architecture, sf),)
        assert table.inst_int == (raw_event_name(architecture, inst_int),)
        assert table.inst_sp == (raw_event_name(architecture, inst_sp),)

    def test_kepler_has_four_l2_subpartitions(self):
        table = event_table_for("Kepler")
        assert len(table.l2_read_sector_queries) == 4
        assert len(event_table_for("Maxwell").l2_read_sector_queries) == 2

    def test_kepler_shared_events_are_l1_prefixed(self):
        # Table I: "l1_sh_ld_trans" naming on the K40c.
        table = event_table_for("Kepler")
        assert table.shared_load_transactions[0].startswith("l1_shared")
        assert event_table_for("Maxwell").shared_load_transactions[0].startswith(
            "shared"
        )

    def test_dram_sector_events_have_two_subpartitions(self):
        for architecture in ("Pascal", "Maxwell", "Kepler"):
            table = event_table_for(architecture)
            assert len(table.dram_read_sectors) == 2
            assert len(table.dram_write_sectors) == 2


class TestTableBehaviour:
    def test_all_event_names_unique_per_table(self):
        for architecture in ("Pascal", "Maxwell", "Kepler"):
            table = event_table_for(architecture)
            names = table.all_event_names()
            assert "active_cycles" in names

    def test_require_accepts_known_event(self):
        table = event_table_for("Maxwell")
        assert table.require("active_cycles") == "active_cycles"

    def test_require_rejects_unknown_event(self):
        table = event_table_for("Maxwell")
        with pytest.raises(UnknownEventError):
            table.require("made_up_event")

    def test_unknown_architecture_falls_back_to_maxwell(self):
        assert event_table_for("Volta") is event_table_for("Maxwell")

    def test_tables_differ_between_architectures(self):
        assert (
            event_table_for("Pascal").warps_sp_int
            != event_table_for("Maxwell").warps_sp_int
        )
