"""Tests for the CSV export helpers (:mod:`repro.reporting.export`)
and the model introspection report."""

from __future__ import annotations

import csv

import pytest

from repro.analysis.validation import PredictionRecord, ValidationResult
from repro.errors import ValidationError
from repro.hardware.components import ALL_COMPONENTS, Component
from repro.hardware.specs import FrequencyConfig
from repro.reporting.export import (
    export_breakdown,
    export_curve,
    export_validation,
    write_csv,
)


def read_rows(path):
    with open(path, newline="") as handle:
        return list(csv.reader(handle))


class TestWriteCsv:
    def test_basic(self, tmp_path):
        path = write_csv(tmp_path / "x.csv", ["a", "b"], [["1", "2"]])
        rows = read_rows(path)
        assert rows == [["a", "b"], ["1", "2"]]

    def test_creates_parent_directories(self, tmp_path):
        path = write_csv(
            tmp_path / "deep" / "nested" / "x.csv", ["a"], [["1"]]
        )
        assert path.exists()

    def test_rejects_ragged_rows(self, tmp_path):
        with pytest.raises(ValidationError):
            write_csv(tmp_path / "x.csv", ["a", "b"], [["only"]])

    def test_rejects_empty(self, tmp_path):
        with pytest.raises(ValidationError):
            write_csv(tmp_path / "x.csv", ["a"], [])


class TestExporters:
    def test_validation_export(self, tmp_path):
        result = ValidationResult(
            device_name="GTX Titan X",
            records=(
                PredictionRecord(
                    workload="gemm",
                    config=FrequencyConfig(975, 3505),
                    measured_watts=170.0,
                    predicted_watts=165.0,
                ),
            ),
        )
        path = export_validation(result, tmp_path / "fig7.csv")
        rows = read_rows(path)
        assert rows[0][0] == "workload"
        assert rows[1][0] == "gemm"
        assert float(rows[1][3]) == pytest.approx(170.0)

    def test_breakdown_export(self, lab, tmp_path):
        from repro.analysis.breakdown import breakdown_report
        from repro.workloads import workload_by_name

        report = breakdown_report(
            lab.model("GTX Titan X"),
            lab.session("GTX Titan X"),
            [workload_by_name("gemm")],
        )
        path = export_breakdown(report, tmp_path / "fig10.csv")
        rows = read_rows(path)
        assert len(rows) == 2
        assert len(rows[0]) == 5 + len(ALL_COMPONENTS)

    def test_curve_export(self, tmp_path):
        path = export_curve(
            {975.0: 1.0, 595.0: 0.85}, tmp_path / "fig6.csv",
            y_name="v_core",
        )
        rows = read_rows(path)
        assert rows[0] == ["frequency_mhz", "v_core"]
        # Sorted by frequency.
        assert float(rows[1][0]) == 595.0


class TestModelDescribe:
    def test_describe_mentions_key_quantities(self, lab):
        text = lab.model("GTX Titan X").describe()
        assert "GTX Titan X" in text
        assert "constant power" in text
        assert "dram" in text
        assert "core voltage" in text

    def test_full_scale_watts_interpretable(self, lab):
        model = lab.model("GTX Titan X")
        watts = model.full_scale_watts()
        # The calibrated ground truth makes DRAM the single biggest
        # full-scale consumer; the fit must recover that ordering.
        assert watts[Component.DRAM] == max(watts.values())
        assert all(value >= 0 for value in watts.values())

    def test_constant_watts_near_anchor(self, lab):
        model = lab.model("GTX Titan X")
        assert model.constant_watts_at_reference() == pytest.approx(
            84.0, rel=0.25
        )
