"""Unit tests for the NVML-like driver layer (:mod:`repro.driver.nvml`)."""

from __future__ import annotations

import pytest

from repro.config import NOISELESS_SETTINGS
from repro.driver.nvml import NVMLDevice
from repro.errors import FrequencyError, NVMLError
from repro.hardware.gpu import SimulatedGPU
from repro.hardware.specs import FrequencyConfig, GTX_TITAN_X
from repro.kernels.kernel import idle_kernel
from repro.workloads import workload_by_name


@pytest.fixture()
def nvml() -> NVMLDevice:
    return NVMLDevice(SimulatedGPU(GTX_TITAN_X))


@pytest.fixture()
def quiet_nvml() -> NVMLDevice:
    return NVMLDevice(SimulatedGPU(GTX_TITAN_X, settings=NOISELESS_SETTINGS))


class TestDeviceQueries:
    def test_name(self, nvml):
        assert nvml.name == "GTX Titan X"

    def test_power_limit(self, nvml):
        assert nvml.power_limit_watts == 250.0

    def test_refresh_period(self, nvml):
        # Sec. V-A: ~100 ms on the GTX Titan X.
        assert nvml.refresh_seconds == pytest.approx(0.1)

    def test_supported_memory_clocks_descending(self, nvml):
        clocks = nvml.supported_memory_clocks()
        assert clocks == (4005, 3505, 3300, 810)

    def test_supported_graphics_clocks(self, nvml):
        clocks = nvml.supported_graphics_clocks(3505)
        assert len(clocks) == 16
        assert clocks[0] == 1164


class TestClockControl:
    def test_defaults(self, nvml):
        assert nvml.application_clocks == GTX_TITAN_X.reference

    def test_set_application_clocks(self, nvml):
        nvml.set_application_clocks(785, 810)
        assert nvml.application_clocks == FrequencyConfig(785, 810)

    def test_set_rejects_unknown_level(self, nvml):
        with pytest.raises(FrequencyError):
            nvml.set_application_clocks(1000, 3505)

    def test_reset(self, nvml):
        nvml.set_application_clocks(785, 810)
        nvml.reset_application_clocks()
        assert nvml.application_clocks == GTX_TITAN_X.reference

    def test_closed_handle_rejects_operations(self, nvml):
        nvml.close()
        with pytest.raises(NVMLError):
            nvml.set_application_clocks(975, 3505)
        with pytest.raises(NVMLError):
            nvml.measure_power(idle_kernel())


class TestHandleLifecycle:
    def test_close_is_idempotent(self, nvml):
        nvml.close()
        nvml.close()  # double-close must be a silent no-op
        assert nvml.closed

    def test_closed_property_tracks_state(self, nvml):
        assert not nvml.closed
        nvml.close()
        assert nvml.closed

    def test_every_public_method_rejects_use_after_close(self, nvml):
        nvml.close()
        kernel = idle_kernel()
        operations = [
            lambda: nvml.supported_memory_clocks(),
            lambda: nvml.supported_graphics_clocks(3505),
            lambda: nvml.set_application_clocks(975, 3505),
            lambda: nvml.reset_application_clocks(),
            lambda: nvml.measure_power(kernel),
            lambda: nvml.measure_median_power(kernel),
            lambda: nvml.measure_power_grid([kernel]),
        ]
        for operation in operations:
            with pytest.raises(NVMLError) as excinfo:
                operation()
            # The message names the device and says what happened.
            assert "closed" in str(excinfo.value)
            assert "GTX Titan X" in str(excinfo.value)

    def test_use_after_close_raises_before_argument_validation(self, nvml):
        """A closed handle reports the close, not a frequency error."""
        nvml.close()
        with pytest.raises(NVMLError) as excinfo:
            nvml.set_application_clocks(123456, 3505)
        assert "closed" in str(excinfo.value)


class TestPowerMeasurement:
    def test_noiseless_measurement_matches_truth(self, quiet_nvml):
        kernel = workload_by_name("gemm")
        truth = SimulatedGPU(
            GTX_TITAN_X, settings=NOISELESS_SETTINGS
        ).run(kernel).true_power_watts
        measurement = quiet_nvml.measure_power(kernel)
        # Only the first-sample idle contamination separates them.
        assert measurement.average_watts == pytest.approx(truth, rel=0.02)

    def test_repetitions_reach_one_second(self, nvml):
        kernel = workload_by_name("gemm")
        measurement = nvml.measure_power(kernel)
        assert measurement.total_seconds >= 1.0

    def test_sample_count_consistent_with_refresh(self, nvml):
        measurement = nvml.measure_power(workload_by_name("gemm"))
        expected = int(measurement.total_seconds / nvml.refresh_seconds)
        assert measurement.sample_count == max(1, expected)

    def test_median_is_stable_across_calls(self, nvml):
        kernel = workload_by_name("gemm")
        a = nvml.measure_median_power(kernel)
        b = nvml.measure_median_power(kernel)
        assert a.average_watts == b.average_watts

    def test_median_rejects_nonpositive_repeats(self, nvml):
        with pytest.raises(NVMLError):
            nvml.measure_median_power(idle_kernel(), repeats=0)

    def test_measurement_reports_throttled_config(self, nvml):
        from repro.workloads.cuda_sdk import matrixmul_cublas

        nvml.set_application_clocks(1164, 3505)
        measurement = nvml.measure_power(matrixmul_cublas(4096, GTX_TITAN_X))
        assert measurement.throttled
        assert measurement.applied_config.core_mhz == 1126

    def test_noise_makes_single_measurements_vary(self, nvml):
        kernel = workload_by_name("gemm")
        a = nvml.measure_power(kernel, measurement_index=0)
        b = nvml.measure_power(kernel, measurement_index=1)
        assert a.average_watts != b.average_watts

    def test_short_kernel_contaminated_by_idle(self, quiet_nvml):
        """A single-run measurement of a short kernel blends in idle power
        (the motivation for the repetition rule)."""
        kernel = workload_by_name("gemm")
        single = quiet_nvml.measure_power(kernel, repetitions=1)
        repeated = quiet_nvml.measure_power(kernel)
        assert single.average_watts < repeated.average_watts
