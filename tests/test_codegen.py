"""Tests for the CUDA/PTX source generation (:mod:`repro.codegen`)."""

from __future__ import annotations

import pytest

from repro.codegen.cuda import cuda_source_for, suite_sources
from repro.codegen.ptx import (
    count_fma_instructions,
    dynamic_fma_count,
    ptx_source_for,
)
from repro.errors import ValidationError
from repro.kernels.kernel import KernelDescriptor
from repro.microbench import build_suite, suite_group


class TestCudaSources:
    def test_every_suite_kernel_has_a_source(self):
        sources = suite_sources()
        assert len(sources) == 83
        for name, source in sources.items():
            assert name in source
            assert "__global__" in source or "int main" in source

    @pytest.mark.parametrize(
        "group, type_name",
        [("int", "int"), ("sp", "float"), ("dp", "double")],
    )
    def test_arithmetic_pattern_uses_data_type(self, group, type_name):
        kernel = suite_group(group)[3]
        source = cuda_source_for(kernel)
        assert f"{type_name} r0, r1, r2, r3;" in source
        assert "r0 = r0 * r0 + r1;" in source  # Fig. 3a chain body
        assert f"i < {kernel.tags['intensity']}" in source

    def test_sf_pattern_uses_transcendentals(self):
        source = cuda_source_for(suite_group("sf")[0])
        assert "__logf" in source
        assert "__sinf" in source

    def test_shared_pattern_mirrors_fig3c(self):
        source = cuda_source_for(suite_group("shared")[0])
        assert "__shared__" in source
        assert "shared[THREADS - threadId - 1]" in source

    def test_l2_pattern_mirrors_fig3d(self):
        source = cuda_source_for(suite_group("l2")[0])
        assert "cdin[threadId]" in source
        assert "cdout[threadId]" in source

    def test_dram_pattern_streams_float4(self):
        source = cuda_source_for(suite_group("dram")[0])
        assert "float4" in source

    def test_mix_pattern_lists_its_ingredients(self):
        for kernel in suite_group("mix"):
            source = cuda_source_for(kernel)
            assert "MIX" in source

    def test_idle_pattern_has_no_kernel(self):
        source = cuda_source_for(suite_group("idle")[0])
        assert "__global__" not in source
        assert "sleep" in source

    def test_unknown_group_rejected(self):
        stray = KernelDescriptor(name="stray", threads=32, sp_ops=1.0)
        with pytest.raises(ValidationError):
            cuda_source_for(stray)


class TestPtxSources:
    @pytest.mark.parametrize("group", ["int", "sp", "dp"])
    def test_fma_mnemonic_matches_data_type(self, group):
        kernel = suite_group(group)[4]
        ptx = ptx_source_for(kernel)
        mnemonics = {"int": "mad.lo.s32", "sp": "fma.rn.f32", "dp": "fma.rn.f64"}
        assert mnemonics[group] in ptx

    def test_unrolled_body_size_matches_fig4(self):
        # Fig. 4: with N = 512 the body holds 32 unrolled iterations of
        # 4 chains = 128 FMA instructions.
        kernel = next(
            k for k in suite_group("sp") if k.tags["intensity"] == "512"
        )
        ptx = ptx_source_for(kernel)
        assert count_fma_instructions(ptx) == 128

    @pytest.mark.parametrize("group", ["int", "sp", "dp"])
    def test_dynamic_fma_count_matches_descriptor(self, group):
        """The instruction accounting of the generated PTX equals the
        descriptor's declared per-thread chain work (4N)."""
        for kernel in suite_group(group):
            intensity = int(kernel.tags["intensity"])
            ptx = ptx_source_for(kernel)
            assert dynamic_fma_count(ptx) == pytest.approx(
                4 * intensity, rel=0.05
            ), kernel.name

    def test_small_intensity_shrinks_body(self):
        kernel = next(
            k for k in suite_group("sp") if k.tags["intensity"] == "1"
        )
        ptx = ptx_source_for(kernel)
        assert count_fma_instructions(ptx) == 4  # one iteration, 4 chains

    def test_non_arithmetic_group_rejected(self):
        with pytest.raises(ValidationError):
            ptx_source_for(suite_group("shared")[0])

    def test_ptx_has_load_store_frame(self):
        ptx = ptx_source_for(suite_group("sp")[2])
        assert "ld.global.f32" in ptx
        assert "st.global.f32" in ptx
