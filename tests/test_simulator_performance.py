"""Unit tests for the frequency-scaling time predictor
(:mod:`repro.simulator.performance`)."""

from __future__ import annotations

import pytest

from repro.core.metrics import MetricCalculator
from repro.errors import ValidationError
from repro.hardware.specs import FrequencyConfig, GTX_TITAN_X
from repro.simulator.performance import FrequencyScalingTimePredictor
from repro.workloads import all_workloads, workload_by_name


@pytest.fixture(scope="module")
def predictor() -> FrequencyScalingTimePredictor:
    return FrequencyScalingTimePredictor(GTX_TITAN_X)


def profile_of(lab, predictor, name):
    session = lab.session("GTX Titan X")
    kernel = workload_by_name(name)
    utilizations = MetricCalculator(GTX_TITAN_X).utilizations(
        session.collect_events(kernel)
    )
    reference_seconds = session.measure_time(kernel)
    return kernel, predictor.profile(reference_seconds, utilizations)


class TestStructure:
    def test_reference_prediction_is_reference_time(self, lab, predictor):
        _, profile = profile_of(lab, predictor, "gemm")
        predicted = predictor.predict_seconds(profile, GTX_TITAN_X.reference)
        assert predicted == pytest.approx(
            profile.reference_seconds, rel=0.02
        )

    def test_time_monotone_in_core_frequency(self, lab, predictor):
        _, profile = profile_of(lab, predictor, "cutcp")
        times = [
            predictor.predict_seconds(profile, FrequencyConfig(core, 3505))
            for core in (595, 785, 975, 1164)
        ]
        assert times == sorted(times, reverse=True)

    def test_memory_bound_kernel_tracks_memory_clock(self, lab, predictor):
        _, profile = profile_of(lab, predictor, "blackscholes")
        fast = predictor.predict_seconds(profile, FrequencyConfig(975, 3505))
        slow = predictor.predict_seconds(profile, FrequencyConfig(975, 810))
        # A DRAM utilization of 0.85 makes the 4.3x memory stretch dominate.
        assert slow / fast > 3.0

    def test_compute_bound_kernel_ignores_memory_clock(self, lab, predictor):
        _, profile = profile_of(lab, predictor, "cutcp")
        fast = predictor.predict_seconds(profile, FrequencyConfig(975, 3505))
        slow = predictor.predict_seconds(profile, FrequencyConfig(975, 810))
        assert slow / fast < 1.2

    def test_speedup_helper(self, lab, predictor):
        _, profile = profile_of(lab, predictor, "gemm")
        speedup = predictor.predict_speedup(profile, FrequencyConfig(1164, 3505))
        assert speedup > 1.0

    def test_grid_covers_device(self, lab, predictor):
        _, profile = profile_of(lab, predictor, "gemm")
        assert len(predictor.predict_grid(profile)) == 64

    def test_rejects_bad_exponent(self):
        with pytest.raises(ValidationError):
            FrequencyScalingTimePredictor(GTX_TITAN_X, overlap_exponent=0.5)

    def test_rejects_nonpositive_reference_time(self, predictor, lab):
        _, profile = profile_of(lab, predictor, "gemm")
        with pytest.raises(ValidationError):
            predictor.profile(0.0, profile.utilizations)


class TestAccuracyAgainstDevice:
    @pytest.mark.parametrize(
        "config",
        [
            FrequencyConfig(595, 3505),
            FrequencyConfig(1164, 3505),
            FrequencyConfig(975, 810),
            FrequencyConfig(595, 810),
        ],
    )
    def test_prediction_within_twenty_percent(self, lab, predictor, config):
        """Across the validation set, the time predictor stays within 20 %
        of the device at every corner of the V-F grid."""
        session = lab.session("GTX Titan X")
        calculator = MetricCalculator(GTX_TITAN_X)
        errors = []
        for kernel in all_workloads():
            utilizations = calculator.utilizations(
                session.collect_events(kernel)
            )
            profile = predictor.profile(
                session.measure_time(kernel), utilizations
            )
            predicted = predictor.predict_seconds(profile, config)
            actual = session.measure_time(kernel, config)
            errors.append(abs(predicted - actual) / actual)
        mean_error = sum(errors) / len(errors)
        assert mean_error < 0.20, config
