"""Batched-prediction engine tests (:mod:`repro.serving.engine`).

The load-bearing contract is *bitwise* equivalence with the scalar
model path, checked with ``==`` (not ``allclose``) across all three
Table-II devices.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ServingError, ValidationError
from repro.core.metrics import UtilizationVector
from repro.hardware.components import ALL_COMPONENTS, Component
from repro.runtime.policies import PowerCapPolicy
from repro.serving.engine import (
    PredictionEngine,
    utilization_row,
    vector_from_mapping,
)


def sample_vectors(count: int, seed: int = 7) -> list:
    """Deterministic utilization vectors including the hull corners."""
    rng = np.random.default_rng(seed)
    vectors = [
        UtilizationVector(values={c: 0.0 for c in ALL_COMPONENTS}),
        UtilizationVector(values={c: 1.0 for c in ALL_COMPONENTS}),
    ]
    for _ in range(count - 2):
        row = rng.uniform(0.0, 1.0, size=len(ALL_COMPONENTS))
        vectors.append(
            UtilizationVector(
                values=dict(zip(ALL_COMPONENTS, (float(u) for u in row)))
            )
        )
    return vectors


class TestBitwiseEquivalence:
    def test_batch_matches_scalar_on_every_device(self, lab, any_spec):
        model = lab.model(any_spec.name)
        engine = PredictionEngine(model)
        vectors = sample_vectors(12)
        grid = engine.predict_vectors(vectors)
        assert grid.shape == (len(vectors), engine.grid_size)
        for row, vector in enumerate(vectors):
            for column, config in enumerate(engine.configs):
                assert grid[row, column] == model.predict_power(vector, config)

    def test_predict_at_on_grid_matches_scalar(self, lab, any_spec):
        model = lab.model(any_spec.name)
        engine = PredictionEngine(model)
        vectors = sample_vectors(6)
        matrix = engine.utilization_matrix(vectors)
        config = engine.configs[-1]
        powers = engine.predict_at(matrix, config)
        for row, vector in enumerate(vectors):
            assert powers[row] == model.predict_power(vector, config)

    def test_predict_at_off_grid_matches_scalar(self, lab):
        """A sub-grid engine still answers any device configuration the
        model can evaluate, through the same interpolated-voltage path."""
        model = lab.model("GTX Titan X")
        known = model.known_configurations()
        engine = PredictionEngine(model, configs=known[:3])
        off_grid = known[-1]
        with pytest.raises(ServingError):
            engine.config_index(off_grid)
        vectors = sample_vectors(5)
        matrix = engine.utilization_matrix(vectors)
        powers = engine.predict_at(matrix, off_grid)
        for row, vector in enumerate(vectors):
            assert powers[row] == model.predict_power(vector, off_grid)

    def test_breakdown_matches_scalar_components(self, lab):
        model = lab.model("Tesla K40c")
        engine = PredictionEngine(model)
        vectors = sample_vectors(4)
        breakdown = engine.breakdown_batch(engine.utilization_matrix(vectors))
        for row, vector in enumerate(vectors):
            for column, config in enumerate(engine.configs):
                scalar = model.predict_breakdown(vector, config)
                for component in ALL_COMPONENTS:
                    assert (
                        breakdown.component_watts[component][row, column]
                        == scalar.component_watts[component]
                    )
        totals = breakdown.total_watts
        grid = engine.predict_vectors(vectors)
        assert np.allclose(totals, grid, rtol=0, atol=1e-9)


class TestShapes:
    def test_utilization_row_order(self):
        values = {
            component: 0.1 * index
            for index, component in enumerate(ALL_COMPONENTS)
        }
        row = utilization_row(UtilizationVector(values=values))
        assert row == [0.1 * index for index in range(len(ALL_COMPONENTS))]

    def test_empty_batch_rejected(self, lab):
        engine = PredictionEngine(lab.model("Tesla K40c"))
        with pytest.raises(ServingError, match="non-empty"):
            engine.utilization_matrix([])

    def test_wrong_width_rejected(self, lab):
        engine = PredictionEngine(lab.model("Tesla K40c"))
        with pytest.raises(ServingError, match="utilization matrix"):
            engine.predict_batch(np.zeros((3, 4)))
        with pytest.raises(ServingError, match="utilization matrix"):
            engine.breakdown_batch(np.zeros((2, 3)))

    def test_config_index_round_trips(self, lab):
        engine = PredictionEngine(lab.model("Tesla K40c"))
        for column, config in enumerate(engine.configs):
            assert engine.config_index(config) == column

    def test_needs_at_least_one_configuration(self, lab):
        with pytest.raises(ServingError):
            PredictionEngine(lab.model("Tesla K40c"), configs=[])


class TestVectorFromMapping:
    def test_missing_components_default_to_zero(self):
        vector = vector_from_mapping({"sp": 0.5, "dram": 0.25})
        assert vector[Component.SP] == 0.5
        assert vector[Component.DRAM] == 0.25
        assert vector[Component.INT] == 0.0

    def test_unknown_component_rejected(self):
        with pytest.raises(ValidationError, match="unknown utilization"):
            vector_from_mapping({"sp": 0.5, "tensor": 0.1})

    def test_out_of_range_rejected(self):
        with pytest.raises(ValidationError, match="must be in"):
            vector_from_mapping({"sp": 1.5})
        with pytest.raises(ValidationError, match="must be in"):
            vector_from_mapping({"dram": -0.1})


class TestOptimalConfiguration:
    def test_energy_objective_is_min_power_under_unit_times(self, lab):
        model = lab.model("Tesla K40c")
        engine = PredictionEngine(model)
        vector = sample_vectors(3)[-1]
        best = engine.best_configuration(vector, objective="energy")
        scores = engine.score_grid(vector)
        assert best.predicted_power_watts == min(
            score.predicted_power_watts for score in scores
        )

    def test_scores_carry_scalar_powers(self, lab):
        model = lab.model("Tesla K40c")
        engine = PredictionEngine(model)
        vector = sample_vectors(3)[-1]
        for score in engine.score_grid(vector):
            assert score.predicted_power_watts == model.predict_power(
                vector, score.config
            )

    def test_times_reweigh_the_energy_ranking(self, lab):
        engine = PredictionEngine(lab.model("Tesla K40c"))
        vector = sample_vectors(3)[-1]
        # Make every configuration but the highest-power one painfully slow:
        # the energy optimum must flip to that configuration.
        scores = engine.score_grid(vector)
        greedy = max(
            range(len(scores)),
            key=lambda column: scores[column].predicted_power_watts,
        )
        times = [1000.0] * engine.grid_size
        times[greedy] = 1.0
        best = engine.best_configuration(
            vector, objective="energy", times_seconds=times
        )
        assert best.config == engine.configs[greedy]

    def test_custom_policy_is_honoured(self, lab):
        engine = PredictionEngine(lab.model("Tesla K40c"))
        vector = sample_vectors(3)[-1]
        scores = engine.score_grid(vector)
        cap = sorted(s.predicted_power_watts for s in scores)[1] + 1e-9
        best = engine.best_configuration(
            vector, policy=PowerCapPolicy(cap_watts=cap)
        )
        assert best.predicted_power_watts <= cap

    def test_unknown_objective_rejected(self, lab):
        engine = PredictionEngine(lab.model("Tesla K40c"))
        with pytest.raises(ValidationError, match="unknown objective"):
            engine.best_configuration(sample_vectors(3)[-1], objective="speed")

    def test_wrong_times_shape_rejected(self, lab):
        engine = PredictionEngine(lab.model("Tesla K40c"))
        with pytest.raises(ServingError, match="times_seconds"):
            engine.score_grid(sample_vectors(3)[0], times_seconds=[1.0])


class TestBestEnergyConfiguration:
    """The joint power x runtime serving query."""

    @pytest.fixture(scope="class")
    def setup(self, lab):
        device = "GTX Titan X"
        return (
            lab.session(device),
            PredictionEngine(lab.model(device)),
            lab.performance_model(device),
        )

    def test_matches_explicit_scan(self, setup, lab):
        from repro.core.metrics import MetricCalculator

        session, engine, performance = setup
        kernel = lab.suite[10]
        utilizations = MetricCalculator(session.gpu.spec).utilizations(
            session.collect_events(kernel)
        )
        best = engine.best_energy_configuration(
            utilizations, performance, kernel.name
        )
        expected = min(
            (
                (
                    engine.model.predict_power(utilizations, config)
                    * performance.predict_runtime(kernel.name, config),
                    config,
                )
                for config in session.gpu.spec.all_configurations()
            ),
        )
        assert best.config == expected[1]
        assert best.energy_joules == pytest.approx(expected[0], rel=1e-12)

    def test_objectives_accepted(self, setup, lab):
        from repro.core.metrics import MetricCalculator

        session, engine, performance = setup
        kernel = lab.suite[10]
        utilizations = MetricCalculator(session.gpu.spec).utilizations(
            session.collect_events(kernel)
        )
        for objective in ("energy", "edp", "ed2p"):
            score = engine.best_energy_configuration(
                utilizations, performance, kernel.name, objective=objective
            )
            assert score.energy_joules > 0
        with pytest.raises(ValidationError):
            engine.best_energy_configuration(
                utilizations, performance, kernel.name, objective="speed"
            )

    def test_device_mismatch_rejected(self, setup, lab):
        from repro.core.metrics import MetricCalculator

        session, engine, _performance = setup
        other = lab.performance_model("Titan Xp")
        kernel = lab.suite[10]
        utilizations = MetricCalculator(session.gpu.spec).utilizations(
            session.collect_events(kernel)
        )
        with pytest.raises(ServingError):
            engine.best_energy_configuration(
                utilizations, other, kernel.name
            )
