"""Shared fixtures.

Expensive artefacts (simulated devices, fitted models, validation sweeps)
are session-scoped; the noiseless variants let unit tests check exact
analytic values. The :class:`repro.experiments.common.Lab` fixture backs
the integration tests the same way it backs the benchmark harness.
"""

from __future__ import annotations

import pytest

from repro.config import NOISELESS_SETTINGS
from repro.driver.session import ProfilingSession
from repro.experiments.common import Lab
from repro.hardware.gpu import SimulatedGPU
from repro.hardware.specs import GTX_TITAN_X, TESLA_K40C, TITAN_XP


def pytest_addoption(parser):
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="also run tests marked @pytest.mark.slow (full-tier "
        "differential sweeps, fuzz/load-generator heavy suites)",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--runslow"):
        return
    skip_slow = pytest.mark.skip(reason="slow tier: pass --runslow to run")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


@pytest.fixture(scope="session")
def lab() -> Lab:
    """Shared default-noise lab (models are fitted lazily per device)."""
    return Lab()


@pytest.fixture(scope="session")
def quiet_lab() -> Lab:
    """Lab with the whole measurement chain noise disabled."""
    return Lab(settings=NOISELESS_SETTINGS)


@pytest.fixture(scope="session")
def titanx_gpu(lab: Lab) -> SimulatedGPU:
    return lab.gpu("GTX Titan X")


@pytest.fixture(scope="session")
def titanx_session(lab: Lab) -> ProfilingSession:
    return lab.session("GTX Titan X")


@pytest.fixture(scope="session")
def quiet_gpu(quiet_lab: Lab) -> SimulatedGPU:
    return quiet_lab.gpu("GTX Titan X")


@pytest.fixture(scope="session")
def quiet_session(quiet_lab: Lab) -> ProfilingSession:
    return quiet_lab.session("GTX Titan X")


@pytest.fixture(scope="session", params=["Titan Xp", "GTX Titan X", "Tesla K40c"])
def any_spec(request):
    """Parametrized over the three Table-II devices."""
    return {
        "Titan Xp": TITAN_XP,
        "GTX Titan X": GTX_TITAN_X,
        "Tesla K40c": TESLA_K40C,
    }[request.param]
