"""Tests for the command-line interface (:mod:`repro.cli`)."""

from __future__ import annotations

import json

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


@pytest.fixture(scope="module")
def model_path(tmp_path_factory):
    """A fitted Tesla K40c model (smallest grid = fastest CLI fit)."""
    path = tmp_path_factory.mktemp("cli") / "k40c.json"
    code = main(
        ["fit", "--device", "Tesla K40c", "--output", str(path)]
    )
    assert code == 0
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_choices_cover_all_modules(self):
        assert set(EXPERIMENTS) == {
            "table1", "table2", "table3", "fig1", "fig2", "fig5", "fig6", "fig7",
            "fig8", "fig9", "fig10", "baselines", "ablations",
            "discovery", "sensitivity", "dvfs_savings", "noise_sweep",
            "transfer",
        }


class TestCommands:
    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "GTX Titan X" in out
        assert "Tesla K40c" in out

    def test_fit_writes_valid_model(self, model_path):
        data = json.loads(model_path.read_text())
        assert data["device"] == "Tesla K40c"
        assert len(data["voltages"]) == 4

    def test_predict_single_config(self, model_path, capsys):
        code = main(
            [
                "predict", "--model", str(model_path),
                "--workload", "blackscholes", "--core", "666",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "blackscholes" in out
        assert "W" in out

    def test_predict_grid(self, model_path, capsys):
        code = main(
            ["predict", "--model", str(model_path), "--workload", "gemm",
             "--grid"]
        )
        assert code == 0
        out = capsys.readouterr().out
        # 4 core levels x 1 memory level on the K40c.
        assert out.count("\n") >= 6

    def test_breakdown(self, model_path, capsys):
        code = main(
            ["breakdown", "--model", str(model_path), "--workload", "gemm"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "constant" in out
        assert "total" in out

    def test_unknown_workload_reports_error(self, model_path, capsys):
        code = main(
            ["predict", "--model", str(model_path), "--workload", "doom"]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_bad_frequency_reports_error(self, model_path, capsys):
        code = main(
            [
                "predict", "--model", str(model_path),
                "--workload", "gemm", "--core", "1000",
            ]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_experiment_table2(self, capsys):
        assert main(["experiment", "table2"]) == 0
        assert "Table II" in capsys.readouterr().out

    def test_sources_dump(self, tmp_path, capsys):
        code = main(["sources", "--output", str(tmp_path / "src")])
        assert code == 0
        cu_files = list((tmp_path / "src").glob("*.cu"))
        ptx_files = list((tmp_path / "src").glob("*.ptx"))
        assert len(cu_files) == 83
        # PTX only for the arithmetic groups: 12 INT + 11 SP + 12 DP.
        assert len(ptx_files) == 35
        sample = (tmp_path / "src" / "sp_n512.cu").read_text()
        assert "__global__" in sample


class TestTelemetryFlag:
    def _fit_with_trace(self, tmp_path, name, extra=()):
        trace = tmp_path / name
        code = main(
            [
                "fit",
                "--device",
                "Tesla K40c",
                "--output",
                str(tmp_path / "model.json"),
                "--telemetry",
                str(trace),
                *extra,
            ]
        )
        assert code == 0
        return trace

    def test_fit_telemetry_jsonl_deterministic(self, tmp_path, capsys):
        """The acceptance criterion: two same-seed fits export
        byte-identical JSONL traces."""
        first = self._fit_with_trace(tmp_path, "a.jsonl")
        second = self._fit_with_trace(tmp_path, "b.jsonl")
        assert "telemetry trace written" in capsys.readouterr().out
        assert first.read_bytes() == second.read_bytes()

        lines = [json.loads(l) for l in first.read_text().splitlines()]
        assert lines[0]["kind"] == "meta"
        assert lines[0]["schema"] == "repro.telemetry/v1"
        kinds = {line["kind"] for line in lines}
        assert kinds == {"meta", "span", "counter", "gauge"}
        campaigns = [
            l for l in lines if l["kind"] == "span" and l["name"] == "campaign"
        ]
        assert len(campaigns) == 1
        assert campaigns[0]["attrs"]["device"] == "Tesla K40c"

    def test_fit_telemetry_prometheus_format(self, tmp_path, capsys):
        trace = self._fit_with_trace(
            tmp_path, "trace.prom", extra=["--telemetry-format", "prom"]
        )
        text = trace.read_text()
        assert "# TYPE repro_rows_collected counter" in text
        assert "# TYPE repro_estimator_rmse gauge" in text

    def test_fit_telemetry_traces_chaos_campaign(self, tmp_path, capsys):
        trace = self._fit_with_trace(
            tmp_path, "chaos.jsonl", extra=["--chaos", "0.05"]
        )
        lines = [json.loads(l) for l in trace.read_text().splitlines()]
        counters = {
            l["name"]: l["value"] for l in lines if l["kind"] == "counter"
        }
        assert counters.get("faults.injected", 0) > 0
        assert counters.get("backoff.virtual_seconds", 0) > 0
