"""Tests for the command-line interface (:mod:`repro.cli`)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


@pytest.fixture(scope="module")
def model_path(tmp_path_factory):
    """A fitted Tesla K40c model (smallest grid = fastest CLI fit)."""
    path = tmp_path_factory.mktemp("cli") / "k40c.json"
    code = main(
        ["fit", "--device", "Tesla K40c", "--output", str(path)]
    )
    assert code == 0
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_choices_cover_all_modules(self):
        assert set(EXPERIMENTS) == {
            "table1", "table2", "table3", "fig1", "fig2", "fig5", "fig6", "fig7",
            "fig8", "fig9", "fig10", "baselines", "ablations",
            "discovery", "sensitivity", "dvfs_savings", "noise_sweep",
            "transfer", "perf_validation", "cluster_savings", "fewshot",
        }


class TestCommands:
    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "GTX Titan X" in out
        assert "Tesla K40c" in out

    def test_fit_writes_valid_model(self, model_path):
        data = json.loads(model_path.read_text())
        assert data["device"] == "Tesla K40c"
        assert len(data["voltages"]) == 4

    def test_predict_single_config(self, model_path, capsys):
        code = main(
            [
                "predict", "--model", str(model_path),
                "--workload", "blackscholes", "--core", "666",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "blackscholes" in out
        assert "W" in out

    def test_predict_grid(self, model_path, capsys):
        code = main(
            ["predict", "--model", str(model_path), "--workload", "gemm",
             "--grid"]
        )
        assert code == 0
        out = capsys.readouterr().out
        # 4 core levels x 1 memory level on the K40c.
        assert out.count("\n") >= 6

    def test_breakdown(self, model_path, capsys):
        code = main(
            ["breakdown", "--model", str(model_path), "--workload", "gemm"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "constant" in out
        assert "total" in out

    def test_unknown_workload_reports_error(self, model_path, capsys):
        code = main(
            ["predict", "--model", str(model_path), "--workload", "doom"]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_bad_frequency_reports_error(self, model_path, capsys):
        code = main(
            [
                "predict", "--model", str(model_path),
                "--workload", "gemm", "--core", "1000",
            ]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_experiment_table2(self, capsys):
        assert main(["experiment", "table2"]) == 0
        assert "Table II" in capsys.readouterr().out

    def test_cluster_single_run(self, tmp_path, capsys):
        report_path = tmp_path / "cluster.json"
        code = main(
            [
                "cluster", "--quick", "--nodes", "6", "--jobs", "30",
                "--scheduler", "edf", "--shape", "burst",
                "--output", str(report_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fleet energy" in out
        report = json.loads(report_path.read_text())
        assert report["scheduler"] == "edf"
        assert report["jobs"] == 30
        assert len(report["records"]) == 30

    def test_fewshot_writes_report(self, tmp_path, capsys, monkeypatch):
        # One synthetic device keeps the verb fast; the full fleet (and
        # its gate) runs in the dedicated CI job.
        from repro.experiments import fewshot
        from repro.hardware.families import standard_members

        monkeypatch.setattr(
            fewshot, "standard_members", lambda: standard_members()[:1]
        )
        report_path = tmp_path / "fewshot.json"
        code = main(
            ["fewshot", "--quick", "--no-gate", "--output", str(report_path)]
        )
        assert code == 0
        assert "Table-III band" in capsys.readouterr().out
        report = json.loads(report_path.read_text())
        assert report["schema"] == "repro.fewshot/v1"
        assert report["devices_in_band"] == 1

    def test_cluster_bench_gate_failure_exits_nonzero(self, tmp_path, capsys):
        # An impossible savings floor must fail the gate, not pass it.
        code = main(
            [
                "cluster", "--bench", "--quick",
                "--jobs", "40", "--nodes", "6",
                "--min-energy-savings", "0.99",
                "--output", str(tmp_path / "BENCH_cluster.json"),
            ]
        )
        assert code == 1
        assert "cluster gate failed" in capsys.readouterr().err

    def test_sources_dump(self, tmp_path, capsys):
        code = main(["sources", "--output", str(tmp_path / "src")])
        assert code == 0
        cu_files = list((tmp_path / "src").glob("*.cu"))
        ptx_files = list((tmp_path / "src").glob("*.ptx"))
        assert len(cu_files) == 83
        # PTX only for the arithmetic groups: 12 INT + 11 SP + 12 DP.
        assert len(ptx_files) == 35
        sample = (tmp_path / "src" / "sp_n512.cu").read_text()
        assert "__global__" in sample


class TestPredictBatch:
    def test_json_batch(self, model_path, tmp_path, capsys):
        batch = tmp_path / "batch.json"
        batch.write_text(
            json.dumps(
                [
                    {"sp": 0.4, "dram": 0.7},
                    {"int": 0.2, "l2": 0.1},
                    {"dp": 1.0},
                ]
            )
        )
        code = main(
            ["predict", "--model", str(model_path), "--batch", str(batch)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "3 rows" in out
        assert "predicted power (W)" in out

    def test_csv_batch(self, model_path, tmp_path, capsys):
        batch = tmp_path / "batch.csv"
        batch.write_text("sp,dram\n0.4,0.7\n0.9,\n")
        code = main(
            [
                "predict", "--model", str(model_path),
                "--batch", str(batch), "--core", "666",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2 rows" in out
        assert "666" in out

    def test_batch_matches_single_row_scalar_path(
        self, model_path, tmp_path, capsys
    ):
        batch = tmp_path / "one.json"
        batch.write_text(json.dumps([{"sp": 0.5, "dram": 0.5}]))
        assert main(
            ["predict", "--model", str(model_path), "--batch", str(batch)]
        ) == 0
        table = capsys.readouterr().out
        from repro.serialization import load_model
        from repro.serving.engine import vector_from_mapping

        model = load_model(model_path)
        expected = model.predict_power(
            vector_from_mapping({"sp": 0.5, "dram": 0.5}),
            model.spec.reference,
        )
        assert f"{expected:.2f}" in table

    def test_unknown_component_reports_error(
        self, model_path, tmp_path, capsys
    ):
        batch = tmp_path / "bad.json"
        batch.write_text(json.dumps([{"tensor": 0.5}]))
        code = main(
            ["predict", "--model", str(model_path), "--batch", str(batch)]
        )
        assert code == 1
        assert "unknown utilization" in capsys.readouterr().err

    def test_empty_batch_reports_error(self, model_path, tmp_path, capsys):
        batch = tmp_path / "empty.csv"
        batch.write_text("sp,dram\n")
        code = main(
            ["predict", "--model", str(model_path), "--batch", str(batch)]
        )
        assert code == 1
        assert "no utilization rows" in capsys.readouterr().err

    def test_predict_without_workload_or_batch(self, model_path, capsys):
        code = main(["predict", "--model", str(model_path)])
        assert code == 1
        assert "--workload" in capsys.readouterr().err


class TestLoadTest:
    def test_quick_run_writes_report(self, tmp_path, capsys):
        output = tmp_path / "BENCH_serving.json"
        registry = tmp_path / "registry"
        code = main(
            [
                "load-test", "--quick", "--device", "Tesla K40c",
                "--requests", "60", "--concurrency", "4",
                "--registry", str(registry),
                "--output", str(output),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "serving load test" in out
        assert "report written" in out
        report = json.loads(output.read_text())
        assert report["schema"] == "repro.serving.bench/v2"
        assert report["device"] == "Tesla K40c"
        assert report["requests_per_phase"] == 60
        assert [l["concurrency"] for l in report["levels"]] == [4]
        assert [e["workers"] for e in report["fleet"]["by_workers"]] == [1, 2]
        assert [s["shape"] for s in report["shapes"]] == ["burst"]
        # The model the run fitted stays published for reuse.
        assert (registry / "tesla-k40c" / "manifest.json").exists()

    def test_strict_passes_on_clean_run(self, tmp_path):
        code = main(
            [
                "load-test", "--quick", "--device", "Tesla K40c",
                "--requests", "40", "--concurrency", "2", "--strict",
                "--min-fleet-speedup", "1.5",
                "--output", str(tmp_path / "bench.json"),
            ]
        )
        assert code == 0

    def test_unreachable_fleet_gate_fails(self, tmp_path, capsys):
        code = main(
            [
                "load-test", "--quick", "--device", "Tesla K40c",
                "--requests", "40", "--concurrency", "2",
                "--min-fleet-speedup", "1e9",
                "--output", str(tmp_path / "bench.json"),
            ]
        )
        assert code == 1
        assert "below the required" in capsys.readouterr().err

    def test_shape_and_fleet_flags_reach_the_plan(self, tmp_path):
        output = tmp_path / "bench.json"
        code = main(
            [
                "load-test", "--quick", "--device", "Tesla K40c",
                "--requests", "40", "--concurrency", "2",
                "--fleet-workers", "2", "--chunk-rows", "8",
                "--shape", "mixed", "--shape", "diurnal",
                "--output", str(output),
            ]
        )
        # The report is written before any gate check; a 40-request
        # 8-row-chunk fleet pass is too small to hold the 3x floor
        # reliably, and this test pins flag plumbing, not the gate.
        assert code in (0, 1)
        report = json.loads(output.read_text())
        assert report["fleet"]["worker_counts"] == [2]
        assert report["fleet"]["chunk_rows"] == 8
        assert [s["shape"] for s in report["shapes"]] == ["mixed", "diurnal"]


class TestServeSmoke:
    def test_bounded_serve_answers_and_exits(self, tmp_path):
        """End-to-end through a real process: fit, listen, answer one
        request, exit cleanly at --max-requests."""
        import os
        import socket
        import subprocess
        import sys as _sys

        import repro

        src = str(Path(repro.__file__).resolve().parent.parent)
        env = {**os.environ, "PYTHONPATH": src}
        process = subprocess.Popen(
            [
                _sys.executable, "-u", "-m", "repro.cli", "serve",
                "--registry", str(tmp_path / "registry"),
                "--device", "Tesla K40c", "--fit",
                "--port", "0", "--max-requests", "1",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            text=True,
        )
        try:
            for line in process.stdout:
                if "listening on" in line:
                    port = int(line.split("listening on ")[1].split()[0].rsplit(":", 1)[1])
                    break
            else:
                pytest.fail("server never reported its port")
            with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
                sock.sendall(
                    json.dumps({"utilizations": {"sp": 0.5}}).encode() + b"\n"
                )
                payload = json.loads(sock.makefile().readline())
            assert payload["ok"] is True
            assert payload["watts"] > 0
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()


class TestTelemetryFlag:
    def _fit_with_trace(self, tmp_path, name, extra=()):
        trace = tmp_path / name
        code = main(
            [
                "fit",
                "--device",
                "Tesla K40c",
                "--output",
                str(tmp_path / "model.json"),
                "--telemetry",
                str(trace),
                *extra,
            ]
        )
        assert code == 0
        return trace

    def test_fit_telemetry_jsonl_deterministic(self, tmp_path, capsys):
        """The acceptance criterion: two same-seed fits export
        byte-identical JSONL traces."""
        first = self._fit_with_trace(tmp_path, "a.jsonl")
        second = self._fit_with_trace(tmp_path, "b.jsonl")
        assert "telemetry trace written" in capsys.readouterr().out
        assert first.read_bytes() == second.read_bytes()

        lines = [json.loads(l) for l in first.read_text().splitlines()]
        assert lines[0]["kind"] == "meta"
        assert lines[0]["schema"] == "repro.telemetry/v1"
        kinds = {line["kind"] for line in lines}
        assert kinds == {"meta", "span", "counter", "gauge"}
        campaigns = [
            l for l in lines if l["kind"] == "span" and l["name"] == "campaign"
        ]
        assert len(campaigns) == 1
        assert campaigns[0]["attrs"]["device"] == "Tesla K40c"

    def test_fit_telemetry_prometheus_format(self, tmp_path, capsys):
        trace = self._fit_with_trace(
            tmp_path, "trace.prom", extra=["--telemetry-format", "prom"]
        )
        text = trace.read_text()
        assert "# TYPE repro_rows_collected counter" in text
        assert "# TYPE repro_estimator_rmse gauge" in text

    def test_fit_telemetry_traces_chaos_campaign(self, tmp_path, capsys):
        trace = self._fit_with_trace(
            tmp_path, "chaos.jsonl", extra=["--chaos", "0.05"]
        )
        lines = [json.loads(l) for l in trace.read_text().splitlines()]
        counters = {
            l["name"]: l["value"] for l in lines if l["kind"] == "counter"
        }
        assert counters.get("faults.injected", 0) > 0
        assert counters.get("backoff.virtual_seconds", 0) > 0


class TestEnergyCommands:
    """The joint power x runtime CLI surface: fit --perf / predict --energy."""

    @pytest.fixture(scope="class")
    def perf_paths(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli-perf") / "k40c.json"
        code = main(
            ["fit", "--device", "Tesla K40c", "--perf", "--output", str(path)]
        )
        assert code == 0
        perf_path = path.with_name("k40c.perf.json")
        assert perf_path.exists()
        return path, perf_path

    def test_fit_perf_writes_valid_performance_model(self, perf_paths):
        _power, perf_path = perf_paths
        data = json.loads(perf_path.read_text())
        assert data["format"] == "repro-dvfs-performance-model"
        assert data["device"] == "Tesla K40c"
        names = {entry["name"] for entry in data["kernels"]}
        # Microbenchmarks and the Table-III workloads are both fitted.
        assert "blackscholes" in names
        assert len(names) > 83

    def test_predict_energy_single_config(self, perf_paths, capsys):
        power, perf = perf_paths
        code = main(
            [
                "predict", "--energy", "--model", str(power),
                "--perf-model", str(perf),
                "--workload", "blackscholes", "--core", "745",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "energy" in out
        assert "EDP" in out

    def test_predict_energy_grid(self, perf_paths, capsys):
        power, perf = perf_paths
        code = main(
            [
                "predict", "--energy", "--model", str(power),
                "--perf-model", str(perf),
                "--workload", "blackscholes", "--grid",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "best energy" in out
        assert "best edp" in out
        assert "best ed2p" in out

    def test_predict_energy_requires_perf_model(self, perf_paths, capsys):
        power, _perf = perf_paths
        code = main(
            [
                "predict", "--energy", "--model", str(power),
                "--workload", "blackscholes",
            ]
        )
        assert code != 0
        assert "--perf-model" in capsys.readouterr().err
