"""Tests of the experiment harness modules (:mod:`repro.experiments`).

Each experiment's ``run()`` must return a structurally complete result; the
*shape* criteria of every figure are asserted in full by the corresponding
benchmark (``benchmarks/``), so these tests keep to structural sanity plus
the cheapest shape invariants.
"""

from __future__ import annotations

import pytest

from repro.experiments import fig2, fig5, fig6, fig9, table1, table2, table3
from repro.hardware.components import Component


class TestTableExperiments:
    def test_table1_event_resolution(self, lab):
        result = table1.run(lab)
        assert set(result.tables) == {"Titan Xp", "GTX Titan X", "Tesla K40c"}
        for device in result.tables:
            for _, field in table1.METRIC_FIELDS:
                assert result.events_for(device, field)

    def test_table2_grid_sizes(self, lab):
        result = table2.run(lab)
        assert result.grid_sizes() == {
            "Titan Xp": (22, 2),
            "GTX Titan X": (16, 4),
            "Tesla K40c": (4, 1),
        }

    def test_table3_workload_census(self, lab):
        result = table3.run(lab)
        assert result.workload_count == 27
        assert set(result.suites()) == {
            "rodinia", "parboil", "polybench", "cuda_sdk"
        }


class TestFigureExperiments:
    def test_fig2_structure(self, lab):
        result = fig2.run(lab)
        assert {a.name for a in result.applications} == {
            "blackscholes", "cutcp"
        }
        blackscholes = result.application("blackscholes")
        assert set(blackscholes.power_curves) == {3505.0, 810.0}
        assert len(blackscholes.power_curves[3505.0]) == 16

    def test_fig2_memory_drop_ordering(self, lab):
        result = fig2.run(lab)
        assert (
            result.application("blackscholes").memory_drop_fraction()
            > result.application("cutcp").memory_drop_fraction()
        )

    def test_fig5_structure(self, lab):
        result = fig5.run(lab)
        assert len(result.utilizations) == 83
        assert len(result.breakdown.entries) == 83
        ladder = result.group_utilizations("sp", Component.SP)
        assert len(ladder) == 11

    def test_fig6_structure(self, lab):
        result = fig6.run(lab)
        assert {d.device for d in result.devices} == {
            "GTX Titan X", "Titan Xp"
        }
        titan_x = result.device("GTX Titan X")
        assert len(titan_x.predicted_curve) == 16
        assert len(titan_x.measured_curve) == 16

    def test_fig9_structure(self, lab):
        result = fig9.run(lab)
        assert [entry.matrix_size for entry in result.sizes] == [64, 512, 4096]
        sweep = result.size(4096).sweep
        assert len(sweep) == 16

    def test_fig9_tdp_throttle_event(self, lab):
        result = fig9.run(lab)
        throttled = result.size(4096).throttled_levels()
        assert throttled.get(1164.0) == 1126.0
        assert not result.size(64).throttled_levels()


class TestClusterSavingsExperiment:
    def test_structure_and_headline(self, lab):
        from repro.experiments import cluster_savings

        result = cluster_savings.run(
            lab=lab,
            quick=True,
            mix={"Titan Xp": 2, "GTX Titan X": 2, "Tesla K40c": 1},
            n_jobs=40,
        )
        assert set(result.shapes) == {"diurnal", "burst", "mixed"}
        for by_scheduler in result.shapes.values():
            assert set(by_scheduler) == set(
                ("max-clocks", "energy-greedy", "edf", "powercap-edf")
            )
            for report in by_scheduler.values():
                assert report.n_jobs == 40
        headline = result.headline()
        assert headline["scheduler"] == "edf"
        assert -1.0 < headline["min_savings_vs_max_clocks"] < 1.0
        # Chaos run completes every job despite node churn.
        assert result.chaos.n_jobs == 40

    def test_report_dict_schema_fields(self, lab):
        from repro.experiments import cluster_savings

        result = cluster_savings.run(
            lab=lab,
            quick=True,
            mix={"Titan Xp": 2, "GTX Titan X": 2, "Tesla K40c": 1},
            n_jobs=40,
        )
        payload = result.to_dict()
        assert payload["nodes"] == 5
        assert payload["jobs"] == 40
        for shape_entry in payload["shapes"].values():
            for entry in shape_entry.values():
                assert "savings_vs_max_clocks" in entry
                assert "deadline_miss_rate" in entry
                assert "wall_seconds" in entry
        assert payload["chaos"]["completed"] == 40

    def test_default_mix_proportions(self):
        from repro.errors import ValidationError
        from repro.experiments.cluster_savings import default_mix

        mix = default_mix(20)
        assert sum(mix.values()) == 20
        assert mix == {"Titan Xp": 8, "GTX Titan X": 8, "Tesla K40c": 4}
        assert sum(default_mix(7).values()) == 7
        with pytest.raises(ValidationError):
            default_mix(2)


class TestLabCaching:
    def test_models_are_cached(self, lab):
        assert lab.model("GTX Titan X") is lab.model("GTX Titan X")

    def test_sessions_are_cached(self, lab):
        assert lab.session("gtx titan x") is lab.session("GTX Titan X")

    def test_suite_is_shared(self, lab):
        assert lab.suite is lab.suite
        assert len(lab.suite) == 83
