"""Differential validation of the fitted performance estimator
(:mod:`repro.core.perf_estimation`) against the hidden ground-truth timing
model, plus the estimator's structural contracts.

The simulated boards are deterministic (memoized runs, noise-free
timing), so the error bands are tight and exact — a genuine model change
fails loudly, numerical-library jitter does not. The differential sweep
never imports :mod:`repro.hardware.performance`; it only compares against
what the driver layer measures, the same blindness the estimator works
under.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimation import EstimatorReport
from repro.core.metrics import MetricCalculator
from repro.core.perf_estimation import (
    DevicePerformanceModel,
    EnergyModel,
    KernelPerformanceModel,
    PerformanceEstimator,
    PerformanceEstimatorReport,
)
from repro.errors import EstimationError, NotFittedError
from repro.hardware.components import ALL_COMPONENTS, Component
from repro.hardware.specs import FrequencyConfig, GTX_TITAN_X

DEVICES = ("Titan Xp", "GTX Titan X", "Tesla K40c")

#: Per-device runtime-MAE ceilings (percent) over the full V-F grid. The
#: observed values sit at ~1e-12 %; the bands leave several orders of
#: magnitude of slack while still catching any real modeling regression.
MAE_BAND_PERCENT = {
    "Titan Xp": 1e-6,
    "GTX Titan X": 1e-6,
    "Tesla K40c": 1e-6,
}
MAX_ERROR_BAND_PERCENT = 1e-4


@pytest.fixture(scope="module", params=DEVICES)
def fitted(request, lab):
    """(device, session, model, report) with the Lab's suite-wide fit."""
    device = request.param
    return (
        device,
        lab.session(device),
        lab.performance_model(device),
        lab.performance_report(device),
    )


class TestDifferentialRuntime:
    """Predictions vs measured elapsed times over the whole grid."""

    def test_runtime_mae_within_band(self, fitted, lab):
        device, session, model, _report = fitted
        kernels = lab.suite[::9]  # ~10 kernels, spread across the suite
        errors = []
        for kernel in kernels:
            for config in session.gpu.spec.all_configurations():
                measurement = session.measure_elapsed(kernel, config)
                predicted = model.predict_runtime(
                    kernel.name, measurement.applied_config
                )
                errors.append(
                    abs(predicted - measurement.seconds)
                    / measurement.seconds
                    * 100.0
                )
        mae = sum(errors) / len(errors)
        assert mae <= MAE_BAND_PERCENT[device], (
            f"{device}: runtime MAE {mae:.3e}% exceeded the band"
        )
        assert max(errors) <= MAX_ERROR_BAND_PERCENT, (
            f"{device}: max runtime error {max(errors):.3e}% exceeded the band"
        )

    def test_probe_fit_is_near_exact(self, fitted):
        device, _session, _model, report = fitted
        assert report.train_mae_percent <= 1e-6, device
        assert report.worst_rmse <= 1e-9, device

    def test_report_counts(self, fitted, lab):
        _device, _session, model, report = fitted
        assert report.kernels == len(lab.suite)
        assert sorted(model.known_kernels()) == sorted(
            k.name for k in lab.suite
        )
        # Every kernel contributes at least one probe, at most the target.
        assert report.kernels <= report.probes <= 3 * report.kernels
        assert len(report.rmse_history) == report.kernels
        assert report.final_rmse == report.rmse_history[-1]


class TestVectorizedEquality:
    def test_grid_bitwise_equals_scalar(self, fitted):
        _device, session, model, _report = fitted
        configs = session.gpu.spec.all_configurations()
        for name in model.known_kernels()[::17]:
            grid = model.predict_runtime_grid(name, configs)
            scalar = [model.predict_runtime(name, c) for c in configs]
            assert grid.tolist() == scalar, name

    def test_default_grid_is_full_grid(self, fitted):
        _device, session, model, _report = fitted
        name = model.known_kernels()[0]
        full = model.predict_runtime_grid(name)
        explicit = model.predict_runtime_grid(
            name, session.gpu.spec.all_configurations()
        )
        assert full.tolist() == explicit.tolist()


# ----------------------------------------------------------------------
# Hypothesis properties on the model law itself
# ----------------------------------------------------------------------
service_seconds = st.floats(
    min_value=0.0, max_value=1e-2, allow_nan=False, allow_infinity=False
)


def _kernel_model(values, latency):
    components = dict(zip(ALL_COMPONENTS, values))
    return KernelPerformanceModel(
        kernel_name="prop",
        reference=GTX_TITAN_X.reference,
        overlap_exponent=6.0,
        component_seconds=components,
        latency_seconds=latency,
    )


class TestModelProperties:
    @given(
        values=st.lists(
            service_seconds,
            min_size=len(ALL_COMPONENTS),
            max_size=len(ALL_COMPONENTS),
        ),
        latency=service_seconds,
        memory=st.sampled_from(GTX_TITAN_X.memory_frequencies_mhz),
    )
    @settings(max_examples=60, deadline=None)
    def test_runtime_monotone_in_core_frequency(self, values, latency, memory):
        if sum(values) + latency <= 0.0:
            values = list(values)
            values[0] = 1e-6
        model = _kernel_model(values, latency)
        cores = sorted(GTX_TITAN_X.core_frequencies_mhz)
        times = [
            model.predict_runtime(FrequencyConfig(core, memory))
            for core in cores
        ]
        for slower, faster in zip(times, times[1:]):
            assert faster <= slower * (1.0 + 1e-12)

    @given(
        values=st.lists(
            service_seconds,
            min_size=len(ALL_COMPONENTS),
            max_size=len(ALL_COMPONENTS),
        ),
        latency=service_seconds,
        core=st.sampled_from(GTX_TITAN_X.core_frequencies_mhz),
    )
    @settings(max_examples=60, deadline=None)
    def test_runtime_monotone_in_memory_frequency(self, values, latency, core):
        if sum(values) + latency <= 0.0:
            values = list(values)
            values[0] = 1e-6
        model = _kernel_model(values, latency)
        memories = sorted(GTX_TITAN_X.memory_frequencies_mhz)
        times = [
            model.predict_runtime(FrequencyConfig(core, memory))
            for memory in memories
        ]
        for slower, faster in zip(times, times[1:]):
            assert faster <= slower * (1.0 + 1e-12)

    @given(
        # Bounded away from zero: a term below ~1e-51 underflows to 0.0
        # when raised to the 6th power, which is an IEEE artifact rather
        # than a property of the law.
        values=st.lists(
            st.floats(min_value=1e-9, max_value=1e-2),
            min_size=len(ALL_COMPONENTS),
            max_size=len(ALL_COMPONENTS),
        ),
        latency=st.floats(min_value=1e-9, max_value=1e-2),
    )
    @settings(max_examples=60, deadline=None)
    def test_runtime_bounded_by_bottleneck_and_sum(self, values, latency):
        """The smooth max sits between the hard max and the plain sum."""
        model = _kernel_model(values, latency)
        time = model.predict_runtime(GTX_TITAN_X.reference)
        terms = list(values) + [latency]
        assert time >= max(terms) * (1.0 - 1e-12)
        assert time <= sum(terms) * (1.0 + 1e-12)


class TestEnergyModel:
    @pytest.fixture(scope="class")
    def joint(self, lab):
        device = "GTX Titan X"
        return (
            lab.session(device),
            EnergyModel(lab.model(device), lab.performance_model(device)),
        )

    @given(config_index=st.integers(0, 35), kernel_index=st.integers(0, 82))
    @settings(max_examples=40, deadline=None)
    def test_energy_is_exactly_power_times_runtime(
        self, joint, lab, config_index, kernel_index
    ):
        session, joint_model = joint
        spec = session.gpu.spec
        configs = spec.all_configurations()
        config = configs[config_index % len(configs)]
        kernel = lab.suite[kernel_index % len(lab.suite)]
        utilizations = MetricCalculator(spec).utilizations(
            session.collect_events(kernel)
        )
        energy = joint_model.predict_energy(utilizations, kernel.name, config)
        assert energy == joint_model.predict_power(
            utilizations, config
        ) * joint_model.predict_runtime(kernel.name, config)
        runtime = joint_model.predict_runtime(kernel.name, config)
        assert joint_model.predict_edp(
            utilizations, kernel.name, config
        ) == pytest.approx(energy * runtime, rel=1e-12)
        assert joint_model.predict_ed2p(
            utilizations, kernel.name, config
        ) == pytest.approx(energy * runtime * runtime, rel=1e-12)

    def test_breakdown_is_consistent(self, joint, lab):
        session, joint_model = joint
        kernel = lab.suite[5]
        config = session.gpu.spec.all_configurations()[3]
        utilizations = MetricCalculator(session.gpu.spec).utilizations(
            session.collect_events(kernel)
        )
        breakdown = joint_model.breakdown(utilizations, kernel.name, config)
        assert breakdown.energy_joules == pytest.approx(
            breakdown.power_watts * breakdown.runtime_seconds, rel=1e-12
        )
        assert breakdown.edp == pytest.approx(
            breakdown.energy_joules * breakdown.runtime_seconds, rel=1e-12
        )
        assert breakdown.ed2p == pytest.approx(
            breakdown.edp * breakdown.runtime_seconds, rel=1e-12
        )

    def test_spec_mismatch_rejected(self, lab):
        with pytest.raises(EstimationError):
            EnergyModel(
                lab.model("GTX Titan X"), lab.performance_model("Titan Xp")
            )


class TestGuardsAndErrors:
    def test_unknown_kernel_raises_not_fitted(self, lab):
        model = lab.performance_model("GTX Titan X")
        with pytest.raises(NotFittedError):
            model.predict_runtime("no-such-kernel", GTX_TITAN_X.reference)

    def test_empty_perf_report_final_rmse_raises(self):
        report = PerformanceEstimatorReport(
            kernels=0, probes=0, rmse_history=(), train_mae_percent=0.0
        )
        with pytest.raises(EstimationError):
            report.final_rmse
        with pytest.raises(EstimationError):
            report.worst_rmse

    def test_empty_power_report_final_rmse_raises(self):
        # Regression: this used to be an opaque IndexError.
        report = EstimatorReport(
            iterations=0,
            converged=False,
            rmse_history=(),
            train_mae_percent=float("nan"),
        )
        with pytest.raises(EstimationError):
            report.final_rmse

    def test_estimator_rejects_empty_kernel_list(self, lab):
        with pytest.raises(EstimationError):
            PerformanceEstimator(None, lab.session("GTX Titan X"), [])

    def test_estimator_rejects_mismatched_dataset(self, lab):
        with pytest.raises(EstimationError):
            PerformanceEstimator(
                lab.dataset("Titan Xp"),
                lab.session("GTX Titan X"),
                lab.suite[:1],
            )

    def test_estimator_rejects_bad_exponent(self, lab):
        with pytest.raises(EstimationError):
            PerformanceEstimator(
                None, lab.session("GTX Titan X"), lab.suite[:1],
                overlap_exponent=0.5,
            )

    def test_kernel_model_validates_terms(self):
        components = {c: 0.0 for c in ALL_COMPONENTS}
        with pytest.raises(EstimationError):
            KernelPerformanceModel(
                kernel_name="zero",
                reference=GTX_TITAN_X.reference,
                overlap_exponent=6.0,
                component_seconds=components,
            )
        with pytest.raises(EstimationError):
            KernelPerformanceModel(
                kernel_name="negative",
                reference=GTX_TITAN_X.reference,
                overlap_exponent=6.0,
                component_seconds={
                    **components, Component.DRAM: -1.0
                },
            )
        missing = {c: 1e-3 for c in ALL_COMPONENTS if c != Component.L2}
        with pytest.raises(EstimationError):
            KernelPerformanceModel(
                kernel_name="missing",
                reference=GTX_TITAN_X.reference,
                overlap_exponent=6.0,
                component_seconds=missing,
            )

    def test_device_model_rejects_empty(self):
        with pytest.raises(EstimationError):
            DevicePerformanceModel(spec=GTX_TITAN_X, kernels={})


class TestProbeSchedule:
    def test_probe_schedule_is_deterministic(self, lab):
        estimator = PerformanceEstimator(
            None, lab.session("GTX Titan X"), lab.suite[:1]
        )
        first = estimator.probe_configurations()
        second = estimator.probe_configurations()
        assert first == second
        keys = [(c.core_mhz, c.memory_mhz) for c in first]
        assert len(keys) == len(set(keys))

    def test_throttled_device_still_fits(self, lab):
        """Tesla K40c: TDP throttling collapses heavy kernels onto one
        applied configuration; the single-probe fallback must still produce
        a model whose anchor prediction is exact."""
        session = lab.session("Tesla K40c")
        model = lab.performance_model("Tesla K40c")
        spec = session.gpu.spec
        for kernel in lab.suite[:6]:
            measurement = session.measure_elapsed(kernel, spec.reference)
            predicted = model.predict_runtime(
                kernel.name, measurement.applied_config
            )
            assert predicted == pytest.approx(measurement.seconds, rel=1e-9)
