"""Cluster simulator + scheduler tests: determinism, dominance, chaos.

The fleet here is deliberately tiny (a handful of nodes, two device
types, a short kernel pool) — the simulator's costs are per *device
type*, so small fleets exercise every code path the 2048-node bench
uses. The acceptance-critical assertions: same-seed runs are bitwise
identical (report bytes and telemetry counters) for every scheduler, and
the deadline-aware scheduler beats the max-clocks baseline on energy
without giving up deadline misses.
"""

from __future__ import annotations

import json

import pytest

from repro.cluster import (
    ClusterSimulator,
    DeviceOracle,
    NodeFailurePlan,
    build_fleet,
    fleet_reference_seconds,
    generate_job_trace,
    scheduler_by_name,
)
from repro.cluster.node import EnergyFrontier, GPUNode
from repro.cluster.schedulers import SCHEDULER_NAMES
from repro.errors import ValidationError
from repro.telemetry import TraceRecorder

DEVICES = ("Titan Xp", "GTX Titan X")
N_KERNELS = 5
N_JOBS = 60
SEED = 1234


@pytest.fixture(scope="module")
def kernels(lab):
    return tuple(lab.workloads(DEVICES[0]))[:N_KERNELS]


@pytest.fixture(scope="module")
def oracles(lab, kernels):
    return {
        device: DeviceOracle.fit(device, kernels, lab=lab)
        for device in DEVICES
    }


@pytest.fixture(scope="module")
def trace(oracles, kernels):
    references = fleet_reference_seconds(
        [oracles[device] for device in sorted(oracles)], kernels
    )
    return generate_job_trace(
        "burst", N_JOBS, SEED, kernels, references, horizon_s=1.0
    )


@pytest.fixture(scope="module")
def fleet(oracles):
    return build_fleet(oracles, {"Titan Xp": 3, "GTX Titan X": 3})


def run_scheduler(fleet, trace, name, recorder=None, failure_plan=None):
    simulator = ClusterSimulator(
        fleet,
        scheduler_by_name(name),
        recorder=recorder,
        failure_plan=failure_plan,
    )
    return simulator.run(trace)


class TestDeterminism:
    @pytest.mark.parametrize("name", SCHEDULER_NAMES)
    def test_same_seed_bitwise_identical(self, fleet, trace, name):
        first_recorder = TraceRecorder()
        second_recorder = TraceRecorder()
        first = run_scheduler(fleet, trace, name, recorder=first_recorder)
        second = run_scheduler(fleet, trace, name, recorder=second_recorder)
        assert json.dumps(first.to_dict(), sort_keys=True) == json.dumps(
            second.to_dict(), sort_keys=True
        )
        assert first_recorder.counters() == second_recorder.counters()

    def test_chaos_runs_deterministic_too(self, fleet, trace):
        plan = NodeFailurePlan(mtbf_s=0.3, mttr_s=0.05, seed=SEED)
        first = run_scheduler(fleet, trace, "edf", failure_plan=plan)
        second = run_scheduler(fleet, trace, "edf", failure_plan=plan)
        assert first.to_dict() == second.to_dict()


class TestCompletionAccounting:
    @pytest.mark.parametrize("name", SCHEDULER_NAMES)
    def test_every_job_completes_once(self, fleet, trace, name):
        report = run_scheduler(fleet, trace, name)
        assert report.n_jobs == len(trace)
        assert sorted(r.job_id for r in report.records) == list(
            range(len(trace))
        )
        for record in report.records:
            assert record.start_s >= record.arrival_s
            assert record.finish_s > record.start_s
            assert record.energy_joules > 0
            assert record.attempts == 1

    def test_energy_totals_are_consistent(self, fleet, trace):
        report = run_scheduler(fleet, trace, "edf")
        assert report.fleet_energy_joules == pytest.approx(
            sum(r.energy_joules for r in report.records)
        )
        assert report.fleet_energy_joules == pytest.approx(
            sum(energy for _, energy in report.energy_by_device)
        )
        assert report.makespan_s == max(r.finish_s for r in report.records)

    def test_telemetry_counters(self, fleet, trace):
        recorder = TraceRecorder()
        report = run_scheduler(fleet, trace, "edf", recorder=recorder)
        counters = recorder.counters()
        assert counters["cluster.arrivals"] == len(trace)
        assert counters["cluster.completed"] == len(trace)
        assert counters["cluster.dispatched"] == len(trace)
        assert (
            counters.get("cluster.deadline_misses", 0.0)
            == report.deadline_misses
        )

    def test_max_clocks_baseline_pins_max_configuration(self, fleet, trace):
        report = run_scheduler(fleet, trace, "max-clocks")
        specs = {node.name: node.spec for node in fleet}
        for record in report.records:
            maximum = specs[record.node_name].max_configuration
            assert record.core_mhz == maximum.core_mhz
            assert record.memory_mhz == maximum.memory_mhz


class TestSchedulerQuality:
    def test_edf_beats_max_clocks_on_energy_and_misses(self, fleet, trace):
        baseline = run_scheduler(fleet, trace, "max-clocks")
        edf = run_scheduler(fleet, trace, "edf")
        assert edf.fleet_energy_joules < baseline.fleet_energy_joules
        assert edf.deadline_misses <= baseline.deadline_misses

    def test_energy_greedy_minimizes_energy(self, fleet, trace):
        baseline = run_scheduler(fleet, trace, "max-clocks")
        greedy = run_scheduler(fleet, trace, "energy-greedy")
        assert greedy.fleet_energy_joules < baseline.fleet_energy_joules

    def test_power_cap_respected_when_feasible(self, oracles, trace, fleet):
        cap = 180.0
        simulator = ClusterSimulator(
            fleet, scheduler_by_name("powercap-edf", cap_watts=cap)
        )
        report = simulator.run(trace)
        by_kernel = {job.kernel.name: job.kernel for job in trace.jobs}
        oracle_by_device = {
            oracle.device_name: oracle for oracle in oracles.values()
        }
        for record in report.records:
            oracle = oracle_by_device[record.device_name]
            kernel = by_kernel[record.kernel_name]
            scores = oracle.scores(kernel)
            chosen = oracle.score_at(
                kernel, record_config(record, oracle)
            )
            if any(s.predicted_power_watts <= cap for s in scores):
                assert chosen.predicted_power_watts <= cap


def record_config(record, oracle):
    from repro.hardware.specs import FrequencyConfig

    return oracle.spec.validate_configuration(
        FrequencyConfig(record.core_mhz, record.memory_mhz)
    )


class TestChaos:
    def test_node_failures_reschedule_and_complete(self, fleet, trace):
        recorder = TraceRecorder()
        plan = NodeFailurePlan(mtbf_s=0.15, mttr_s=0.05, seed=SEED)
        report = run_scheduler(
            fleet, trace, "edf", recorder=recorder, failure_plan=plan
        )
        assert report.node_failures > 0
        assert report.n_jobs == len(trace)  # nothing lost to churn
        counters = recorder.counters()
        assert counters["cluster.node_failures"] == report.node_failures
        assert (
            counters["cluster.dispatched"]
            == len(trace) + report.rescheduled
        )
        if report.rescheduled:
            assert any(r.attempts > 1 for r in report.records)

    def test_churn_costs_energy_not_jobs(self, fleet, trace):
        plan = NodeFailurePlan(mtbf_s=0.15, mttr_s=0.05, seed=SEED)
        calm = run_scheduler(fleet, trace, "edf")
        churned = run_scheduler(fleet, trace, "edf", failure_plan=plan)
        if churned.rescheduled:
            # Partial runs burn energy that completed work repeats.
            assert (
                churned.fleet_energy_joules > calm.fleet_energy_joules
            )


class TestValidation:
    def test_empty_fleet_rejected(self):
        with pytest.raises(ValidationError):
            ClusterSimulator([], scheduler_by_name("edf"))

    def test_duplicate_node_names_rejected(self, oracles):
        oracle = oracles[DEVICES[0]]
        nodes = [GPUNode("twin", oracle), GPUNode("twin", oracle)]
        with pytest.raises(ValidationError, match="unique"):
            ClusterSimulator(nodes, scheduler_by_name("edf"))

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValidationError, match="unknown scheduler"):
            scheduler_by_name("round-robin")

    def test_power_cap_must_be_positive(self):
        with pytest.raises(ValidationError):
            scheduler_by_name("powercap-edf", cap_watts=0.0)


class TestEnergyFrontier:
    def test_best_within_matches_linear_scan(self, oracles, kernels):
        oracle = oracles[DEVICES[1]]
        kernel = kernels[0]
        frontier = oracle.frontier(kernel)
        scores = oracle.scores(kernel)
        for budget in (0.0, 5e-4, 1e-3, 2e-3, 1e-2, 1.0):
            expected = [
                s for s in scores if s.time_seconds <= budget
            ]
            got = frontier.best_within(budget)
            if not expected:
                assert got is None
            else:
                best = min(expected, key=lambda s: s.energy_joules)
                assert got.energy_joules == best.energy_joules

    def test_fastest_is_min_runtime(self, oracles, kernels):
        oracle = oracles[DEVICES[0]]
        frontier = oracle.frontier(kernels[1])
        scores = oracle.scores(kernels[1])
        assert frontier.fastest.time_seconds == min(
            s.time_seconds for s in scores
        )

    def test_empty_frontier_rejected(self):
        with pytest.raises(ValidationError):
            EnergyFrontier.build([])
