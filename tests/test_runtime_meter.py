"""Unit tests for the event-driven power meter (:mod:`repro.runtime.meter`)."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.hardware.specs import FrequencyConfig, GTX_TITAN_X
from repro.runtime.meter import EventDrivenPowerMeter
from repro.workloads import workload_by_name


@pytest.fixture()
def meter(lab) -> EventDrivenPowerMeter:
    return EventDrivenPowerMeter(lab.model("GTX Titan X"))


def cumulative_counters(record, scale=1.0):
    return {name: value * scale for name, value in record.values.items()}


class TestObserveKernel:
    def test_estimate_close_to_truth(self, lab, meter):
        session = lab.session("GTX Titan X")
        kernel = workload_by_name("gemm")
        record = session.collect_events(kernel)
        reading = meter.observe_kernel(record)
        truth = lab.gpu("GTX Titan X").run(kernel).true_power_watts
        assert reading.power_watts == pytest.approx(truth, rel=0.15)

    def test_reading_accumulates_energy(self, lab, meter):
        session = lab.session("GTX Titan X")
        record = session.collect_events(workload_by_name("gemm"))
        reading = meter.observe_kernel(record)
        assert meter.total_energy_joules == pytest.approx(
            reading.energy_joules
        )

    def test_breakdown_available_per_reading(self, lab, meter):
        from repro.hardware.components import Component

        session = lab.session("GTX Titan X")
        record = session.collect_events(workload_by_name("lbm"))
        reading = meter.observe_kernel(record)
        assert reading.component_watts(Component.DRAM) > 0


class TestCumulativeUpdates:
    def test_first_snapshot_is_baseline(self, lab, meter):
        session = lab.session("GTX Titan X")
        record = session.collect_events(workload_by_name("gemm"))
        assert meter.update(cumulative_counters(record), record.config) is None

    def test_delta_window_produces_reading(self, lab, meter):
        session = lab.session("GTX Titan X")
        record = session.collect_events(workload_by_name("gemm"))
        meter.update(cumulative_counters(record), record.config)
        reading = meter.update(
            cumulative_counters(record, scale=2.0), record.config
        )
        assert reading is not None
        # The delta equals one kernel launch, so the estimate matches the
        # per-launch observation.
        direct = EventDrivenPowerMeter(meter.model).observe_kernel(record)
        assert reading.power_watts == pytest.approx(direct.power_watts)

    def test_counter_reset_rebaselines(self, lab, meter):
        session = lab.session("GTX Titan X")
        record = session.collect_events(workload_by_name("gemm"))
        meter.update(cumulative_counters(record, 5.0), record.config)
        # Counters went backwards: must re-baseline, not report nonsense.
        assert meter.update(cumulative_counters(record, 1.0), record.config) is None

    def test_idle_window_returns_none(self, lab, meter):
        session = lab.session("GTX Titan X")
        record = session.collect_events(workload_by_name("gemm"))
        counters = cumulative_counters(record)
        meter.update(counters, record.config)
        assert meter.update(dict(counters), record.config) is None

    def test_average_power_requires_readings(self, meter):
        with pytest.raises(ValidationError):
            meter.average_power_watts()

    def test_reset_clears_state(self, lab, meter):
        session = lab.session("GTX Titan X")
        record = session.collect_events(workload_by_name("gemm"))
        meter.observe_kernel(record)
        meter.reset()
        assert meter.readings == []
        assert meter.total_energy_joules == 0.0


class TestMeterEdgeCases:
    def test_fresh_meter_is_empty(self, meter):
        assert meter.readings == []
        assert meter.total_energy_joules == 0.0

    def test_readings_property_returns_a_copy(self, lab, meter):
        session = lab.session("GTX Titan X")
        record = session.collect_events(workload_by_name("gemm"))
        meter.observe_kernel(record)
        snapshot = meter.readings
        snapshot.clear()
        assert len(meter.readings) == 1

    def test_reading_resumes_after_counter_reset(self, lab, meter):
        """A reset drops one window but the next delta meters normally."""
        session = lab.session("GTX Titan X")
        record = session.collect_events(workload_by_name("gemm"))
        meter.update(cumulative_counters(record, 5.0), record.config)
        assert meter.update(
            cumulative_counters(record, 1.0), record.config
        ) is None
        reading = meter.update(
            cumulative_counters(record, 2.0), record.config
        )
        assert reading is not None
        assert reading.power_watts > 0

    def test_counter_absent_from_baseline_counts_from_zero(self, lab, meter):
        """A counter that appears mid-stream deltas against zero rather
        than crashing the window."""
        session = lab.session("GTX Titan X")
        record = session.collect_events(workload_by_name("gemm"))
        counters = cumulative_counters(record)
        missing = next(iter(counters))
        baseline = {k: v for k, v in counters.items() if k != missing}
        meter.update(baseline, record.config)
        reading = meter.update(
            cumulative_counters(record, 2.0), record.config
        )
        assert reading is not None
        assert reading.power_watts > 0

    def test_update_rejects_unsupported_config(self, lab, meter):
        from repro.errors import FrequencyError

        session = lab.session("GTX Titan X")
        record = session.collect_events(workload_by_name("gemm"))
        with pytest.raises(FrequencyError):
            meter.update(
                cumulative_counters(record), FrequencyConfig(123, 456)
            )

    def test_average_power_matches_single_window(self, lab, meter):
        session = lab.session("GTX Titan X")
        record = session.collect_events(workload_by_name("gemm"))
        reading = meter.observe_kernel(record)
        assert meter.average_power_watts() == pytest.approx(
            reading.power_watts
        )


class TestAcrossConfigurations:
    def test_metering_tracks_configuration(self, lab):
        """The same activity at a lower-memory configuration meters lower."""
        meter = EventDrivenPowerMeter(lab.model("GTX Titan X"))
        session = lab.session("GTX Titan X")
        kernel = workload_by_name("blackscholes")
        reference_record = session.collect_events(kernel)
        low_record = session.cupti.collect_events(
            kernel, FrequencyConfig(975, 810)
        )
        high = meter.observe_kernel(reference_record)
        low = meter.observe_kernel(low_record)
        assert low.power_watts < high.power_watts
