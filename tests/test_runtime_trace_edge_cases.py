"""Edge-case tests for trace accounting structures
(:mod:`repro.runtime.trace`)."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.hardware.specs import FrequencyConfig
from repro.runtime.manager import OnlineDVFSManager
from repro.runtime.policies import StaticPolicy
from repro.runtime.trace import (
    ApplicationTrace,
    PhaseExecution,
    TracePhase,
    TraceReport,
)
from repro.workloads import workload_by_name


def execution(name="k", energy=10.0, seconds=2.0, profiled=False):
    return PhaseExecution(
        kernel_name=name,
        invocations=1,
        config=FrequencyConfig(975, 3505),
        profiled=profiled,
        energy_joules=energy,
        time_seconds=seconds,
    )


class TestPhaseExecution:
    def test_average_power(self):
        assert execution(energy=10.0, seconds=2.0).average_power_watts == 5.0

    def test_zero_time_average_power(self):
        assert execution(energy=0.0, seconds=0.0).average_power_watts == 0.0


class TestTraceReport:
    def test_rejects_empty_executions(self):
        with pytest.raises(ValidationError):
            TraceReport(
                trace_name="t",
                device_name="d",
                executions=(),
                baseline_energy_joules=1.0,
                baseline_time_seconds=1.0,
            )

    def test_totals(self):
        report = TraceReport(
            trace_name="t",
            device_name="d",
            executions=(execution(energy=10.0), execution(energy=5.0)),
            baseline_energy_joules=20.0,
            baseline_time_seconds=4.0,
        )
        assert report.total_energy_joules == 15.0
        assert report.energy_saving_fraction == pytest.approx(0.25)
        assert report.slowdown == pytest.approx(1.0)

    def test_degenerate_baselines(self):
        report = TraceReport(
            trace_name="t",
            device_name="d",
            executions=(execution(),),
            baseline_energy_joules=0.0,
            baseline_time_seconds=0.0,
        )
        assert report.energy_saving_fraction == 0.0
        assert report.slowdown == 1.0

    def test_baseline_equals_totals_is_exact_identity(self):
        """When the executed trace *is* the baseline, the comparison
        metrics are exactly neutral — not merely approximately."""
        runs = (execution(energy=7.5, seconds=1.25),)
        report = TraceReport(
            trace_name="t",
            device_name="d",
            executions=runs,
            baseline_energy_joules=7.5,
            baseline_time_seconds=1.25,
        )
        assert report.energy_saving_fraction == 0.0
        assert report.slowdown == 1.0

    def test_chosen_configs_last_wins(self):
        """When a kernel appears in several phases, the last phase's
        configuration is reported — managers may only ever use one, but the
        accounting must not crash on re-plans."""
        a = execution(name="k")
        b = PhaseExecution(
            kernel_name="k",
            invocations=1,
            config=FrequencyConfig(595, 810),
            profiled=False,
            energy_joules=1.0,
            time_seconds=1.0,
        )
        report = TraceReport(
            trace_name="t",
            device_name="d",
            executions=(a, b),
            baseline_energy_joules=1.0,
            baseline_time_seconds=1.0,
        )
        assert report.chosen_configs()["k"] == FrequencyConfig(595, 810)


class TestApplicationTrace:
    def test_empty_trace_rejected(self):
        with pytest.raises(ValidationError):
            ApplicationTrace(name="empty", phases=())

    def test_from_pairs_empty_rejected(self):
        with pytest.raises(ValidationError):
            ApplicationTrace.from_pairs("empty", [])

    def test_nonpositive_invocations_rejected(self):
        gemm = workload_by_name("gemm")
        with pytest.raises(ValidationError):
            TracePhase(kernel=gemm, invocations=0)
        with pytest.raises(ValidationError):
            TracePhase(kernel=gemm, invocations=-3)

    def test_single_phase_trace(self):
        gemm = workload_by_name("gemm")
        trace = ApplicationTrace.from_pairs("solo", [(gemm, 1)])
        assert trace.total_invocations == 1
        assert [k.name for k in trace.distinct_kernels()] == ["gemm"]

    def test_from_pairs_roundtrip(self):
        gemm = workload_by_name("gemm")
        trace = ApplicationTrace.from_pairs("t", [(gemm, 5), (gemm, 3)])
        assert trace.total_invocations == 8
        assert len(trace.distinct_kernels()) == 1

    def test_phase_order_preserved(self):
        gemm = workload_by_name("gemm")
        lbm = workload_by_name("lbm")
        trace = ApplicationTrace.from_pairs("t", [(lbm, 1), (gemm, 1)])
        assert [p.kernel.name for p in trace.phases] == ["lbm", "gemm"]


class TestManagedTraceEdgeCases:
    """run_trace on the degenerate traces the accounting must not mangle."""

    def _manager(self, lab, candidates=None):
        spec = lab.spec("GTX Titan X")
        return OnlineDVFSManager(
            model=lab.model("GTX Titan X"),
            session=lab.session("GTX Titan X"),
            policy=StaticPolicy(spec.reference),
            candidate_configs=candidates or [spec.reference],
        )

    def test_single_phase_single_invocation_trace(self, lab):
        """One phase, one launch: the sole invocation is the profiling run
        at the reference, so the report is the baseline itself."""
        gemm = workload_by_name("gemm")
        trace = ApplicationTrace.from_pairs("solo", [(gemm, 1)])
        report = self._manager(lab).run_trace(trace)
        assert len(report.executions) == 1
        only = report.executions[0]
        assert only.profiled
        assert only.invocations == 1
        assert report.total_energy_joules == report.baseline_energy_joules
        assert report.total_time_seconds == report.baseline_time_seconds

    def test_reference_pinned_policy_is_exactly_neutral(self, lab):
        """Chosen config == baseline config: zero saving, unit slowdown,
        bitwise (the two accountings take identical measurement paths)."""
        spec = lab.spec("GTX Titan X")
        gemm = workload_by_name("gemm")
        lbm = workload_by_name("lbm")
        trace = ApplicationTrace.from_pairs("pinned", [(gemm, 4), (lbm, 2)])
        report = self._manager(lab).run_trace(trace)
        for phase_run in report.executions:
            assert phase_run.config == spec.reference
        assert report.energy_saving_fraction == 0.0
        assert report.slowdown == 1.0

    def test_reference_pinned_among_full_candidates(self, lab):
        """The identity holds even when the policy picked the reference out
        of the full candidate grid, not a singleton list."""
        spec = lab.spec("GTX Titan X")
        gemm = workload_by_name("gemm")
        trace = ApplicationTrace.from_pairs("pinned", [(gemm, 3)])
        manager = self._manager(
            lab,
            candidates=list(spec.all_configurations()[:6]) + [spec.reference],
        )
        report = manager.run_trace(trace)
        assert report.chosen_configs()["gemm"] == spec.reference
        assert report.energy_saving_fraction == 0.0
        assert report.slowdown == 1.0
