"""Edge-case tests for trace accounting structures
(:mod:`repro.runtime.trace`)."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.hardware.specs import FrequencyConfig
from repro.runtime.trace import (
    ApplicationTrace,
    PhaseExecution,
    TraceReport,
)
from repro.workloads import workload_by_name


def execution(name="k", energy=10.0, seconds=2.0, profiled=False):
    return PhaseExecution(
        kernel_name=name,
        invocations=1,
        config=FrequencyConfig(975, 3505),
        profiled=profiled,
        energy_joules=energy,
        time_seconds=seconds,
    )


class TestPhaseExecution:
    def test_average_power(self):
        assert execution(energy=10.0, seconds=2.0).average_power_watts == 5.0

    def test_zero_time_average_power(self):
        assert execution(energy=0.0, seconds=0.0).average_power_watts == 0.0


class TestTraceReport:
    def test_rejects_empty_executions(self):
        with pytest.raises(ValidationError):
            TraceReport(
                trace_name="t",
                device_name="d",
                executions=(),
                baseline_energy_joules=1.0,
                baseline_time_seconds=1.0,
            )

    def test_totals(self):
        report = TraceReport(
            trace_name="t",
            device_name="d",
            executions=(execution(energy=10.0), execution(energy=5.0)),
            baseline_energy_joules=20.0,
            baseline_time_seconds=4.0,
        )
        assert report.total_energy_joules == 15.0
        assert report.energy_saving_fraction == pytest.approx(0.25)
        assert report.slowdown == pytest.approx(1.0)

    def test_degenerate_baselines(self):
        report = TraceReport(
            trace_name="t",
            device_name="d",
            executions=(execution(),),
            baseline_energy_joules=0.0,
            baseline_time_seconds=0.0,
        )
        assert report.energy_saving_fraction == 0.0
        assert report.slowdown == 1.0

    def test_chosen_configs_last_wins(self):
        """When a kernel appears in several phases, the last phase's
        configuration is reported — managers may only ever use one, but the
        accounting must not crash on re-plans."""
        a = execution(name="k")
        b = PhaseExecution(
            kernel_name="k",
            invocations=1,
            config=FrequencyConfig(595, 810),
            profiled=False,
            energy_joules=1.0,
            time_seconds=1.0,
        )
        report = TraceReport(
            trace_name="t",
            device_name="d",
            executions=(a, b),
            baseline_energy_joules=1.0,
            baseline_time_seconds=1.0,
        )
        assert report.chosen_configs()["k"] == FrequencyConfig(595, 810)


class TestApplicationTrace:
    def test_from_pairs_roundtrip(self):
        gemm = workload_by_name("gemm")
        trace = ApplicationTrace.from_pairs("t", [(gemm, 5), (gemm, 3)])
        assert trace.total_invocations == 8
        assert len(trace.distinct_kernels()) == 1

    def test_phase_order_preserved(self):
        gemm = workload_by_name("gemm")
        lbm = workload_by_name("lbm")
        trace = ApplicationTrace.from_pairs("t", [(lbm, 1), (gemm, 1)])
        assert [p.kernel.name for p in trace.phases] == ["lbm", "gemm"]
