"""Unit tests for the bottleneck timing model
(:mod:`repro.hardware.performance`)."""

from __future__ import annotations

import pytest

from repro.hardware.components import Component
from repro.hardware.performance import PerformanceModel
from repro.hardware.specs import FrequencyConfig, GTX_TITAN_X
from repro.kernels.kernel import KernelDescriptor, idle_kernel


@pytest.fixture(scope="module")
def model() -> PerformanceModel:
    return PerformanceModel(GTX_TITAN_X)


def sp_kernel(ops: float = 512.0) -> KernelDescriptor:
    return KernelDescriptor(
        name="sp-heavy", threads=4_000_000, sp_ops=ops,
        dram_bytes=8.0, l2_bytes=8.0,
    )


def dram_kernel() -> KernelDescriptor:
    return KernelDescriptor(
        name="dram-heavy", threads=4_000_000, sp_ops=2.0,
        dram_bytes=32.0, l2_bytes=32.0,
    )


class TestServiceTimes:
    def test_compute_service_time(self, model):
        kernel = sp_kernel(ops=512.0)
        times = model.service_times(kernel, GTX_TITAN_X.reference)
        # 512 ops x 4M threads at 128x24 lanes x 975 MHz.
        expected = 512.0 * 4e6 / (128 * 24 * 975e6)
        assert times[Component.SP] == pytest.approx(expected)

    def test_zero_work_zero_time(self, model):
        times = model.service_times(sp_kernel(), GTX_TITAN_X.reference)
        assert times[Component.DP] == 0.0
        assert times[Component.SHARED] == 0.0

    def test_dram_service_time_scales_with_memory_frequency(self, model):
        kernel = dram_kernel()
        ref = model.service_times(kernel, FrequencyConfig(975, 3505))
        low = model.service_times(kernel, FrequencyConfig(975, 810))
        assert low[Component.DRAM] / ref[Component.DRAM] == pytest.approx(
            3505 / 810
        )

    def test_compute_time_independent_of_memory_frequency(self, model):
        kernel = sp_kernel()
        ref = model.service_times(kernel, FrequencyConfig(975, 3505))
        low = model.service_times(kernel, FrequencyConfig(975, 810))
        assert low[Component.SP] == pytest.approx(ref[Component.SP])


class TestElapsedTime:
    def test_elapsed_at_least_bottleneck(self, model):
        kernel = sp_kernel()
        config = GTX_TITAN_X.reference
        bottleneck = max(model.service_times(kernel, config).values())
        assert model.elapsed_seconds(kernel, config) >= bottleneck

    def test_elapsed_decreases_with_core_frequency_for_compute_bound(self, model):
        kernel = sp_kernel()
        slow = model.elapsed_seconds(kernel, FrequencyConfig(595, 3505))
        fast = model.elapsed_seconds(kernel, FrequencyConfig(1164, 3505))
        assert fast < slow

    def test_elapsed_of_memory_bound_barely_reacts_to_core_frequency(self, model):
        kernel = dram_kernel()
        slow = model.elapsed_seconds(kernel, FrequencyConfig(595, 3505))
        fast = model.elapsed_seconds(kernel, FrequencyConfig(1164, 3505))
        assert fast <= slow
        assert (slow - fast) / slow < 0.10  # < 10% sensitivity

    def test_latency_floor_dominates_idle(self, model):
        kernel = idle_kernel(duration_cycles=975e6)  # one second at 975 MHz
        elapsed = model.elapsed_seconds(kernel, GTX_TITAN_X.reference)
        assert elapsed == pytest.approx(1.03, rel=1e-6)  # dispatch overhead

    def test_rejects_invalid_overlap_exponent(self):
        with pytest.raises(ValueError):
            PerformanceModel(GTX_TITAN_X, overlap_exponent=0.5)

    def test_rejects_negative_overhead(self):
        with pytest.raises(ValueError):
            PerformanceModel(GTX_TITAN_X, dispatch_overhead=-0.1)


class TestProfile:
    def test_utilizations_bounded(self, model):
        profile = model.profile(dram_kernel(), GTX_TITAN_X.reference)
        for value in profile.utilizations.values():
            assert 0.0 <= value <= 1.0

    def test_bottleneck_has_highest_utilization(self, model):
        profile = model.profile(dram_kernel(), GTX_TITAN_X.reference)
        assert profile.utilizations[Component.DRAM] == max(
            profile.utilizations.values()
        )

    def test_dram_bound_kernel_saturates_dram(self, model):
        profile = model.profile(dram_kernel(), GTX_TITAN_X.reference)
        assert profile.utilizations[Component.DRAM] > 0.9

    def test_fig2_behaviour_memory_downclock(self, model):
        """Lowering f_mem on a DRAM-heavy kernel: DRAM stays saturated and
        core-side utilizations collapse (BlackScholes in Fig. 2A)."""
        kernel = dram_kernel()
        ref = model.profile(kernel, FrequencyConfig(975, 3505))
        low = model.profile(kernel, FrequencyConfig(975, 810))
        assert low.utilizations[Component.DRAM] >= ref.utilizations[
            Component.DRAM
        ] - 0.05
        assert low.utilizations[Component.SP] < ref.utilizations[Component.SP]

    def test_core_downclock_raises_memory_utilization_of_balanced_kernel(
        self, model
    ):
        kernel = KernelDescriptor(
            name="balanced", threads=4_000_000, sp_ops=100.0,
            dram_bytes=12.0, l2_bytes=12.0,
        )
        ref = model.profile(kernel, FrequencyConfig(975, 3505))
        slow = model.profile(kernel, FrequencyConfig(595, 3505))
        assert slow.utilizations[Component.DRAM] < ref.utilizations[
            Component.DRAM
        ]

    def test_active_cycles(self, model):
        profile = model.profile(sp_kernel(), GTX_TITAN_X.reference)
        assert profile.active_cycles == pytest.approx(
            profile.duration_seconds * 975e6
        )

    def test_issue_activity_bounded(self, model):
        profile = model.profile(sp_kernel(), GTX_TITAN_X.reference)
        assert 0.0 < profile.issue_activity <= 1.0

    def test_idle_issue_activity_is_zero(self, model):
        profile = model.profile(idle_kernel(), GTX_TITAN_X.reference)
        assert profile.issue_activity == 0.0

    def test_profile_snaps_configuration(self, model):
        profile = model.profile(sp_kernel(), FrequencyConfig(975.2, 3505.1))
        assert profile.config == FrequencyConfig(975, 3505)
