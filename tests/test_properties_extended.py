"""Extended property-based tests: serialization, model structure,
time-predictor invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import UtilizationVector
from repro.core.model import (
    DVFSPowerModel,
    ModelParameters,
    VoltageEstimate,
)
from repro.hardware.components import ALL_COMPONENTS, CORE_COMPONENTS, Component
from repro.hardware.specs import FrequencyConfig, GTX_TITAN_X
from repro.serialization import model_from_dict, model_to_dict
from repro.simulator.performance import FrequencyScalingTimePredictor

coefficients = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)
utilization_values = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)


#: Hypothesis/load-generator heavy suite: part of the --runslow tier
#: (CI's coverage job passes --runslow; see CONTRIBUTING.md).
pytestmark = pytest.mark.slow

@st.composite
def random_parameters(draw):
    return ModelParameters(
        beta0=draw(st.floats(min_value=0, max_value=50, allow_nan=False)),
        beta1=draw(st.floats(min_value=0, max_value=0.1, allow_nan=False)),
        beta2=draw(st.floats(min_value=0, max_value=50, allow_nan=False)),
        beta3=draw(st.floats(min_value=0, max_value=0.05, allow_nan=False)),
        omega_core={
            component: draw(
                st.floats(min_value=0, max_value=0.1, allow_nan=False)
            )
            for component in CORE_COMPONENTS
        },
        omega_mem=draw(st.floats(min_value=0, max_value=0.05, allow_nan=False)),
    )


@st.composite
def random_model(draw):
    parameters = draw(random_parameters())
    voltages = {}
    # Monotone voltage curves through the reference anchor.
    cores = sorted(GTX_TITAN_X.core_frequencies_mhz)
    base = draw(st.floats(min_value=0.7, max_value=1.0, allow_nan=False))
    slope = draw(st.floats(min_value=0.0, max_value=4e-4, allow_nan=False))
    for memory in GTX_TITAN_X.memory_frequencies_mhz:
        for core in cores:
            v_core = base + slope * (core - cores[0])
            voltages[FrequencyConfig(core, memory)] = VoltageEstimate(
                v_core=v_core, v_mem=1.0
            )
    return DVFSPowerModel(GTX_TITAN_X, parameters, voltages)


@st.composite
def random_utilizations(draw):
    return UtilizationVector(
        values={
            component: draw(utilization_values)
            for component in ALL_COMPONENTS
        }
    )


class TestSerializationProperties:
    @given(model=random_model(), utilization=random_utilizations())
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_preserves_all_predictions(self, model, utilization):
        clone = model_from_dict(model_to_dict(model))
        for config in (
            GTX_TITAN_X.reference,
            FrequencyConfig(595, 810),
            FrequencyConfig(1164, 4005),
        ):
            assert clone.predict_power(utilization, config) == pytest.approx(
                model.predict_power(utilization, config)
            )

    @given(parameters=random_parameters())
    @settings(max_examples=50, deadline=None)
    def test_parameter_vector_roundtrip(self, parameters):
        assert ModelParameters.from_vector(parameters.as_vector()) == parameters


class TestModelStructureProperties:
    @given(
        model=random_model(),
        utilization=random_utilizations(),
        bump=st.sampled_from(list(ALL_COMPONENTS)),
    )
    @settings(max_examples=40, deadline=None)
    def test_power_monotone_in_each_utilization(self, model, utilization, bump):
        config = GTX_TITAN_X.reference
        base = model.predict_power(utilization, config)
        raised_values = dict(utilization.values)
        raised_values[bump] = min(1.0, raised_values[bump] + 0.3)
        raised = UtilizationVector(values=raised_values)
        assert model.predict_power(raised, config) >= base - 1e-9

    @given(model=random_model(), utilization=random_utilizations())
    @settings(max_examples=40, deadline=None)
    def test_power_monotone_in_core_frequency(self, model, utilization):
        """With monotone voltages, Eq. 6 is monotone in f_core."""
        memory = 3505.0
        watts = [
            model.predict_power(utilization, FrequencyConfig(core, memory))
            for core in sorted(GTX_TITAN_X.core_frequencies_mhz)
        ]
        assert all(b >= a - 1e-9 for a, b in zip(watts, watts[1:]))

    @given(model=random_model(), utilization=random_utilizations())
    @settings(max_examples=40, deadline=None)
    def test_breakdown_sums_to_prediction(self, model, utilization):
        config = FrequencyConfig(785, 3300)
        breakdown = model.predict_breakdown(utilization, config)
        assert breakdown.total_watts == pytest.approx(
            model.predict_power(utilization, config)
        )
        assert breakdown.constant_watts >= 0
        for watts in breakdown.component_watts.values():
            assert watts >= 0


class TestTimePredictorProperties:
    predictor = FrequencyScalingTimePredictor(GTX_TITAN_X)

    @given(
        utilization=random_utilizations(),
        reference_seconds=st.floats(
            min_value=1e-5, max_value=10.0, allow_nan=False
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_time_never_shrinks_when_clocks_drop(
        self, utilization, reference_seconds
    ):
        profile = self.predictor.profile(reference_seconds, utilization)
        fast = self.predictor.predict_seconds(
            profile, FrequencyConfig(1164, 4005)
        )
        slow = self.predictor.predict_seconds(
            profile, FrequencyConfig(595, 810)
        )
        assert slow >= fast * (1 - 1e-12)

    @given(
        utilization=random_utilizations(),
        reference_seconds=st.floats(
            min_value=1e-5, max_value=10.0, allow_nan=False
        ),
        scale=st.floats(min_value=1.5, max_value=10.0, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_prediction_linear_in_reference_time(
        self, utilization, reference_seconds, scale
    ):
        config = FrequencyConfig(785, 3300)
        short = self.predictor.predict_seconds(
            self.predictor.profile(reference_seconds, utilization), config
        )
        long = self.predictor.predict_seconds(
            self.predictor.profile(reference_seconds * scale, utilization),
            config,
        )
        assert long == pytest.approx(short * scale, rel=1e-9)

    @given(utilization=random_utilizations())
    @settings(max_examples=40, deadline=None)
    def test_reference_prediction_bounded_by_overlap_law(self, utilization):
        """At the reference configuration the predicted time is within the
        p-norm overlap envelope: never below the busiest component's share,
        and — for physically consistent profiles, whose overlap mass does
        not exceed 1 — never above the reference time itself."""
        profile = self.predictor.profile(1.0, utilization)
        predicted = self.predictor.predict_seconds(
            profile, GTX_TITAN_X.reference
        )
        busiest = max(utilization[c] for c in ALL_COMPONENTS)
        assert predicted >= busiest - 1e-9
        p = self.predictor.overlap_exponent
        mass = sum(utilization[c] ** p for c in ALL_COMPONENTS)
        if mass <= 1.0:
            # The unattributed slack tops the envelope up to exactly 1.
            assert predicted == pytest.approx(1.0)
        else:
            # Over-committed profiles (only reachable through noise-clipped
            # inputs) predict proportionally above the reference.
            assert predicted == pytest.approx(mass ** (1.0 / p))
