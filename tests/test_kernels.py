"""Unit tests for kernel descriptors and the launch-repetition policy."""

from __future__ import annotations

import pytest

from repro.errors import KernelError
from repro.hardware.components import Component
from repro.kernels.kernel import (
    IDLE_KERNEL_NAME,
    KernelDescriptor,
    idle_kernel,
)
from repro.kernels.launch import repetitions_for_min_duration


def make_kernel(**overrides) -> KernelDescriptor:
    base = dict(
        name="k",
        threads=1024,
        int_ops=10.0,
        sp_ops=20.0,
        dram_bytes=8.0,
        l2_bytes=8.0,
    )
    base.update(overrides)
    return KernelDescriptor(**base)


class TestDescriptorValidation:
    def test_rejects_empty_name(self):
        with pytest.raises(KernelError):
            make_kernel(name="")

    def test_rejects_nonpositive_threads(self):
        with pytest.raises(KernelError):
            make_kernel(threads=0)

    def test_rejects_negative_work(self):
        with pytest.raises(KernelError):
            make_kernel(sp_ops=-1.0)

    def test_rejects_bad_read_fraction(self):
        with pytest.raises(KernelError):
            make_kernel(dram_read_fraction=1.5)


class TestWorkAccounting:
    def test_total_ops(self):
        kernel = make_kernel(sp_ops=20.0, threads=100)
        assert kernel.total_ops(Component.SP) == 2000.0

    def test_total_bytes(self):
        kernel = make_kernel(dram_bytes=8.0, threads=100)
        assert kernel.total_bytes(Component.DRAM) == 800.0

    def test_total_ops_rejects_memory_level(self):
        with pytest.raises(KernelError):
            make_kernel().total_ops(Component.DRAM)

    def test_total_bytes_rejects_compute_unit(self):
        with pytest.raises(KernelError):
            make_kernel().total_bytes(Component.SP)

    def test_component_work_covers_all_components(self):
        work = make_kernel().component_work()
        assert set(work) == set(Component)

    def test_arithmetic_intensity(self):
        kernel = make_kernel(int_ops=10, sp_ops=22, dram_bytes=8)
        assert kernel.arithmetic_intensity == pytest.approx(4.0)

    def test_arithmetic_intensity_no_traffic(self):
        kernel = make_kernel(dram_bytes=0.0)
        assert kernel.arithmetic_intensity == float("inf")


class TestScaling:
    def test_scaled_multiplies_work(self):
        kernel = make_kernel(sp_ops=20.0, dram_bytes=8.0, min_cycles=100.0)
        double = kernel.scaled(2.0)
        assert double.sp_ops == 40.0
        assert double.dram_bytes == 16.0
        assert double.min_cycles == 200.0

    def test_scaled_keeps_threads(self):
        assert make_kernel().scaled(3.0).threads == 1024

    def test_scaled_rejects_nonpositive_factor(self):
        with pytest.raises(KernelError):
            make_kernel().scaled(0.0)

    def test_scaled_can_rename(self):
        assert make_kernel().scaled(2.0, name="big").name == "big"


class TestTagsAndIdentity:
    def test_with_tags_merges(self):
        kernel = make_kernel().with_tags(group="sp").with_tags(step="3")
        assert kernel.tags["group"] == "sp"
        assert kernel.tags["step"] == "3"

    def test_cache_key_ignores_tags(self):
        a = make_kernel().with_tags(group="x")
        b = make_kernel().with_tags(group="y")
        assert a.cache_key == b.cache_key

    def test_cache_key_sees_work_changes(self):
        assert make_kernel().cache_key != make_kernel(sp_ops=21.0).cache_key


class TestIdleKernel:
    def test_idle_has_no_work(self):
        assert idle_kernel().is_idle

    def test_idle_name(self):
        assert idle_kernel().name == IDLE_KERNEL_NAME

    def test_working_kernel_is_not_idle(self):
        assert not make_kernel().is_idle

    def test_idle_still_occupies_cycles(self):
        assert idle_kernel().min_cycles > 0


class TestRepetitionPolicy:
    def test_long_kernel_needs_one_run(self):
        assert repetitions_for_min_duration(2.0) == 1

    def test_short_kernel_repeats_to_one_second(self):
        # Sec. V-A: repeat until >= 1 s at the fastest configuration.
        assert repetitions_for_min_duration(0.001) == 1000

    def test_ceiling_behaviour(self):
        assert repetitions_for_min_duration(0.3) == 4

    def test_custom_minimum(self):
        assert repetitions_for_min_duration(0.5, min_total_seconds=2.0) == 4

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(KernelError):
            repetitions_for_min_duration(0.0)

    def test_rejects_nonpositive_minimum(self):
        with pytest.raises(KernelError):
            repetitions_for_min_duration(1.0, min_total_seconds=0.0)
