"""Unit tests for the validation workloads (Table III,
:mod:`repro.workloads`)."""

from __future__ import annotations

import pytest

from repro.config import NOISELESS_SETTINGS
from repro.errors import ValidationError
from repro.hardware.components import ALL_COMPONENTS, Component
from repro.hardware.gpu import SimulatedGPU
from repro.hardware.specs import GTX_TITAN_X, TITAN_XP
from repro.workloads import (
    all_workloads,
    kernel_from_utilizations,
    workload_by_name,
    workloads_of_suite,
)
from repro.workloads.cuda_sdk import MATRIXMUL_SIZE_PROFILES, matrixmul_cublas
from repro.workloads.registry import (
    APPLICATION_COUNT,
    VALIDATION_WORKLOADS,
    WORKLOAD_COUNT,
)


class TestRegistry:
    def test_workload_count(self):
        assert len(all_workloads()) == WORKLOAD_COUNT == 27

    def test_application_count_matches_table_iii(self):
        assert APPLICATION_COUNT == 26

    def test_suite_partition(self):
        # Table III: 10 Rodinia apps (11 kernels with K-Means twice),
        # 2 Parboil, 11 Polybench, 3 CUDA SDK.
        assert len(workloads_of_suite("rodinia")) == 11
        assert len(workloads_of_suite("parboil")) == 2
        assert len(workloads_of_suite("polybench")) == 11
        assert len(workloads_of_suite("cuda_sdk")) == 3

    def test_names_unique(self):
        names = [k.name for k in all_workloads()]
        assert len(set(names)) == len(names)
        assert set(names) == set(VALIDATION_WORKLOADS)

    def test_workload_by_name(self):
        assert workload_by_name("blackscholes").suite == "cuda_sdk"

    def test_workload_by_name_unknown(self):
        with pytest.raises(ValidationError):
            workload_by_name("doom")

    def test_unknown_suite_rejected(self):
        with pytest.raises(ValidationError):
            workloads_of_suite("spec2006")

    def test_workloads_never_overlap_microbenchmarks(self):
        """The bias-free validation property: no kernel of the training
        suite shares a name with a validation workload."""
        from repro.microbench import build_suite

        training = {k.name for k in build_suite()}
        validation = {k.name for k in all_workloads()}
        assert not training & validation


class TestProfileAnchors:
    @pytest.fixture(scope="class")
    def quiet_gpu_module(self):
        return SimulatedGPU(GTX_TITAN_X, settings=NOISELESS_SETTINGS)

    def test_blackscholes_fig2_utilizations(self, quiet_gpu_module):
        result = quiet_gpu_module.run(workload_by_name("blackscholes"))
        utilization = result.profile.utilizations
        # Fig. 2A annotations: SP 0.47, INT 0.19, L2 0.25, DRAM 0.85.
        assert utilization[Component.SP] == pytest.approx(0.47, abs=0.03)
        assert utilization[Component.INT] == pytest.approx(0.19, abs=0.03)
        assert utilization[Component.L2] == pytest.approx(0.25, abs=0.03)
        assert utilization[Component.DRAM] == pytest.approx(0.85, abs=0.03)

    def test_cutcp_is_shared_memory_heavy(self, quiet_gpu_module):
        result = quiet_gpu_module.run(workload_by_name("cutcp"))
        utilization = result.profile.utilizations
        assert utilization[Component.SHARED] > 0.35
        assert utilization[Component.DRAM] < 0.15

    def test_syrk_double_uses_dp(self, quiet_gpu_module):
        result = quiet_gpu_module.run(workload_by_name("syrk_double"))
        assert result.profile.utilizations[Component.DP] > 0.4

    def test_profiles_diverse(self, quiet_gpu_module):
        """Sec. V-B: the validation set presents 'large differences in the
        utilization levels of the different GPU components'."""
        dram = [
            quiet_gpu_module.run(k).profile.utilizations[Component.DRAM]
            for k in all_workloads()
        ]
        assert max(dram) - min(dram) > 0.6


class TestMatrixMulSizes:
    def test_three_sizes(self):
        assert set(MATRIXMUL_SIZE_PROFILES) == {64, 512, 4096}

    def test_unknown_size_rejected(self):
        with pytest.raises(KeyError):
            matrixmul_cublas(1024, GTX_TITAN_X)

    def test_utilizations_grow_with_size(self):
        gpu = SimulatedGPU(GTX_TITAN_X, settings=NOISELESS_SETTINGS)
        sp = [
            gpu.run(
                matrixmul_cublas(size, GTX_TITAN_X)
            ).profile.utilizations[Component.SP]
            for size in (64, 512, 4096)
        ]
        assert sp[0] < sp[1] < sp[2]

    def test_threads_scale_with_size(self):
        small = matrixmul_cublas(64, GTX_TITAN_X)
        large = matrixmul_cublas(4096, GTX_TITAN_X)
        assert large.threads > small.threads


class TestKernelFromUtilizations:
    def test_inversion_reproduces_profile(self):
        targets = {
            Component.SP: 0.55, Component.SHARED: 0.30,
            Component.L2: 0.20, Component.DRAM: 0.40,
        }
        kernel = kernel_from_utilizations("probe", targets, GTX_TITAN_X)
        gpu = SimulatedGPU(GTX_TITAN_X, settings=NOISELESS_SETTINGS)
        achieved = gpu.run(kernel).profile.utilizations
        for component, value in targets.items():
            assert achieved[component] == pytest.approx(value, abs=0.03)

    def test_inversion_hits_requested_duration(self):
        kernel = kernel_from_utilizations(
            "probe", {Component.SP: 0.5}, GTX_TITAN_X,
            duration_seconds=1.0e-3,
        )
        gpu = SimulatedGPU(GTX_TITAN_X, settings=NOISELESS_SETTINGS)
        assert gpu.run(kernel).duration_seconds == pytest.approx(
            1.0e-3, rel=0.05
        )

    def test_saturated_profile_drops_floor(self):
        kernel = kernel_from_utilizations(
            "hot", {Component.SP: 0.99}, GTX_TITAN_X
        )
        assert kernel.min_cycles == 0.0

    def test_rejects_out_of_range_utilization(self):
        with pytest.raises(ValidationError):
            kernel_from_utilizations("bad", {Component.SP: 1.5}, GTX_TITAN_X)

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ValidationError):
            kernel_from_utilizations(
                "bad", {Component.SP: 0.5}, GTX_TITAN_X, duration_seconds=0.0
            )

    def test_profiles_transfer_across_devices(self):
        """A workload built against the Titan X still runs (with shifted
        utilizations) on the Titan Xp — as real binaries do."""
        kernel = workload_by_name("gemm")
        gpu = SimulatedGPU(TITAN_XP, settings=NOISELESS_SETTINGS)
        result = gpu.run(kernel)
        assert result.true_power_watts > 0
        assert any(
            result.profile.utilizations[c] > 0.05 for c in ALL_COMPONENTS
        )
