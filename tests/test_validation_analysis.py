"""Unit tests for the validation machinery
(:mod:`repro.analysis.validation`)."""

from __future__ import annotations

import pytest

from repro.analysis.validation import (
    PredictionRecord,
    ValidationResult,
    validate_model,
)
from repro.errors import ValidationError
from repro.hardware.specs import FrequencyConfig


def record(workload, core, memory, measured, predicted) -> PredictionRecord:
    return PredictionRecord(
        workload=workload,
        config=FrequencyConfig(core, memory),
        measured_watts=measured,
        predicted_watts=predicted,
    )


@pytest.fixture()
def result() -> ValidationResult:
    return ValidationResult(
        device_name="GTX Titan X",
        records=(
            record("a", 975, 3505, 100.0, 110.0),   # +10%
            record("a", 975, 810, 50.0, 45.0),      # -10%
            record("b", 975, 3505, 200.0, 200.0),   # 0%
            record("b", 975, 810, 80.0, 96.0),      # +20%
        ),
    )


class TestPredictionRecord:
    def test_signed_error(self):
        r = record("x", 975, 3505, 100.0, 90.0)
        assert r.error_fraction == pytest.approx(-0.10)

    def test_absolute_error_percent(self):
        r = record("x", 975, 3505, 100.0, 90.0)
        assert r.absolute_error_percent == pytest.approx(10.0)


class TestValidationResult:
    def test_mean_absolute_error(self, result):
        assert result.mean_absolute_error_percent == pytest.approx(10.0)

    def test_max_absolute_error(self, result):
        assert result.max_absolute_error_percent == pytest.approx(20.0)

    def test_power_range(self, result):
        assert result.power_range_watts() == (50.0, 200.0)

    def test_error_by_workload(self, result):
        errors = result.error_by_workload()
        assert errors["a"] == pytest.approx(10.0)
        assert errors["b"] == pytest.approx(10.0)

    def test_error_by_memory_frequency(self, result):
        errors = result.error_by_memory_frequency()
        assert errors[3505.0] == pytest.approx(5.0)
        assert errors[810.0] == pytest.approx(15.0)

    def test_signed_error_by_workload(self, result):
        signed = result.signed_error_by_workload()
        assert signed["a"] == pytest.approx(0.0)
        assert signed["b"] == pytest.approx(10.0)

    def test_restricted_to_memory_frequency(self, result):
        subset = result.restricted_to_memory_frequency(810.0)
        assert len(subset.records) == 2
        assert subset.mean_absolute_error_percent == pytest.approx(15.0)

    def test_error_by_configuration(self, result):
        errors = result.error_by_configuration()
        assert errors[(975.0, 3505.0)] == pytest.approx(5.0)

    def test_empty_records_rejected(self):
        with pytest.raises(ValidationError):
            ValidationResult(device_name="x", records=())


class TestValidateModel:
    class _ConstantModel:
        def predict_power(self, utilizations, config):
            return 120.0

    def test_rejects_empty_workloads(self, titanx_session):
        with pytest.raises(ValidationError):
            validate_model(self._ConstantModel(), titanx_session, [])

    def test_sweep_shape(self, titanx_session):
        from repro.workloads import workload_by_name

        result = validate_model(
            self._ConstantModel(),
            titanx_session,
            [workload_by_name("gemm")],
            configs=[
                FrequencyConfig(975, 3505),
                FrequencyConfig(595, 810),
            ],
        )
        assert len(result.records) == 2
        assert result.device_name == "GTX Titan X"
        assert all(r.predicted_watts == 120.0 for r in result.records)
