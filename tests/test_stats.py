"""Tests for the bootstrap statistics (:mod:`repro.analysis.stats`)."""

from __future__ import annotations

import pytest

from repro.analysis.stats import (
    ConfidenceInterval,
    bootstrap_mae_interval,
    paired_comparison,
)
from repro.analysis.validation import PredictionRecord, ValidationResult
from repro.errors import ValidationError
from repro.hardware.specs import FrequencyConfig


def make_result(errors_by_workload, device="GTX Titan X") -> ValidationResult:
    """Build a synthetic sweep: one record per (workload, error) pair."""
    records = []
    for workload, errors in errors_by_workload.items():
        for index, error in enumerate(errors):
            measured = 100.0
            records.append(
                PredictionRecord(
                    workload=workload,
                    config=FrequencyConfig(595 + 38 * (index % 16), 3505),
                    measured_watts=measured,
                    predicted_watts=measured * (1 + error / 100.0),
                )
            )
    return ValidationResult(device_name=device, records=tuple(records))


class TestConfidenceInterval:
    def test_contains(self):
        interval = ConfidenceInterval(5.0, 4.0, 6.0, 0.95)
        assert interval.contains(5.5)
        assert not interval.contains(7.0)
        assert interval.width == pytest.approx(2.0)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValidationError):
            ConfidenceInterval(5.0, 6.0, 4.0, 0.95)


class TestBootstrapMAE:
    def test_interval_brackets_point_estimate(self):
        result = make_result(
            {f"w{i}": [3.0 + 0.5 * i, 4.0 + 0.5 * i] for i in range(10)}
        )
        interval = bootstrap_mae_interval(result, resamples=500)
        assert interval.lower <= interval.point <= interval.upper

    def test_deterministic(self):
        result = make_result({f"w{i}": [5.0, 6.0] for i in range(6)})
        a = bootstrap_mae_interval(result, resamples=300)
        b = bootstrap_mae_interval(result, resamples=300)
        assert (a.lower, a.upper) == (b.lower, b.upper)

    def test_homogeneous_errors_give_tight_interval(self):
        result = make_result({f"w{i}": [5.0, 5.0, 5.0] for i in range(8)})
        interval = bootstrap_mae_interval(result, resamples=300)
        assert interval.width < 1e-9

    def test_heterogeneous_errors_widen_interval(self):
        tight = bootstrap_mae_interval(
            make_result({f"w{i}": [5.0] for i in range(8)}), resamples=300
        )
        wide = bootstrap_mae_interval(
            make_result(
                {f"w{i}": [1.0 if i % 2 else 12.0] for i in range(8)}
            ),
            resamples=300,
        )
        assert wide.width > tight.width

    def test_needs_two_workloads(self):
        with pytest.raises(ValidationError):
            bootstrap_mae_interval(
                make_result({"only": [5.0, 6.0]}), resamples=300
            )

    def test_rejects_bad_confidence(self):
        result = make_result({f"w{i}": [5.0] for i in range(4)})
        with pytest.raises(ValidationError):
            bootstrap_mae_interval(result, confidence=1.5)

    def test_rejects_too_few_resamples(self):
        result = make_result({f"w{i}": [5.0] for i in range(4)})
        with pytest.raises(ValidationError):
            bootstrap_mae_interval(result, resamples=10)


class TestPairedComparison:
    def test_clearly_better_model_is_significant(self):
        better = make_result({f"w{i}": [2.0, 2.5] for i in range(10)})
        worse = make_result({f"w{i}": [8.0, 9.0] for i in range(10)})
        comparison = paired_comparison(
            better, worse, "better", "worse", resamples=300
        )
        assert comparison.first_is_significantly_better
        assert not comparison.second_is_significantly_better
        assert comparison.first_wins_fraction == 1.0

    def test_identical_models_not_significant(self):
        a = make_result({f"w{i}": [4.0, 5.0] for i in range(10)})
        b = make_result({f"w{i}": [4.0, 5.0] for i in range(10)})
        comparison = paired_comparison(a, b, resamples=300)
        assert not comparison.first_is_significantly_better
        assert not comparison.second_is_significantly_better
        assert comparison.mean_difference.point == pytest.approx(0.0)

    def test_rejects_mismatched_sweeps(self):
        a = make_result({f"w{i}": [4.0] for i in range(4)})
        b = make_result({f"w{i}": [4.0, 5.0] for i in range(4)})
        with pytest.raises(ValidationError):
            paired_comparison(a, b)


class TestOnRealValidation:
    def test_interval_on_fitted_model(self, lab):
        result = lab.validation("GTX Titan X")
        interval = bootstrap_mae_interval(result, resamples=300)
        # The paper-band MAE with a non-degenerate but informative interval.
        assert interval.contains(result.mean_absolute_error_percent)
        assert 0.1 < interval.width < 4.0

    def test_proposed_vs_fixed_config_is_significant(self, lab):
        from repro.analysis.validation import validate_model
        from repro.core.baselines import FixedConfigurationModel

        device = "GTX Titan X"
        baseline = FixedConfigurationModel(lab.spec(device)).fit(
            lab.dataset(device)
        )
        baseline_result = validate_model(
            baseline, lab.session(device), lab.workloads(device)
        )
        comparison = paired_comparison(
            lab.validation(device),
            baseline_result,
            "proposed",
            "fixed",
            resamples=300,
        )
        assert comparison.first_is_significantly_better
