"""Differential harness for the sharded campaign executor (ISSUE 5).

The contract under test: :func:`repro.parallel.collect_campaign_sharded`
must produce a :class:`~repro.core.dataset.TrainingDataset` **and** a
:class:`~repro.core.dataset.CampaignReport` that compare ``==`` (dataclass
field equality — floats bitwise, not approximately) against the serial
:func:`~repro.core.dataset.collect_campaign`, for

* all three Table-II device specs,
* worker counts 1, 2 and 4,
* chaos off and on (an active transient :class:`~repro.driver.faults.FaultPlan`),
* any shard size,

plus hypothesis properties of the grid partition (shards are a disjoint
cover, the merge is invariant under shard permutation), crash recovery
(a dying worker degrades into the report's quality flags instead of
aborting), and deterministic telemetry merging (the absorbed trace is a
pure function of the workload, not of the worker count).

The matrix runs on a reduced (kernels x configs) tier so the whole file
stays in tier-1 time; ``--runslow`` adds the full-suite, full-grid sweep.
Because the reduced tier sits below the adaptive planner's
``FALLBACK_MIN_CELLS`` threshold (ISSUE 6), every sharded call here pins
``fallback="never"`` — the point is to exercise the sharded executor, not
the small-grid serial fallback (which has its own tests in
``test_parallel_transport.py``).
"""

from __future__ import annotations

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MASTER_SEED
from repro.core.dataset import collect_campaign, collect_training_dataset
from repro.driver.faults import FaultPlan
from repro.driver.session import ProfilingSession
from repro.errors import ValidationError
from repro.hardware.gpu import SimulatedGPU
from repro.hardware.specs import GTX_TITAN_X, TESLA_K40C, TITAN_XP
from repro.microbench import build_suite
from repro.parallel import (
    DeviceSpec,
    collect_campaign_sharded,
    covered_cells,
    measure_shard,
    merge_measurements,
    partition_grid,
    partition_kernel_rows,
)
from repro.parallel.executor import _shard_groups
from repro.telemetry import TraceRecorder

SPECS = {
    "Titan Xp": TITAN_XP,
    "GTX Titan X": GTX_TITAN_X,
    "Tesla K40c": TESLA_K40C,
}
CHAOS_RATE = 0.05
#: Reduced tier: enough kernels to span several shards and chunk
#: boundaries, enough configs to exercise the grid path.
TIER_KERNELS = 10
TIER_CONFIGS = 8


def tier_kernels():
    return build_suite()[:TIER_KERNELS]


def tier_configs(spec):
    """Reference + a stride through the rest of the grid."""
    configs = spec.all_configurations()
    chosen = [spec.reference]
    stride = max(1, len(configs) // TIER_CONFIGS)
    for config in configs[::stride]:
        if config != spec.reference and len(chosen) < TIER_CONFIGS:
            chosen.append(config)
    return tuple(chosen)


def make_session(spec, chaos: bool, recorder=None) -> ProfilingSession:
    fault_plan = (
        FaultPlan.transient(CHAOS_RATE, seed=MASTER_SEED) if chaos else None
    )
    if recorder is None:
        gpu = SimulatedGPU(spec, fault_plan=fault_plan)
    else:
        gpu = SimulatedGPU(spec, fault_plan=fault_plan, recorder=recorder)
    return ProfilingSession(gpu)


@pytest.fixture(scope="module")
def serial_results():
    """Serial campaign per (device, chaos), computed once for the module."""
    cache = {}

    def result_for(device_name: str, chaos: bool):
        key = (device_name, chaos)
        if key not in cache:
            spec = SPECS[device_name]
            session = make_session(spec, chaos)
            cache[key] = collect_campaign(
                session, tier_kernels(), tier_configs(spec)
            )
        return cache[key]

    return result_for


# ----------------------------------------------------------------------
# The differential matrix: 3 devices x workers {1, 2, 4} x chaos on/off
# ----------------------------------------------------------------------
@pytest.mark.parametrize("device_name", sorted(SPECS))
@pytest.mark.parametrize("workers", [1, 2, 4])
@pytest.mark.parametrize("chaos", [False, True], ids=["clean", "chaos"])
class TestShardedEqualsSerial:
    def test_dataset_and_report_bitwise_equal(
        self, serial_results, device_name, workers, chaos
    ):
        spec = SPECS[device_name]
        serial_dataset, serial_report = serial_results(device_name, chaos)
        session = make_session(spec, chaos)
        dataset, report = collect_campaign(
            session,
            tier_kernels(),
            tier_configs(spec),
            workers=workers,
            fallback="never",
        )
        # Dataclass == compares every float bitwise: rows, utilizations,
        # quality flags, fault tallies and the virtual backoff total.
        assert dataset == serial_dataset
        assert report == serial_report


@pytest.mark.parametrize("shard_size", [1, 7, 1000])
def test_shard_size_never_changes_the_dataset(serial_results, shard_size):
    serial_dataset, serial_report = serial_results("GTX Titan X", True)
    session = make_session(GTX_TITAN_X, True)
    dataset, report = collect_campaign(
        session,
        tier_kernels(),
        tier_configs(GTX_TITAN_X),
        workers=2,
        shard_size=shard_size,
        fallback="never",
    )
    assert dataset == serial_dataset
    assert report == serial_report


def test_collect_training_dataset_threads_workers(serial_results):
    serial_dataset, _ = serial_results("Tesla K40c", False)
    session = make_session(TESLA_K40C, False)
    dataset = collect_training_dataset(
        session,
        tier_kernels(),
        tier_configs(TESLA_K40C),
        workers=2,
        fallback="never",
    )
    assert dataset == serial_dataset


@pytest.mark.slow
def test_full_grid_full_suite_equivalence():
    """The non-reduced tier: every kernel x the whole V-F grid."""
    serial = collect_campaign(
        make_session(GTX_TITAN_X, True), build_suite()
    )
    sharded = collect_campaign(
        make_session(GTX_TITAN_X, True), build_suite(), workers=4
    )
    assert sharded[0] == serial[0]
    assert sharded[1] == serial[1]


# ----------------------------------------------------------------------
# Partition properties
# ----------------------------------------------------------------------
class TestPartitionProperties:
    @given(
        n_kernels=st.integers(min_value=0, max_value=40),
        n_configs=st.integers(min_value=0, max_value=40),
        shard_size=st.integers(min_value=1, max_value=120),
    )
    @settings(max_examples=200, deadline=None)
    def test_shards_are_a_disjoint_cover(
        self, n_kernels, n_configs, shard_size
    ):
        shards = partition_grid(n_kernels, n_configs, shard_size)
        cells = [cell for shard in shards for cell in shard.cells]
        # Disjoint: no cell appears twice. Cover: every grid cell appears.
        assert len(cells) == len(set(cells)) == n_kernels * n_configs
        assert set(covered_cells(shards)) == {
            (k, c) for k in range(n_kernels) for c in range(n_configs)
        }

    @given(
        n_kernels=st.integers(min_value=1, max_value=40),
        n_configs=st.integers(min_value=1, max_value=40),
        shard_size=st.integers(min_value=1, max_value=120),
    )
    @settings(max_examples=200, deadline=None)
    def test_shards_are_contiguous_and_indexed(
        self, n_kernels, n_configs, shard_size
    ):
        shards = partition_grid(n_kernels, n_configs, shard_size)
        assert [shard.index for shard in shards] == list(range(len(shards)))
        # Every shard but the last is exactly shard_size cells; the
        # flattened order is kernel-major.
        flattened = [cell for shard in shards for cell in shard.cells]
        assert flattened == [
            (k, c) for k in range(n_kernels) for c in range(n_configs)
        ]
        for shard in shards[:-1]:
            assert len(shard) == shard_size

    def test_partition_rejects_bad_arguments(self):
        with pytest.raises(ValidationError):
            partition_grid(-1, 4)
        with pytest.raises(ValidationError):
            partition_grid(4, -1)
        with pytest.raises(ValidationError):
            partition_grid(4, 4, 0)


# ----------------------------------------------------------------------
# Merge properties
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def shard_results():
    """Real per-shard results of a small chaos campaign, run in-process."""
    spec = TESLA_K40C
    kernels = tier_kernels()
    configs = tier_configs(spec)
    session = make_session(spec, True)
    device = DeviceSpec.from_session(session)
    # Phase 1, serially: utilizations per kernel.
    from repro.core.metrics import MetricCalculator

    calculator = MetricCalculator(spec)
    utilization_by_kernel = {
        kernel.name: calculator.utilizations(session.collect_events(kernel))
        for kernel in kernels
    }
    shards = partition_grid(len(kernels), len(configs), 7)
    results = [
        measure_shard(
            device, shard.index, _shard_groups(shard, kernels, configs)
        )
        for shard in shards
    ]
    return kernels, configs, utilization_by_kernel, results


class TestMergeProperties:
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_merge_is_invariant_under_shard_permutation(
        self, shard_results, seed
    ):
        import random

        kernels, configs, utilizations, results = shard_results
        baseline = merge_measurements(
            kernels,
            configs,
            utilizations,
            {cell: m for result in results for cell, m in result.measurements},
        )
        order = list(results)
        random.Random(seed).shuffle(order)
        cell_measurements = {}
        for result in order:
            cell_measurements.update(dict(result.measurements))
        merged = merge_measurements(
            kernels, configs, utilizations, cell_measurements
        )
        assert merged == baseline

    def test_merge_requires_full_cover(self, shard_results):
        kernels, configs, utilizations, results = shard_results
        cell_measurements = {
            cell: m for result in results for cell, m in result.measurements
        }
        cell_measurements.pop((0, 0))
        with pytest.raises(ValidationError, match="missing cell"):
            merge_measurements(
                kernels, configs, utilizations, cell_measurements
            )

    def test_crashed_cells_become_skips_not_errors(self, shard_results):
        kernels, configs, utilizations, results = shard_results
        cell_measurements = {
            cell: m for result in results for cell, m in result.measurements
        }
        crashed = {(0, 0), (0, 1)}
        rows, skipped = merge_measurements(
            kernels, configs, utilizations, cell_measurements, crashed
        )
        full_rows, full_skipped = merge_measurements(
            kernels, configs, utilizations, cell_measurements
        )
        assert {(name, config) for name, config in skipped} >= {
            (kernels[0].name, configs[0]),
            (kernels[0].name, configs[1]),
        }
        assert len(skipped) == len(full_skipped) + len(
            crashed
        ) - sum(
            1
            for name, config in full_skipped
            if name == kernels[0].name and config in configs[:2]
        )
        # Surviving rows are untouched, bitwise.
        crashed_keys = {(kernels[0].name, configs[0]), (kernels[0].name, configs[1])}
        expected = [
            row
            for row in full_rows
            if (row.kernel_name, row.config) not in crashed_keys
        ]
        assert list(rows) == expected


# ----------------------------------------------------------------------
# Crash recovery
# ----------------------------------------------------------------------
class TestCrashRecovery:
    def test_failed_shard_degrades_into_report_flags(self, serial_results):
        spec = TESLA_K40C
        serial_dataset, serial_report = serial_results("Tesla K40c", False)
        session = make_session(spec, False)
        configs = tier_configs(spec)
        dataset, report = collect_campaign_sharded(
            session,
            tier_kernels(),
            configs,
            workers=2,
            shard_size=7,
            fail_shards={1},
        )
        assert not report.complete
        # Columnar shards are whole kernel rows: shard_size=7 with 8
        # configs rounds down to one kernel per shard, so shard 1 is
        # exactly kernel #1's row and its crash skips that kernel's
        # every config.
        shards = partition_kernel_rows(
            TIER_KERNELS, max(1, 7 // len(configs))
        )
        crashed_kernels = [
            tier_kernels()[k]
            for k in range(
                shards[1].kernel_start,
                shards[1].kernel_start + shards[1].kernel_count,
            )
        ]
        crashed_names = {kernel.name for kernel in crashed_kernels}
        assert len(report.skipped_cells) == len(crashed_kernels) * len(
            configs
        )
        assert {name for name, _ in report.skipped_cells} == crashed_names
        # ...and every surviving row is bitwise identical to its serial twin.
        serial_rows = {
            (row.kernel_name, row.config): row for row in serial_dataset.rows
        }
        assert len(dataset.rows) == len(serial_dataset.rows) - len(
            report.skipped_cells
        )
        for row in dataset.rows:
            assert row.kernel_name not in crashed_names
            assert row == serial_rows[(row.kernel_name, row.config)]

    def test_every_shard_failing_raises(self):
        spec = TESLA_K40C
        session = make_session(spec, False)
        shards = partition_grid(
            TIER_KERNELS, len(tier_configs(spec)), len(tier_configs(spec))
        )
        with pytest.raises(ValidationError, match="no usable rows"):
            collect_campaign_sharded(
                session,
                tier_kernels(),
                tier_configs(spec),
                workers=2,
                shard_size=len(tier_configs(spec)),
                fail_shards=set(range(len(shards))),
            )

    def test_worker_validation(self):
        session = make_session(TESLA_K40C, False)
        with pytest.raises(ValidationError):
            collect_campaign_sharded(
                session, tier_kernels(), tier_configs(TESLA_K40C), workers=0
            )
        with pytest.raises(ValidationError):
            collect_campaign_sharded(session, [], workers=2)
        with pytest.raises(ValidationError, match="grid path"):
            collect_campaign(
                session, tier_kernels(), use_grid=False, workers=2
            )


# ----------------------------------------------------------------------
# Telemetry determinism
# ----------------------------------------------------------------------
def _normalized_trace(recorder):
    """Finished spans as comparable tuples, minus the campaign's honest
    ``workers`` annotation (the one field allowed to vary with the pool)."""
    spans = []
    for span in recorder.finished_spans():
        attributes = dict(span.attributes)
        if span.name == "campaign":
            attributes.pop("workers", None)
        spans.append(
            (
                span.span_id,
                span.parent_id,
                span.name,
                span.start_tick,
                span.end_tick,
                tuple(sorted((k, repr(v)) for k, v in attributes.items())),
            )
        )
    return spans


#: Counters whose values legitimately differ between the serial campaign
#: and the sharded one: workers rebuild boards per task (run cache), and
#: the virtual-backoff counter is a float running sum (grouping-sensitive
#: in the last bits; the *report's* backoff_seconds is exact because the
#: executor replays the global sleep sequence).
_NON_PORTABLE_COUNTERS = ("run.cache_hits", "run.cache_misses", "backoff.")


def _portable_counters(recorder):
    return {
        name: value
        for name, value in recorder.counters().items()
        if not name.startswith(_NON_PORTABLE_COUNTERS)
    }


class TestTelemetryMerge:
    def _traced_campaign(self, workers):
        recorder = TraceRecorder()
        session = make_session(GTX_TITAN_X, True, recorder=recorder)
        collect_campaign(
            session,
            tier_kernels(),
            tier_configs(GTX_TITAN_X),
            workers=workers,
            fallback="never",
        )
        assert recorder.open_spans == 0
        return recorder

    def test_merged_trace_is_worker_count_invariant(self):
        traces = {w: self._traced_campaign(w) for w in (1, 2, 4)}
        reference = _normalized_trace(traces[1])
        assert _normalized_trace(traces[2]) == reference
        assert _normalized_trace(traces[4]) == reference
        assert traces[2].counters() == traces[1].counters()
        assert traces[4].counters() == traces[1].counters()

    def test_sharded_counters_match_serial(self):
        serial = self._traced_campaign(0)
        sharded = self._traced_campaign(2)
        assert _portable_counters(sharded) == _portable_counters(serial)
        # The load-bearing campaign counters, by name:
        for counter in ("rows.collected", "faults.injected"):
            assert sharded.counters()[counter] == serial.counters()[counter]


# ----------------------------------------------------------------------
# DeviceSpec round-trip
# ----------------------------------------------------------------------
class TestDeviceSpec:
    def test_session_round_trip_preserves_measurements(self):
        session = make_session(TITAN_XP, True)
        device = session.device_spec()
        rebuilt = device.build_session()
        kernel = tier_kernels()[0]
        config = tier_configs(TITAN_XP)[1]
        assert rebuilt.gpu.spec == session.gpu.spec
        assert rebuilt.settings == session.settings
        assert rebuilt.fault_plan == session.fault_plan
        assert rebuilt.measure_power(kernel, config) == session.measure_power(
            kernel, config
        )

    def test_pickle_round_trip(self):
        import pickle

        session = make_session(GTX_TITAN_X, True)
        device = DeviceSpec.from_session(session)
        clone = pickle.loads(pickle.dumps(device))
        assert clone == device
        rebuilt = clone.build_session()
        kernel = tier_kernels()[2]
        assert rebuilt.measure_power(kernel) == session.measure_power(kernel)

    def test_telemetry_flag_builds_live_recorder(self):
        recorder = TraceRecorder()
        session = make_session(TESLA_K40C, False, recorder=recorder)
        device = DeviceSpec.from_session(session)
        assert device.telemetry
        rebuilt = device.build_session()
        assert rebuilt.recorder.enabled
        quiet = DeviceSpec.from_session(make_session(TESLA_K40C, False))
        assert not quiet.telemetry
        assert not quiet.build_session().recorder.enabled
