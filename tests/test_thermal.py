"""Unit tests for the TDP throttling policy (:mod:`repro.hardware.thermal`)."""

from __future__ import annotations

import pytest

from repro.hardware.specs import FrequencyConfig, GTX_TITAN_X
from repro.hardware.thermal import TDPPolicy


class TestTDPPolicy:
    def test_no_throttle_under_limit(self):
        policy = TDPPolicy(GTX_TITAN_X)
        decision = policy.apply(
            FrequencyConfig(1164, 3505), power_at=lambda config: 200.0
        )
        assert not decision.throttled
        assert decision.applied == FrequencyConfig(1164, 3505)

    def test_throttles_one_level(self):
        """The Fig. 9 footnote: 1164 MHz exceeds TDP, 1126 MHz does not."""
        policy = TDPPolicy(GTX_TITAN_X)

        def power_at(config: FrequencyConfig) -> float:
            return 260.0 if config.core_mhz > 1130 else 240.0

        decision = policy.apply(FrequencyConfig(1164, 3505), power_at)
        assert decision.throttled
        assert decision.applied == FrequencyConfig(1126, 3505)
        assert decision.requested == FrequencyConfig(1164, 3505)

    def test_throttles_multiple_levels(self):
        policy = TDPPolicy(GTX_TITAN_X)

        def power_at(config: FrequencyConfig) -> float:
            return 200.0 + config.core_mhz / 10.0  # > 250 above ~500 MHz... no:
            # 200 + 1164/10 = 316 at the top, 200 + 59.5 = 259.5 at the bottom.

        decision = policy.apply(FrequencyConfig(1164, 3505), power_at)
        # Power never fits: the policy must stop at the lowest level.
        assert decision.applied.core_mhz == min(
            GTX_TITAN_X.core_frequencies_mhz
        )

    def test_memory_frequency_never_touched(self):
        policy = TDPPolicy(GTX_TITAN_X)

        def power_at(config: FrequencyConfig) -> float:
            return 260.0 if config.core_mhz > 1000 else 100.0

        decision = policy.apply(FrequencyConfig(1164, 810), power_at)
        assert decision.applied.memory_mhz == 810

    def test_disabled_policy_is_identity(self):
        policy = TDPPolicy(GTX_TITAN_X, enabled=False)
        decision = policy.apply(
            FrequencyConfig(1164, 3505), power_at=lambda config: 1000.0
        )
        assert not decision.throttled

    def test_requested_configuration_is_snapped(self):
        policy = TDPPolicy(GTX_TITAN_X)
        decision = policy.apply(
            FrequencyConfig(1164.2, 3505.3), power_at=lambda config: 10.0
        )
        assert decision.requested == FrequencyConfig(1164, 3505)
