"""Unit tests for :class:`repro.hardware.gpu.SimulatedGPU`."""

from __future__ import annotations

import pytest

from repro.errors import FrequencyError
from repro.hardware.components import Domain
from repro.hardware.gpu import SimulatedGPU
from repro.hardware.specs import FrequencyConfig, GTX_TITAN_X
from repro.kernels.kernel import idle_kernel
from repro.workloads import workload_by_name
from repro.workloads.cuda_sdk import matrixmul_cublas


@pytest.fixture(scope="module")
def gpu() -> SimulatedGPU:
    return SimulatedGPU(GTX_TITAN_X)


class TestExecution:
    def test_default_config_is_reference(self, gpu):
        result = gpu.run(workload_by_name("gemm"))
        assert result.applied_config == GTX_TITAN_X.reference

    def test_run_rejects_unknown_config(self, gpu):
        with pytest.raises(FrequencyError):
            gpu.run(workload_by_name("gemm"), FrequencyConfig(1000, 3505))

    def test_run_is_deterministic(self, gpu):
        kernel = workload_by_name("gemm")
        a = gpu.run(kernel, FrequencyConfig(785, 3300))
        b = gpu.run(kernel, FrequencyConfig(785, 3300))
        assert a.true_power_watts == b.true_power_watts
        assert a.duration_seconds == b.duration_seconds

    def test_run_cache_returns_same_object(self, gpu):
        kernel = workload_by_name("gemm")
        a = gpu.run(kernel, FrequencyConfig(785, 3300))
        b = gpu.run(kernel, FrequencyConfig(785, 3300))
        assert a is b

    def test_result_reports_requested_and_applied(self, gpu):
        kernel = matrixmul_cublas(4096, GTX_TITAN_X)
        result = gpu.run(kernel, FrequencyConfig(1164, 3505))
        assert result.requested_config == FrequencyConfig(1164, 3505)
        assert result.applied_config == FrequencyConfig(1126, 3505)
        assert result.throttled

    def test_throttling_can_be_disabled(self):
        gpu = SimulatedGPU(GTX_TITAN_X, tdp_throttling=False)
        kernel = matrixmul_cublas(4096, GTX_TITAN_X)
        result = gpu.run(kernel, FrequencyConfig(1164, 3505))
        assert not result.throttled
        assert result.true_power_watts > GTX_TITAN_X.tdp_watts

    def test_throttled_power_respects_tdp(self, gpu):
        kernel = matrixmul_cublas(4096, GTX_TITAN_X)
        result = gpu.run(kernel, FrequencyConfig(1164, 3505))
        assert result.true_power_watts <= GTX_TITAN_X.tdp_watts


class TestIdleAndDebug:
    def test_idle_power_positive(self, gpu):
        assert gpu.idle_power_watts() > 0

    def test_idle_power_drops_with_memory_frequency(self, gpu):
        high = gpu.idle_power_watts(FrequencyConfig(975, 3505))
        low = gpu.idle_power_watts(FrequencyConfig(975, 810))
        assert low < high

    def test_debug_true_voltage_matches_table(self, gpu):
        config = FrequencyConfig(1164, 3505)
        assert gpu.debug_true_voltage(Domain.CORE, config) == pytest.approx(
            gpu.voltage_table.core_voltage(config)
        )

    def test_debug_breakdown_matches_run(self, gpu):
        kernel = workload_by_name("gemm")
        breakdown = gpu.debug_true_breakdown(kernel)
        assert breakdown.total_watts == pytest.approx(
            gpu.run(kernel).true_power_watts
        )

    def test_noise_profile_matches_architecture(self, gpu):
        from repro.hardware.noise import NOISE_PROFILES

        assert gpu.noise_profile == NOISE_PROFILES["Maxwell"]

    def test_idle_kernel_never_throttles(self, gpu):
        result = gpu.run(idle_kernel(), FrequencyConfig(1164, 4005))
        assert not result.throttled
