"""Differential fleet-equivalence harness (:mod:`repro.serving.fleet`).

The headline contract of ISSUE 7: an N-worker fleet's responses are
**bitwise equal** to the single-process :class:`PredictionEngine` on the
same request stream — for N in {1, 2, 4}, with and without the per-worker
cache, for scalar-watts and full-grid responses, through the shared-memory
artifact path and the inline-bytes path alike.

Degradation is covered from both directions: a worker killed mid-stream
(cooperative ``os._exit`` sentinel and raw SIGKILL) must be detected, its
outstanding chunks rerouted to survivors, and the answers stay bitwise
identical; only a fleet with *no* survivors raises
:class:`~repro.errors.FleetBrokenError`. Every crash scenario also asserts
``/dev/shm`` hygiene — the parent-owned artifact segment is unlinked no
matter how the workers die (mirroring the ``BrokenProcessPool`` checks in
``test_parallel_transport.py``).
"""

from __future__ import annotations

import json
import os
import queue as queuelib
import threading
import time

import numpy as np
import pytest

from repro.errors import (
    FleetBrokenError,
    FleetError,
    RegistryError,
    ServingError,
)
from repro.hardware.components import ALL_COMPONENTS
from repro.serving.cache import (
    PredictionCache,
    dequantize_matrix,
    quantize_matrix,
)
from repro.serving.engine import PredictionEngine
from repro.serving.fleet import (
    FleetConfig,
    PredictionFleet,
    _answer_chunk,
    _fleet_worker_main,
    _load_engine,
)
from repro.serving.registry import ModelRegistry
from repro.telemetry import TraceRecorder

N_COMPONENTS = len(ALL_COMPONENTS)


def _shm_segments():
    return {name for name in os.listdir("/dev/shm") if name.startswith("psm_")}


@pytest.fixture(scope="module")
def k40c_model(lab):
    return lab.model("Tesla K40c")


@pytest.fixture()
def registry(tmp_path, k40c_model):
    registry = ModelRegistry(tmp_path / "registry")
    registry.publish(k40c_model)
    return registry


@pytest.fixture(scope="module")
def stream():
    """A seeded request stream with repeats (cache-friendly) and noise."""
    rng = np.random.default_rng(1807)
    base = rng.uniform(0.0, 1.0, size=(12, N_COMPONENTS))
    picks = rng.integers(0, len(base), size=400)
    matrix = base[picks].copy()
    jitter = rng.integers(0, 2, size=400).astype(bool)
    matrix[jitter] = np.clip(
        matrix[jitter] + rng.uniform(-5e-3, 5e-3, size=(jitter.sum(), N_COMPONENTS)),
        0.0,
        1.0,
    )
    return matrix


def reference_answers(registry, matrix):
    """The single-process ground truth the fleet must match bit for bit."""
    model, record = registry.load("tesla-k40c")
    engine = PredictionEngine(model)
    grids = engine.predict_batch(dequantize_matrix(quantize_matrix(matrix)))
    watts = grids[:, engine.config_index(engine.spec.reference)]
    return engine, watts, grids


# ----------------------------------------------------------------------
# The differential harness
# ----------------------------------------------------------------------
class TestFleetEquivalence:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("cache_enabled", [True, False])
    def test_fleet_matches_engine_bitwise(
        self, registry, stream, workers, cache_enabled
    ):
        _, watts, grids = reference_answers(registry, stream)
        config = FleetConfig(
            workers=workers, chunk_rows=32, cache_enabled=cache_enabled
        )
        with PredictionFleet(registry, "tesla-k40c", config) as fleet:
            got_watts = fleet.predict_stream(stream)
            got_grids = fleet.predict_stream(stream, grid=True)
            # A second pass (warm per-worker caches) must not change a bit.
            rerun = fleet.predict_stream(stream)
        assert got_watts.tobytes() == watts.tobytes()
        assert got_grids.tobytes() == grids.tobytes()
        assert rerun.tobytes() == watts.tobytes()

    def test_inline_bytes_transport_is_equivalent(self, registry, stream):
        _, watts, _ = reference_answers(registry, stream)
        config = FleetConfig(
            workers=2, chunk_rows=32, artifact_transport="bytes"
        )
        with PredictionFleet(registry, "tesla-k40c", config) as fleet:
            assert fleet.predict_stream(stream).tobytes() == watts.tobytes()

    def test_chunk_width_never_changes_answers(self, registry, stream):
        _, watts, _ = reference_answers(registry, stream)
        outputs = []
        for chunk_rows in (7, 64, 1024):
            config = FleetConfig(workers=2, chunk_rows=chunk_rows)
            with PredictionFleet(registry, "tesla-k40c", config) as fleet:
                outputs.append(fleet.predict_stream(stream).tobytes())
        assert all(out == watts.tobytes() for out in outputs)


# ----------------------------------------------------------------------
# The worker compute kernel, in-process
# ----------------------------------------------------------------------
class TestAnswerChunk:
    def test_cache_assembly_is_bitwise_neutral(self, registry, stream):
        engine, _, grids = reference_answers(registry, stream)
        record = registry.latest("tesla-k40c")
        cache = PredictionCache(capacity=4096)
        cached = _answer_chunk(
            engine, cache, record.version_key, cache.quantum, "grid", stream
        )
        warm = _answer_chunk(
            engine, cache, record.version_key, cache.quantum, "grid", stream
        )
        uncached = _answer_chunk(
            engine, None, record.version_key, cache.quantum, "grid", stream
        )
        assert cached.tobytes() == uncached.tobytes() == grids.tobytes()
        # The warm pass is all hits — and still the same bytes.
        assert warm.tobytes() == grids.tobytes()
        assert cache.stats().hits == len(stream)

    def test_duplicate_rows_within_one_chunk_compute_once(self, registry):
        engine, _, _ = reference_answers(
            registry, np.zeros((1, N_COMPONENTS))
        )
        record = registry.latest("tesla-k40c")
        cache = PredictionCache()
        chunk = np.tile(np.full((1, N_COMPONENTS), 0.25), (6, 1))
        result = _answer_chunk(
            engine, cache, record.version_key, cache.quantum, "watts", chunk
        )
        assert len(set(result.tolist())) == 1
        assert cache.stats().misses == 6  # six lookups...
        assert len(cache) == 1  # ...but one computed entry

    def test_unknown_mode_rejected(self, registry, stream):
        engine, _, _ = reference_answers(registry, stream)
        with pytest.raises(ServingError, match="unknown chunk mode"):
            _answer_chunk(engine, None, "k", 1e-6, "median", stream)


# ----------------------------------------------------------------------
# The worker main loop, driven in a thread (coverage without a fork)
# ----------------------------------------------------------------------
class TestWorkerLoop:
    def _payload(self, registry):
        record = registry.latest("tesla-k40c")
        return record, record.path.read_bytes()

    def test_loop_answers_chunks_until_stopped(self, registry, stream):
        record, payload = self._payload(registry)
        _, watts, _ = reference_answers(registry, stream)
        requests, responses = queuelib.Queue(), queuelib.Queue()
        worker = threading.Thread(
            target=_fleet_worker_main,
            args=(
                0,
                payload,
                None,
                record.sha256,
                record.version_key,
                FleetConfig(workers=1),
                requests,
                responses,
            ),
        )
        worker.start()
        try:
            kind, index, grid_size = responses.get(timeout=5.0)
            assert (kind, index) == ("ready", 0)
            chunk = stream[:50]
            requests.put(("chunk", 7, "watts", 50, chunk.tobytes()))
            kind, chunk_id, index, answer = responses.get(timeout=5.0)
            assert (kind, chunk_id, index) == ("ok", 7, 0)
            assert answer == watts[:50].tobytes()
            # A malformed chunk reports an error but keeps the loop alive.
            requests.put(("chunk", 8, "watts", 3, b"not-a-matrix"))
            kind, chunk_id, index, message = responses.get(timeout=5.0)
            assert (kind, chunk_id, index) == ("error", 8, 0)
        finally:
            requests.put(None)
            worker.join(timeout=5.0)
        assert not worker.is_alive()

    def test_tampered_artifact_reports_failed(self, registry):
        record, payload = self._payload(registry)
        requests, responses = queuelib.Queue(), queuelib.Queue()
        _fleet_worker_main(
            3,
            payload + b" ",
            None,
            record.sha256,
            record.version_key,
            FleetConfig(workers=1),
            requests,
            responses,
        )
        kind, index, message = responses.get_nowait()
        assert (kind, index) == ("failed", 3)
        assert "does not match" in message

    def test_load_engine_verifies_hash(self, registry, k40c_model):
        record, payload = self._payload(registry)
        engine = _load_engine(payload, record.sha256)
        assert engine.grid_size == len(k40c_model.known_configurations())
        with pytest.raises(RegistryError, match="does not match"):
            _load_engine(payload + b"x", record.sha256)


# ----------------------------------------------------------------------
# Crash degradation + /dev/shm hygiene
# ----------------------------------------------------------------------
class TestCrashDegradation:
    def test_cooperative_crash_mid_stream_reroutes(self, registry, stream):
        _, watts, _ = reference_answers(registry, stream)
        before = _shm_segments()
        recorder = TraceRecorder()
        config = FleetConfig(
            workers=2, chunk_rows=16, artifact_transport="shm"
        )
        with PredictionFleet(
            registry, "tesla-k40c", config, recorder=recorder
        ) as fleet:
            # The crash message sits at the head of worker 0's queue, so
            # it dies after dispatch but before answering anything.
            fleet.inject_crash(0)
            report = fleet.run_stream(stream)
            assert fleet.workers_alive == 1
        assert report.values.tobytes() == watts.tobytes()
        assert report.worker_deaths == 1
        assert report.reroutes >= 1
        assert recorder.counter("fleet.worker_deaths") == 1
        assert recorder.counter("fleet.reroutes") == report.reroutes
        assert _shm_segments() == before

    def test_sigkill_mid_stream_reroutes(self, registry, stream):
        _, watts, _ = reference_answers(registry, stream)
        before = _shm_segments()
        config = FleetConfig(
            workers=4, chunk_rows=16, artifact_transport="shm"
        )
        with PredictionFleet(registry, "tesla-k40c", config) as fleet:
            fleet.kill_worker(2)
            report = fleet.run_stream(stream)
            assert fleet.workers_alive == 3
            assert fleet.worker_deaths == 1
        assert report.values.tobytes() == watts.tobytes()
        assert _shm_segments() == before

    def test_all_workers_dead_raises_fleet_broken(self, registry, stream):
        before = _shm_segments()
        config = FleetConfig(workers=2, artifact_transport="shm")
        with PredictionFleet(registry, "tesla-k40c", config) as fleet:
            fleet.kill_worker(0)
            fleet.kill_worker(1)
            with pytest.raises(FleetBrokenError, match="all 2"):
                fleet.run_stream(stream)
        assert _shm_segments() == before

    def test_last_worker_dying_mid_stream_raises(self, registry, stream):
        before = _shm_segments()
        config = FleetConfig(
            workers=1, chunk_rows=16, artifact_transport="shm"
        )
        with PredictionFleet(registry, "tesla-k40c", config) as fleet:
            fleet.inject_crash(0)
            with pytest.raises(FleetBrokenError):
                fleet.run_stream(stream)
        assert _shm_segments() == before

    def test_stop_after_sigkill_everything_leaves_no_segments(
        self, registry
    ):
        before = _shm_segments()
        config = FleetConfig(workers=2, artifact_transport="shm")
        fleet = PredictionFleet(registry, "tesla-k40c", config)
        fleet.start()
        assert _shm_segments() != before  # the artifact segment is live
        fleet.kill_worker(0)
        fleet.kill_worker(1)
        fleet.stop()
        fleet.stop()  # idempotent
        assert _shm_segments() == before

    def test_corrupt_artifact_fails_start_without_leaking(
        self, registry
    ):
        record = registry.latest("tesla-k40c")
        record.path.write_bytes(b'{"tampered": true}')
        before = _shm_segments()
        fleet = PredictionFleet(registry, "tesla-k40c", FleetConfig(workers=2))
        with pytest.raises(RegistryError, match="corrupt"):
            fleet.start()
        assert not fleet.running
        assert _shm_segments() == before


# ----------------------------------------------------------------------
# Lifecycle, validation, telemetry
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_stream_requires_running_fleet(self, registry, stream):
        fleet = PredictionFleet(registry, "tesla-k40c")
        with pytest.raises(FleetError, match="not running"):
            fleet.run_stream(stream)
        with pytest.raises(FleetError, match="not been started"):
            fleet.record
        with pytest.raises(FleetError, match="not been started"):
            fleet.grid_size

    def test_double_start_rejected(self, registry):
        with PredictionFleet(registry, "tesla-k40c") as fleet:
            with pytest.raises(FleetError, match="already running"):
                fleet.start()

    def test_bad_streams_rejected(self, registry):
        with PredictionFleet(
            registry, "tesla-k40c", FleetConfig(workers=1)
        ) as fleet:
            with pytest.raises(ServingError, match="must be"):
                fleet.run_stream(np.zeros((3, 2)))
            with pytest.raises(ServingError, match="non-empty"):
                fleet.run_stream(np.zeros((0, N_COMPONENTS)))

    def test_unknown_model_fails_start(self, tmp_path):
        registry = ModelRegistry(tmp_path / "empty")
        with pytest.raises(RegistryError, match="unknown model"):
            PredictionFleet(registry, "nope").start()

    @pytest.mark.parametrize(
        "overrides, match",
        [
            (dict(workers=0), "at least one worker"),
            (dict(chunk_rows=0), "chunk_rows"),
            (dict(cache_capacity=0), "cache_capacity"),
            (dict(utilization_quantum=0.0), "quantum"),
            (dict(progress_timeout_seconds=0.0), "progress_timeout"),
            (dict(poll_interval_seconds=0.0), "poll_interval"),
            (dict(artifact_transport="carrier-pigeon"), "transport"),
        ],
    )
    def test_config_validation(self, overrides, match):
        with pytest.raises(ServingError, match=match):
            FleetConfig(**overrides)

    def test_telemetry_counters_and_report_shape(self, registry, stream):
        recorder = TraceRecorder()
        config = FleetConfig(workers=2, chunk_rows=50)
        with PredictionFleet(
            registry, "tesla-k40c", config, recorder=recorder
        ) as fleet:
            report = fleet.run_stream(stream)
        assert report.requests == len(stream)
        assert report.chunk_count == 8  # ceil(400 / 50)
        assert report.throughput_rps > 0
        assert len(report.request_latencies_ms) == len(stream)
        assert (report.request_latencies_ms >= 0).all()
        assert recorder.counter("fleet.requests") == len(stream)
        assert recorder.counter("fleet.chunks") == 8
        assert recorder.counter("fleet.responses") == 8
        assert recorder.counter("fleet.worker_deaths") == 0
