"""Unit tests for :mod:`repro.core.model` (Eq. 5-7 predictions)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.metrics import UtilizationVector
from repro.core.model import (
    DVFSPowerModel,
    ModelParameters,
    VoltageEstimate,
)
from repro.errors import EstimationError, NotFittedError
from repro.hardware.components import ALL_COMPONENTS, CORE_COMPONENTS, Component
from repro.hardware.specs import FrequencyConfig, GTX_TITAN_X


def make_parameters(**overrides) -> ModelParameters:
    base = dict(
        beta0=22.0,
        beta1=0.030,
        beta2=8.0,
        beta3=0.010,
        omega_core={
            Component.INT: 0.030, Component.SP: 0.045, Component.DP: 0.020,
            Component.SF: 0.028, Component.SHARED: 0.036, Component.L2: 0.022,
        },
        omega_mem=0.024,
    )
    base.update(overrides)
    return ModelParameters(**base)


def make_utilizations(**values) -> UtilizationVector:
    full = {component: 0.0 for component in ALL_COMPONENTS}
    for name, value in values.items():
        full[Component[name.upper()]] = value
    return UtilizationVector(values=full)


def make_model(voltages=None) -> DVFSPowerModel:
    if voltages is None:
        voltages = {
            config: VoltageEstimate(1.0, 1.0)
            for config in GTX_TITAN_X.all_configurations()
        }
    return DVFSPowerModel(GTX_TITAN_X, make_parameters(), voltages)


class TestModelParameters:
    def test_vector_roundtrip(self):
        parameters = make_parameters()
        recovered = ModelParameters.from_vector(parameters.as_vector())
        assert recovered == parameters

    def test_vector_layout(self):
        vector = make_parameters().as_vector()
        assert vector[0] == 22.0  # beta0
        assert vector[1] == 0.030  # beta1
        assert vector[-1] == 0.024  # omega_mem
        assert len(vector) == 5 + len(CORE_COMPONENTS)

    def test_rejects_negative_beta(self):
        with pytest.raises(EstimationError):
            make_parameters(beta0=-1.0)

    def test_rejects_missing_omega(self):
        with pytest.raises(EstimationError):
            make_parameters(omega_core={Component.INT: 0.01})

    def test_from_vector_rejects_bad_shape(self):
        with pytest.raises(EstimationError):
            ModelParameters.from_vector(np.ones(3))


class TestPrediction:
    def test_eq6_eq7_by_hand(self):
        """One configuration computed with pencil and paper."""
        model = make_model()
        utilization = make_utilizations(sp=0.5, dram=0.8)
        config = FrequencyConfig(975, 3505)
        p = model.parameters
        expected = (
            p.beta0
            + 975 * (p.beta1 + p.omega_core[Component.SP] * 0.5)
            + p.beta2
            + 3505 * (p.beta3 + p.omega_mem * 0.8)
        )
        assert model.predict_power(utilization, config) == pytest.approx(
            expected
        )

    def test_voltage_squared_scaling(self):
        voltages = {
            config: VoltageEstimate(1.0, 1.0)
            for config in GTX_TITAN_X.all_configurations()
        }
        key_config = FrequencyConfig(1164, 3505)
        voltages[key_config] = VoltageEstimate(1.1, 1.0)
        model = make_model(voltages)
        utilization = make_utilizations(sp=1.0)
        p = model.parameters
        expected = (
            p.beta0 * 1.1
            + 1.1**2 * 1164 * (p.beta1 + p.omega_core[Component.SP])
            + p.beta2
            + 3505 * p.beta3
        )
        assert model.predict_power(utilization, key_config) == pytest.approx(
            expected
        )

    def test_power_monotone_in_utilization(self):
        model = make_model()
        config = GTX_TITAN_X.reference
        low = model.predict_power(make_utilizations(sp=0.2), config)
        high = model.predict_power(make_utilizations(sp=0.9), config)
        assert high > low

    def test_breakdown_sums_to_total(self):
        model = make_model()
        utilization = make_utilizations(sp=0.4, l2=0.3, dram=0.6)
        config = GTX_TITAN_X.reference
        breakdown = model.predict_breakdown(utilization, config)
        assert breakdown.total_watts == pytest.approx(
            model.predict_power(utilization, config)
        )
        assert breakdown.constant_watts > 0

    def test_zero_utilization_gives_constant_only(self):
        model = make_model()
        breakdown = model.predict_breakdown(
            make_utilizations(), GTX_TITAN_X.reference
        )
        assert breakdown.dynamic_watts == 0.0

    def test_predict_grid_covers_all_configurations(self):
        model = make_model()
        grid = model.predict_grid(make_utilizations(sp=0.5))
        assert len(grid) == 64  # 16 core x 4 memory levels


class TestVoltageLookup:
    def test_known_configuration(self):
        model = make_model()
        estimate = model.voltage_at(GTX_TITAN_X.reference)
        assert estimate.v_core == 1.0

    def test_unknown_configuration_without_extrapolation(self):
        voltages = {GTX_TITAN_X.reference: VoltageEstimate(1.0, 1.0)}
        model = make_model(voltages)
        with pytest.raises(NotFittedError):
            model.voltage_at(FrequencyConfig(595, 810), extrapolate=False)

    def test_interpolation_between_known_levels(self):
        voltages = {
            FrequencyConfig(595, 3505): VoltageEstimate(0.9, 1.0),
            FrequencyConfig(1164, 3505): VoltageEstimate(1.1, 1.0),
            FrequencyConfig(975, 3505): VoltageEstimate(1.0, 1.0),
        }
        model = make_model(voltages)
        estimate = model.voltage_at(FrequencyConfig(785, 3505))
        assert 0.9 < estimate.v_core < 1.0

    def test_interpolation_clamps_at_edges(self):
        voltages = {
            FrequencyConfig(785, 3505): VoltageEstimate(0.95, 1.0),
            FrequencyConfig(975, 3505): VoltageEstimate(1.0, 1.0),
        }
        model = make_model(voltages)
        estimate = model.voltage_at(FrequencyConfig(595, 3505))
        assert estimate.v_core == pytest.approx(0.95)

    def test_core_voltage_curve_extraction(self):
        model = make_model()
        curve = model.core_voltage_curve(3505)
        assert len(curve) == 16
        assert list(curve) == sorted(curve)

    def test_core_voltage_curve_unknown_memory(self):
        model = make_model()
        with pytest.raises(NotFittedError):
            model.core_voltage_curve(1234)

    def test_empty_voltages_rejected(self):
        with pytest.raises(NotFittedError):
            DVFSPowerModel(GTX_TITAN_X, make_parameters(), {})

    def test_rejects_nonpositive_voltage(self):
        with pytest.raises(EstimationError):
            VoltageEstimate(0.0, 1.0)
