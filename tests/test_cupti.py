"""Unit tests for the CUPTI-like event collection (:mod:`repro.driver.cupti`)."""

from __future__ import annotations

import pytest

from repro.config import NOISELESS_SETTINGS
from repro.driver.cupti import CuptiContext
from repro.errors import UnknownEventError
from repro.hardware.gpu import SimulatedGPU
from repro.hardware.specs import FrequencyConfig, GTX_TITAN_X, TESLA_K40C
from repro.units import SECTOR_BYTES
from repro.workloads import workload_by_name


@pytest.fixture(scope="module")
def quiet_cupti() -> CuptiContext:
    return CuptiContext(SimulatedGPU(GTX_TITAN_X, settings=NOISELESS_SETTINGS))


class TestEventRecord:
    def test_contains_all_table_events(self, quiet_cupti):
        record = quiet_cupti.collect_events(workload_by_name("gemm"))
        expected = quiet_cupti.event_table.all_event_names()
        assert expected == set(record.values)

    def test_value_of_unknown_event_raises(self, quiet_cupti):
        record = quiet_cupti.collect_events(workload_by_name("gemm"))
        with pytest.raises(UnknownEventError):
            record.value("nonexistent_event")

    def test_total_aggregates_subpartitions(self, quiet_cupti):
        record = quiet_cupti.collect_events(workload_by_name("gemm"))
        table = quiet_cupti.event_table
        total = record.total(table.dram_read_sectors)
        parts = [record.value(name) for name in table.dram_read_sectors]
        assert total == pytest.approx(sum(parts))

    def test_defaults_to_reference_configuration(self, quiet_cupti):
        record = quiet_cupti.collect_events(workload_by_name("gemm"))
        assert record.config == GTX_TITAN_X.reference


class TestSemanticConsistency:
    """Noise-free events must encode the ground-truth activity exactly."""

    def test_dram_sectors_match_traffic(self, quiet_cupti):
        kernel = workload_by_name("gemm")
        record = quiet_cupti.collect_events(kernel)
        table = quiet_cupti.event_table
        sectors = record.total(table.dram_read_sectors) + record.total(
            table.dram_write_sectors
        )
        assert sectors * SECTOR_BYTES == pytest.approx(
            kernel.dram_bytes * kernel.threads, rel=1e-9
        )

    def test_read_fraction_respected(self, quiet_cupti):
        kernel = workload_by_name("gemm")  # dram_read_fraction = 0.6
        record = quiet_cupti.collect_events(kernel)
        table = quiet_cupti.event_table
        reads = record.total(table.dram_read_sectors)
        writes = record.total(table.dram_write_sectors)
        assert reads / (reads + writes) == pytest.approx(
            kernel.dram_read_fraction
        )

    def test_instruction_counts_match_ops(self, quiet_cupti):
        kernel = workload_by_name("gemm")
        record = quiet_cupti.collect_events(kernel)
        table = quiet_cupti.event_table
        inst_sp = record.total(table.inst_sp)
        assert inst_sp * GTX_TITAN_X.warp_size == pytest.approx(
            kernel.sp_ops * kernel.threads, rel=1e-9
        )

    def test_active_cycles_match_duration(self, quiet_cupti):
        kernel = workload_by_name("gemm")
        record = quiet_cupti.collect_events(kernel)
        cycles = record.total(quiet_cupti.event_table.active_cycles)
        assert cycles == pytest.approx(
            record.elapsed_seconds * 975e6, rel=1e-9
        )

    def test_events_independent_of_noise_only_in_quiet_mode(self):
        noisy = CuptiContext(SimulatedGPU(GTX_TITAN_X))
        quiet = CuptiContext(SimulatedGPU(GTX_TITAN_X, settings=NOISELESS_SETTINGS))
        kernel = workload_by_name("gemm")
        noisy_record = noisy.collect_events(kernel)
        quiet_record = quiet.collect_events(kernel)
        different = [
            name
            for name in quiet_record.values
            if abs(noisy_record.value(name) - quiet_record.value(name)) > 1e-9
        ]
        assert different  # counter noise must actually distort something

    def test_counter_noise_is_systematic(self):
        context = CuptiContext(SimulatedGPU(GTX_TITAN_X))
        kernel = workload_by_name("gemm")
        a = context.collect_events(kernel)
        b = context.collect_events(kernel)
        for name, value in a.values.items():
            assert value == pytest.approx(b.value(name))


class TestKeplerCollection:
    def test_kepler_spreads_sp_int_over_four_events(self):
        context = CuptiContext(
            SimulatedGPU(TESLA_K40C, settings=NOISELESS_SETTINGS)
        )
        record = context.collect_events(workload_by_name("gemm"))
        names = context.event_table.warps_sp_int
        assert len(names) == 4
        values = [record.value(name) for name in names]
        assert all(v == pytest.approx(values[0]) for v in values)

    def test_collection_at_non_reference_config(self, quiet_cupti):
        record = quiet_cupti.collect_events(
            workload_by_name("gemm"), FrequencyConfig(595, 810)
        )
        assert record.config == FrequencyConfig(595, 810)
