"""Mutation-style estimator invariant tests (ISSUE 5, satellite).

Each test *deliberately corrupts* an intermediate of the Sec. III-D
alternating algorithm — per-configuration voltages that violate the
Eq. 12 monotonicity constraint, a parameter vector with a negative
hardware weight smuggled past the frozen-dataclass validation — verifies
the corruption is observable (the mutation is not a no-op), and then
asserts the constrained step that consumes the intermediate repairs it:

* :meth:`ModelEstimator._enforce_monotonicity` projects any voltage
  array back onto "non-decreasing in the domain's own frequency, with
  the reference pinned at V = 1";
* :meth:`ModelEstimator._fit_parameters` (non-negative least squares)
  refits a fully non-negative parameter vector from scratch, making
  every per-component power contribution non-negative again.

These guard the estimator's physical-plausibility contract the way a
mutation-testing harness would: if someone weakens the projection or
swaps NNLS for an unconstrained solver, the corrupted inputs stop being
repaired and the suite fails.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.estimation import ModelEstimator
from repro.core.dataset import collect_training_dataset
from repro.core.model import CORE_COMPONENTS, ModelParameters
from repro.driver.session import ProfilingSession
from repro.errors import EstimationError
from repro.hardware.gpu import SimulatedGPU
from repro.hardware.specs import GTX_TITAN_X
from repro.microbench import build_suite


def _quick_configs(spec, count=8):
    configs = spec.all_configurations()
    chosen = [spec.reference]
    stride = max(1, len(configs) // count)
    for config in configs[::stride]:
        if config != spec.reference and len(chosen) < count:
            chosen.append(config)
    return chosen


@pytest.fixture(scope="module")
def estimator():
    session = ProfilingSession(SimulatedGPU(GTX_TITAN_X))
    dataset = collect_training_dataset(
        session, build_suite()[:16], _quick_configs(GTX_TITAN_X)
    )
    return ModelEstimator(dataset)


def _monotone_per_group(values, own_freq, other_freq, tolerance=1e-6):
    """True iff ``values`` is non-decreasing in ``own_freq`` within every
    fixed ``other_freq`` group.

    ``tolerance`` matches the projection's contract: the reference pin
    enters the isotonic solve with a large-but-finite weight (1e6), so
    re-imposing V = 1 exactly afterwards can leave residuals of ~1e-7
    around the reference — physically irrelevant, but present.
    """
    for other in np.unique(other_freq):
        group = np.where(other_freq == other)[0]
        ordered = values[group[np.argsort(own_freq[group])]]
        if np.any(np.diff(ordered) < -tolerance):
            return False
    return True


class TestVoltageProjection:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_perturbed_voltages_are_repaired(self, estimator, seed):
        configs = estimator._configs
        cores = np.asarray([c.core_mhz for c in configs])
        memories = np.asarray([c.memory_mhz for c in configs])
        rng = np.random.default_rng(seed)
        v_core = 1.0 + 0.3 * rng.standard_normal(len(configs))
        v_mem = 1.0 + 0.3 * rng.standard_normal(len(configs))
        # The voltage sweep never moves the reference (Eq. 5), so the
        # projection's precondition is V[reference] == 1; the mutation
        # corrupts every *other* configuration.
        v_core[estimator._reference_index] = 1.0
        v_mem[estimator._reference_index] = 1.0

        # The mutation must be observable: with this perturbation scale at
        # least one domain violates monotonicity before the projection.
        assert not (
            _monotone_per_group(v_core, cores, memories)
            and _monotone_per_group(v_mem, memories, cores)
        )

        fixed_core, fixed_mem = estimator._enforce_monotonicity(
            v_core.copy(), v_mem.copy()
        )
        assert _monotone_per_group(fixed_core, cores, memories)
        assert _monotone_per_group(fixed_mem, memories, cores)
        # Eq. 5: the reference configuration is pinned at V = 1 exactly.
        assert fixed_core[estimator._reference_index] == 1.0
        assert fixed_mem[estimator._reference_index] == 1.0

    def test_projection_is_idempotent(self, estimator):
        rng = np.random.default_rng(7)
        v_core = 1.0 + 0.2 * rng.standard_normal(len(estimator._configs))
        v_mem = 1.0 + 0.2 * rng.standard_normal(len(estimator._configs))
        v_core[estimator._reference_index] = 1.0
        v_mem[estimator._reference_index] = 1.0
        once = estimator._enforce_monotonicity(v_core.copy(), v_mem.copy())
        twice = estimator._enforce_monotonicity(
            once[0].copy(), once[1].copy()
        )
        np.testing.assert_allclose(twice[0], once[0], atol=1e-6)
        np.testing.assert_allclose(twice[1], once[1], atol=1e-6)


def _corrupt_parameters(parameters: ModelParameters) -> ModelParameters:
    """A parameter set with a negative component weight, smuggled past the
    frozen dataclass's ``__post_init__`` validation (which would —
    correctly — refuse to construct it)."""
    corrupted = object.__new__(ModelParameters)
    for field in ("beta0", "beta1", "beta2", "beta3", "omega_mem"):
        object.__setattr__(corrupted, field, getattr(parameters, field))
    omega = dict(parameters.omega_core)
    victim = CORE_COMPONENTS[0]
    omega[victim] = -(abs(omega[victim]) + 25.0)
    object.__setattr__(corrupted, "omega_core", omega)
    return corrupted


class TestNonNegativeRefit:
    def test_validation_rejects_negative_omega_normally(self, estimator):
        parameters = estimator._fit_parameters(
            np.ones(len(estimator._configs)),
            np.ones(len(estimator._configs)),
        )
        with pytest.raises(EstimationError, match="must be >= 0"):
            ModelParameters(
                beta0=parameters.beta0,
                beta1=parameters.beta1,
                beta2=parameters.beta2,
                beta3=parameters.beta3,
                omega_core={
                    component: (-1.0 if i == 0 else value)
                    for i, (component, value) in enumerate(
                        parameters.omega_core.items()
                    )
                },
                omega_mem=parameters.omega_mem,
            )

    def test_refit_restores_non_negative_powers(self, estimator):
        n = len(estimator._configs)
        v_core = np.ones(n)
        v_mem = np.ones(n)
        clean = estimator._fit_parameters(v_core, v_mem)
        corrupted = _corrupt_parameters(clean)

        # The corruption is observable: some prediction goes negative
        # (a physically impossible per-row power).
        corrupted_prediction = estimator._predict(corrupted, v_core, v_mem)
        assert np.min(corrupted_prediction) < 0

        # The constrained refit never looks at the corrupted vector — it
        # re-solves NNLS from the design matrix — so every parameter comes
        # back non-negative...
        refit = estimator._fit_parameters(v_core, v_mem)
        assert np.all(refit.as_vector() >= 0.0)

        # ...and because the design matrix is non-negative (activities x
        # voltages^2 x frequencies), every per-component power contribution
        # and every total prediction is non-negative again.
        design = estimator._design_matrix(v_core, v_mem)
        assert np.all(design >= 0.0)
        contributions = design * refit.as_vector()
        assert np.all(contributions >= 0.0)
        assert np.min(estimator._predict(refit, v_core, v_mem)) >= 0.0

    def test_full_estimate_yields_non_negative_breakdowns(self, estimator):
        model, _ = estimator.estimate()
        assert np.all(model.parameters.as_vector() >= 0.0)
        # Spot-check breakdowns across the grid at an adversarial
        # utilization corner (everything saturated).
        from repro.core.metrics import UtilizationVector
        from repro.hardware.components import ALL_COMPONENTS

        saturated = UtilizationVector(
            {component: 1.0 for component in ALL_COMPONENTS}
        )
        for config in model.known_configurations():
            breakdown = model.predict_breakdown(saturated, config)
            assert breakdown.constant_watts >= 0.0
            for watts in breakdown.component_watts.values():
                assert watts >= 0.0
