"""Smoke tests: every shipped example must run to completion.

Each example is executed in a subprocess (its own interpreter, exactly as a
user would run it) and must exit 0 with non-trivial output. These are the
slowest tests in the suite (~1 min total) but they are what keeps the
examples from rotting.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXPECTED_EXAMPLES = {
    "quickstart.py",
    "dvfs_energy_tuning.py",
    "power_bottleneck_analysis.py",
    "sensorless_power_meter.py",
    "online_dvfs_runtime.py",
    "energy_simulator_whatif.py",
    "custom_gpu.py",
    "virtualized_power_attribution.py",
}


def test_examples_inventory():
    found = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert found == EXPECTED_EXAMPLES


@pytest.mark.parametrize("example", sorted(EXPECTED_EXAMPLES))
def test_example_runs(example):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / example)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert len(completed.stdout) > 100, "example produced almost no output"
    assert "Traceback" not in completed.stderr
