"""Unit tests for the prior-work baseline models
(:mod:`repro.core.baselines`)."""

from __future__ import annotations

import pytest

from repro.config import NOISELESS_SETTINGS
from repro.core.baselines import (
    AbeLinearModel,
    FixedConfigurationModel,
    LinearFrequencyModel,
)
from repro.core.dataset import collect_training_dataset
from repro.core.metrics import MetricCalculator
from repro.driver.session import ProfilingSession
from repro.errors import NotFittedError
from repro.hardware.gpu import SimulatedGPU
from repro.hardware.specs import FrequencyConfig, GTX_TITAN_X, TESLA_K40C
from repro.microbench import suite_group
from repro.workloads import workload_by_name


@pytest.fixture(scope="module")
def session() -> ProfilingSession:
    return ProfilingSession(
        SimulatedGPU(GTX_TITAN_X, settings=NOISELESS_SETTINGS)
    )


@pytest.fixture(scope="module")
def dataset(session):
    kernels = (
        suite_group("sp") + suite_group("int") + suite_group("dram")
        + suite_group("shared") + suite_group("idle")
    )
    configs = [
        FrequencyConfig(core, memory)
        for core in (595, 899, 975, 1164)
        for memory in (3505, 810)
    ]
    return collect_training_dataset(session, kernels, configs)


@pytest.fixture(scope="module")
def gemm_utilizations(session):
    calculator = MetricCalculator(GTX_TITAN_X)
    return calculator.utilizations(
        session.collect_events(workload_by_name("gemm"))
    )


class TestAbeLinearModel:
    def test_training_grid_is_3x3(self):
        grid = AbeLinearModel.training_grid(GTX_TITAN_X)
        assert len(grid) == 9
        assert len({c.core_mhz for c in grid}) == 3
        assert len({c.memory_mhz for c in grid}) == 3

    def test_training_grid_on_single_memory_device(self):
        grid = AbeLinearModel.training_grid(TESLA_K40C)
        assert len(grid) == 3  # 3 core levels x 1 memory level

    def test_predict_before_fit_raises(self, gemm_utilizations):
        model = AbeLinearModel(GTX_TITAN_X)
        with pytest.raises(NotFittedError):
            model.predict_power(gemm_utilizations, GTX_TITAN_X.reference)

    def test_fit_predict_reasonable_at_reference(
        self, session, dataset, gemm_utilizations
    ):
        model = AbeLinearModel(GTX_TITAN_X).fit(dataset)
        predicted = model.predict_power(
            gemm_utilizations, GTX_TITAN_X.reference
        )
        measured = session.measure_power(workload_by_name("gemm")).average_watts
        assert predicted == pytest.approx(measured, rel=0.20)

    def test_prediction_linear_in_core_frequency(
        self, dataset, gemm_utilizations
    ):
        """The structural assumption the paper criticizes: perfectly linear
        frequency response, no voltage curvature."""
        model = AbeLinearModel(GTX_TITAN_X).fit(dataset)
        watts = [
            model.predict_power(gemm_utilizations, FrequencyConfig(f, 3505))
            for f in (595, 785, 975, 1164)
        ]
        slope1 = (watts[1] - watts[0]) / (785 - 595)
        slope2 = (watts[3] - watts[2]) / (1164 - 975)
        assert slope1 == pytest.approx(slope2, rel=1e-6)


class TestLinearFrequencyModel:
    def test_voltage_pinned_at_one(self, dataset):
        model = LinearFrequencyModel(GTX_TITAN_X).fit(dataset)
        inner = model._model
        assert inner is not None
        for config in inner.known_configurations():
            assert inner.voltage_at(config).v_core == 1.0

    def test_predict_before_fit_raises(self, gemm_utilizations):
        with pytest.raises(NotFittedError):
            LinearFrequencyModel(GTX_TITAN_X).predict_power(
                gemm_utilizations, GTX_TITAN_X.reference
            )


class TestFixedConfigurationModel:
    def test_prediction_ignores_configuration(
        self, dataset, gemm_utilizations
    ):
        model = FixedConfigurationModel(GTX_TITAN_X).fit(dataset)
        at_reference = model.predict_power(
            gemm_utilizations, GTX_TITAN_X.reference
        )
        at_low = model.predict_power(
            gemm_utilizations, FrequencyConfig(595, 810)
        )
        assert at_reference == at_low

    def test_accurate_at_reference_only(
        self, session, dataset, gemm_utilizations
    ):
        model = FixedConfigurationModel(GTX_TITAN_X).fit(dataset)
        kernel = workload_by_name("gemm")
        reference_measured = session.measure_power(kernel).average_watts
        low_measured = session.measure_power(
            kernel, FrequencyConfig(595, 810)
        ).average_watts
        predicted = model.predict_power(gemm_utilizations, GTX_TITAN_X.reference)
        assert predicted == pytest.approx(reference_measured, rel=0.15)
        # At the far configuration the fixed prediction is way off.
        assert abs(predicted - low_measured) / low_measured > 0.3

    def test_predict_before_fit_raises(self, gemm_utilizations):
        with pytest.raises(NotFittedError):
            FixedConfigurationModel(GTX_TITAN_X).predict_power(
                gemm_utilizations, GTX_TITAN_X.reference
            )
