"""Integration tests for the online DVFS manager and traces
(:mod:`repro.runtime.manager` / :mod:`repro.runtime.trace`)."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.hardware.specs import FrequencyConfig, GTX_TITAN_X
from repro.runtime.manager import OnlineDVFSManager
from repro.runtime.policies import EnergyPolicy, PowerCapPolicy, StaticPolicy
from repro.runtime.trace import ApplicationTrace, TracePhase, TraceReport
from repro.workloads import workload_by_name


@pytest.fixture(scope="module")
def manager(lab) -> OnlineDVFSManager:
    device = "GTX Titan X"
    return OnlineDVFSManager(
        lab.model(device),
        lab.session(device),
        EnergyPolicy(max_slowdown=1.10),
    )


@pytest.fixture(scope="module")
def solver_trace() -> ApplicationTrace:
    return ApplicationTrace.from_pairs(
        "solver",
        [
            (workload_by_name("gemm"), 40),
            (workload_by_name("lbm"), 20),
            (workload_by_name("gemm"), 40),
        ],
    )


class TestTraceStructures:
    def test_phase_rejects_nonpositive_invocations(self):
        with pytest.raises(ValidationError):
            TracePhase(kernel=workload_by_name("gemm"), invocations=0)

    def test_trace_rejects_empty(self):
        with pytest.raises(ValidationError):
            ApplicationTrace(name="empty", phases=())

    def test_distinct_kernels(self, solver_trace):
        names = [k.name for k in solver_trace.distinct_kernels()]
        assert names == ["gemm", "lbm"]

    def test_total_invocations(self, solver_trace):
        assert solver_trace.total_invocations == 100


class TestPlanning:
    def test_plans_are_cached_per_kernel(self, manager):
        kernel = workload_by_name("gemm")
        assert manager.plan_for(kernel) is manager.plan_for(kernel)

    def test_plan_has_reference_comparison(self, manager):
        plan = manager.plan_for(workload_by_name("gemm"))
        assert plan.reference.config == GTX_TITAN_X.reference
        assert 0.0 <= plan.predicted_energy_saving < 1.0

    def test_plan_respects_candidate_restriction(self, lab):
        device = "GTX Titan X"
        candidates = [GTX_TITAN_X.reference, FrequencyConfig(785, 3505)]
        manager = OnlineDVFSManager(
            lab.model(device),
            lab.session(device),
            EnergyPolicy(),
            candidate_configs=candidates,
        )
        plan = manager.plan_for(workload_by_name("cutcp"))
        assert plan.config in candidates


class TestTraceExecution:
    def test_report_accounting_consistent(self, manager, solver_trace):
        report = manager.run_trace(solver_trace)
        assert isinstance(report, TraceReport)
        assert len(report.executions) == 3
        assert report.total_energy_joules > 0
        assert report.total_time_seconds > 0
        assert report.baseline_energy_joules > 0

    def test_energy_policy_saves_energy(self, manager, solver_trace):
        report = manager.run_trace(solver_trace)
        assert report.energy_saving_fraction > 0.05
        assert report.slowdown < 1.15

    def test_profiling_happens_once_per_kernel(self, lab, solver_trace):
        device = "GTX Titan X"
        fresh_manager = OnlineDVFSManager(
            lab.model(device),
            lab.session(device),
            EnergyPolicy(max_slowdown=1.10),
        )
        report = fresh_manager.run_trace(solver_trace)
        profiled_phases = [e for e in report.executions if e.profiled]
        # gemm profiled in phase 0, lbm in phase 1; phase 2 reuses the plan.
        assert len(profiled_phases) == 2
        assert not report.executions[2].profiled

    def test_static_reference_policy_matches_baseline(self, lab, solver_trace):
        device = "GTX Titan X"
        manager = OnlineDVFSManager(
            lab.model(device),
            lab.session(device),
            StaticPolicy(GTX_TITAN_X.reference),
        )
        report = manager.run_trace(solver_trace)
        assert report.total_energy_joules == pytest.approx(
            report.baseline_energy_joules, rel=1e-9
        )
        assert report.slowdown == pytest.approx(1.0)

    def test_power_cap_policy_respects_cap(self, lab, solver_trace):
        device = "GTX Titan X"
        cap = 120.0
        manager = OnlineDVFSManager(
            lab.model(device),
            lab.session(device),
            PowerCapPolicy(cap_watts=cap),
        )
        manager.run_trace(solver_trace)
        for name in manager.planned_kernels:
            plan = manager._plans[name]
            assert plan.chosen.predicted_power_watts <= cap

    def test_chosen_configs_cover_all_kernels(self, manager, solver_trace):
        report = manager.run_trace(solver_trace)
        assert set(report.chosen_configs()) == {"gemm", "lbm"}
