"""Load-generator tests (:mod:`repro.serving.loadgen`)."""

from __future__ import annotations

import pytest

from repro.benchmarking import BenchmarkRegression
from repro.serving.loadgen import (
    BENCH_SCHEMA,
    FLEET_SPEEDUP_FLOOR,
    LoadTestPlan,
    SLO_P99_MS,
    THROUGHPUT_FLOOR_RPS,
    build_stream,
    check_fleet_gate,
    ensure_model,
    run_load_test,
    scrub_wall_clock,
    summarize,
)
from repro.serving.registry import ModelRegistry


#: Hypothesis/load-generator heavy suite: part of the --runslow tier
#: (CI's coverage job passes --runslow; see CONTRIBUTING.md).
pytestmark = pytest.mark.slow

@pytest.fixture(scope="module")
def tiny_plan():
    """A small-but-real plan on the 4-configuration device."""
    return LoadTestPlan(
        device="Tesla K40c",
        requests=80,
        concurrency_levels=(4,),
        fleet_workers=(1, 2),
        chunk_rows=16,
        shapes=("burst", "mixed"),
        quick=True,
    )


@pytest.fixture(scope="module")
def report(tmp_path_factory, tiny_plan):
    registry = ModelRegistry(tmp_path_factory.mktemp("registry"))
    return run_load_test(registry, tiny_plan)


class TestEnsureModel:
    def test_fits_once_then_reuses(self, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        first = ensure_model(registry, "Tesla K40c")
        second = ensure_model(registry, "Tesla K40c")
        assert first == second
        assert first.version == 1
        assert registry.models() == ["tesla-k40c"]


class TestStream:
    def test_stream_is_deterministic(self, tiny_plan):
        first_rows, first_unique = build_stream("Tesla K40c", tiny_plan)
        second_rows, second_unique = build_stream("Tesla K40c", tiny_plan)
        assert first_rows == second_rows
        assert first_unique == second_unique

    def test_perturbation_creates_fresh_keys(self, tiny_plan):
        rows, unique = build_stream("Tesla K40c", tiny_plan)
        assert len(rows) == tiny_plan.requests
        # Sampling 8 base workloads with replacement would yield at most 8
        # unique vectors; the jittered fraction must push past that.
        assert unique > 8

    def test_rows_stay_in_unit_interval(self, tiny_plan):
        rows, _ = build_stream("Tesla K40c", tiny_plan)
        assert all(0.0 <= u <= 1.0 for row in rows for u in row)


class TestReport:
    def test_schema_and_identity(self, report, tiny_plan):
        assert report["benchmark"] == "serving"
        assert report["schema"] == BENCH_SCHEMA
        assert report["mode"] == "quick"
        assert report["device"] == "Tesla K40c"
        assert report["model"]["name"] == "tesla-k40c"
        assert report["model"]["version"] == 1
        assert len(report["model"]["sha256"]) == 64
        assert report["seed"] == tiny_plan.seed
        assert report["requests_per_phase"] == tiny_plan.requests

    def test_levels_carry_cold_and_warm_phases(self, report):
        assert [level["concurrency"] for level in report["levels"]] == [4]
        for level in report["levels"]:
            for phase in ("cold", "warm"):
                stats = level[phase]
                assert stats["requests"] == 80
                assert stats["answered"] == 80
                assert stats["throughput_rps"] > 0
                assert stats["latency_ms"]["p50"] <= stats["latency_ms"]["p99"]

    def test_no_rejections_or_timeouts(self, report):
        assert report["errors_total"] == 0

    def test_warm_phase_is_all_cache_hits(self, report):
        level = report["levels"][0]
        assert level["cold"]["cache"]["misses"] > 0
        assert level["warm"]["cache"]["hits"] == 80
        assert level["warm"]["cache"]["misses"] == 0

    def test_acceptance_records_the_floor(self, report):
        acceptance = report["acceptance"]
        assert acceptance["threshold_rps"] == THROUGHPUT_FLOOR_RPS
        assert acceptance["warm_throughput_rps"] > 0
        assert acceptance["fleet_speedup_floor"] == FLEET_SPEEDUP_FLOOR
        assert acceptance["fleet_gate_workers"] == 2
        assert acceptance["pass"] == (
            acceptance["warm_throughput_rps"] >= THROUGHPUT_FLOOR_RPS
            and acceptance["fleet_speedup"] >= FLEET_SPEEDUP_FLOOR
        )

    def test_fleet_section_sweeps_worker_counts(self, report, tiny_plan):
        fleet = report["fleet"]
        assert fleet["worker_counts"] == [1, 2]
        assert fleet["chunk_rows"] == tiny_plan.chunk_rows
        assert fleet["baseline_server_warm_rps"] > 0
        for entry in fleet["by_workers"]:
            for phase in ("cold", "warm"):
                stats = entry[phase]
                assert stats["requests"] == tiny_plan.requests
                assert stats["chunks"] == 5  # ceil(80 / 16)
                assert stats["throughput_rps"] > 0
                assert stats["worker_deaths"] == 0
            assert entry["speedup_vs_server_warm"] > 0

    def test_shape_section_records_admission_and_slo(self, report):
        shapes = {shape["shape"]: shape for shape in report["shapes"]}
        assert set(shapes) == {"burst", "mixed"}
        for shape in shapes.values():
            total = (
                shape["admitted"]
                + shape["shed_quota"]
                + shape["shed_backlog"]
            )
            assert total == shape["requests"]
            assert sum(shape["tenants"].values()) == shape["requests"]
            assert sum(shape["shed_by_tenant"].values()) == (
                shape["shed_quota"] + shape["shed_backlog"]
            )
            assert shape["slo"]["p99_target_ms"] == SLO_P99_MS
        assert set(shapes["mixed"]["tenants"]) == {"paid", "free"}

    def test_fleet_gate_raises_on_regression(self, report):
        check_fleet_gate(report, 0.0)  # any positive speedup clears 0
        with pytest.raises(BenchmarkRegression, match="below the required"):
            check_fleet_gate(report, 1e9)

    def test_summary_mentions_verdict_and_device(self, report):
        text = summarize(report)
        assert "Tesla K40c" in text
        assert ("PASS" in text) or ("FAIL" in text)

    def test_empty_plan_rejected(self, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        with pytest.raises(ValueError, match="at least one request"):
            run_load_test(registry, LoadTestPlan(requests=0))


class TestQuickTier:
    def test_quick_tier_shape(self):
        plan = LoadTestPlan.quick_tier()
        assert plan.quick is True
        assert plan.requests == 300
        assert plan.concurrency_levels == (1, 8)
        assert plan.fleet_workers == (1, 2)
        assert plan.shapes == ("burst",)
        assert plan.device == "Titan Xp"

    def test_bad_fleet_workers_rejected(self, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        with pytest.raises(ValueError, match="worker counts"):
            run_load_test(registry, LoadTestPlan(fleet_workers=(0,)))


class TestSeedDeterminism:
    """Same seed + same plan → identical report modulo wall-clock fields.

    Everything the wall clock cannot touch — the request stream, the
    traffic timelines, every admission/shed count, tenant mixes, chunk
    counts, the model identity — must be byte-identical between two runs.
    """

    def test_two_runs_scrub_to_the_same_report(self, tiny_plan, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        first = run_load_test(registry, tiny_plan)
        second = run_load_test(registry, tiny_plan)
        assert scrub_wall_clock(first) == scrub_wall_clock(second)

    def test_different_seed_changes_the_scrubbed_report(
        self, tiny_plan, tmp_path
    ):
        import dataclasses

        registry = ModelRegistry(tmp_path / "registry")
        first = run_load_test(registry, tiny_plan)
        reseeded = run_load_test(
            registry, dataclasses.replace(tiny_plan, seed=tiny_plan.seed + 1)
        )
        assert scrub_wall_clock(first) != scrub_wall_clock(reseeded)

    def test_scrub_removes_only_wall_clock_fields(self, report):
        scrubbed = scrub_wall_clock(report)
        assert scrubbed["requests_per_phase"] == report["requests_per_phase"]
        assert scrubbed["unique_vectors"] == report["unique_vectors"]
        for shape, original in zip(scrubbed["shapes"], report["shapes"]):
            assert shape["admitted"] == original["admitted"]
            assert shape["latency_ms"] is None
        assert scrubbed["acceptance"]["fleet_speedup"] is None
        # The original report is untouched (deep copy).
        assert report["acceptance"]["fleet_speedup"] is not None
