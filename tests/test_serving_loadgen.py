"""Load-generator tests (:mod:`repro.serving.loadgen`)."""

from __future__ import annotations

import pytest

from repro.serving.loadgen import (
    BENCH_SCHEMA,
    LoadTestPlan,
    THROUGHPUT_FLOOR_RPS,
    build_stream,
    ensure_model,
    run_load_test,
    summarize,
)
from repro.serving.registry import ModelRegistry


#: Hypothesis/load-generator heavy suite: part of the --runslow tier
#: (CI's coverage job passes --runslow; see CONTRIBUTING.md).
pytestmark = pytest.mark.slow

@pytest.fixture(scope="module")
def tiny_plan():
    """A small-but-real plan on the 4-configuration device."""
    return LoadTestPlan(
        device="Tesla K40c",
        requests=80,
        concurrency_levels=(4,),
        quick=True,
    )


@pytest.fixture(scope="module")
def report(tmp_path_factory, tiny_plan):
    registry = ModelRegistry(tmp_path_factory.mktemp("registry"))
    return run_load_test(registry, tiny_plan)


class TestEnsureModel:
    def test_fits_once_then_reuses(self, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        first = ensure_model(registry, "Tesla K40c")
        second = ensure_model(registry, "Tesla K40c")
        assert first == second
        assert first.version == 1
        assert registry.models() == ["tesla-k40c"]


class TestStream:
    def test_stream_is_deterministic(self, tiny_plan):
        first_rows, first_unique = build_stream("Tesla K40c", tiny_plan)
        second_rows, second_unique = build_stream("Tesla K40c", tiny_plan)
        assert first_rows == second_rows
        assert first_unique == second_unique

    def test_perturbation_creates_fresh_keys(self, tiny_plan):
        rows, unique = build_stream("Tesla K40c", tiny_plan)
        assert len(rows) == tiny_plan.requests
        # Sampling 8 base workloads with replacement would yield at most 8
        # unique vectors; the jittered fraction must push past that.
        assert unique > 8

    def test_rows_stay_in_unit_interval(self, tiny_plan):
        rows, _ = build_stream("Tesla K40c", tiny_plan)
        assert all(0.0 <= u <= 1.0 for row in rows for u in row)


class TestReport:
    def test_schema_and_identity(self, report, tiny_plan):
        assert report["benchmark"] == "serving"
        assert report["schema"] == BENCH_SCHEMA
        assert report["mode"] == "quick"
        assert report["device"] == "Tesla K40c"
        assert report["model"]["name"] == "tesla-k40c"
        assert report["model"]["version"] == 1
        assert len(report["model"]["sha256"]) == 64
        assert report["seed"] == tiny_plan.seed
        assert report["requests_per_phase"] == tiny_plan.requests

    def test_levels_carry_cold_and_warm_phases(self, report):
        assert [level["concurrency"] for level in report["levels"]] == [4]
        for level in report["levels"]:
            for phase in ("cold", "warm"):
                stats = level[phase]
                assert stats["requests"] == 80
                assert stats["answered"] == 80
                assert stats["throughput_rps"] > 0
                assert stats["latency_ms"]["p50"] <= stats["latency_ms"]["p99"]

    def test_no_rejections_or_timeouts(self, report):
        assert report["errors_total"] == 0

    def test_warm_phase_is_all_cache_hits(self, report):
        level = report["levels"][0]
        assert level["cold"]["cache"]["misses"] > 0
        assert level["warm"]["cache"]["hits"] == 80
        assert level["warm"]["cache"]["misses"] == 0

    def test_acceptance_records_the_floor(self, report):
        acceptance = report["acceptance"]
        assert acceptance["threshold_rps"] == THROUGHPUT_FLOOR_RPS
        assert acceptance["warm_throughput_rps"] > 0
        assert acceptance["pass"] == (
            acceptance["warm_throughput_rps"] >= THROUGHPUT_FLOOR_RPS
        )

    def test_summary_mentions_verdict_and_device(self, report):
        text = summarize(report)
        assert "Tesla K40c" in text
        assert ("PASS" in text) or ("FAIL" in text)

    def test_empty_plan_rejected(self, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        with pytest.raises(ValueError, match="at least one request"):
            run_load_test(registry, LoadTestPlan(requests=0))


class TestQuickTier:
    def test_quick_tier_shape(self):
        plan = LoadTestPlan.quick_tier()
        assert plan.quick is True
        assert plan.requests == 300
        assert plan.concurrency_levels == (1, 8)
        assert plan.device == "Titan Xp"
