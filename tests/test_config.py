"""Unit tests for :mod:`repro.config` (seeding policy & settings)."""

from __future__ import annotations

import pytest

from repro.config import (
    DEFAULT_SETTINGS,
    NOISELESS_SETTINGS,
    SimulationSettings,
    derive_seed,
    rng_for,
)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed("a", "b") == derive_seed("a", "b")

    def test_label_sensitive(self):
        assert derive_seed("a", "b") != derive_seed("a", "c")

    def test_order_sensitive(self):
        assert derive_seed("a", "b") != derive_seed("b", "a")

    def test_master_seed_sensitive(self):
        assert derive_seed("a", master_seed=1) != derive_seed("a", master_seed=2)

    def test_fits_in_63_bits(self):
        for label in ("x", "y", 42, 3.14):
            assert 0 <= derive_seed(label) < 2**63

    def test_non_string_labels_are_stringified(self):
        assert derive_seed(1, 2.0) == derive_seed("1", "2.0")


class TestRngFor:
    def test_same_labels_same_stream(self):
        a = rng_for("sensor", "kernel-x").standard_normal(5)
        b = rng_for("sensor", "kernel-x").standard_normal(5)
        assert list(a) == list(b)

    def test_different_labels_different_stream(self):
        a = rng_for("sensor", "kernel-x").standard_normal(5)
        b = rng_for("sensor", "kernel-y").standard_normal(5)
        assert list(a) != list(b)


class TestSimulationSettings:
    def test_defaults_match_paper_methodology(self):
        assert DEFAULT_SETTINGS.min_run_seconds == 1.0
        assert DEFAULT_SETTINGS.measurement_repeats == 10
        assert DEFAULT_SETTINGS.noise_enabled

    def test_noiseless_variant(self):
        assert not NOISELESS_SETTINGS.noise_enabled

    def test_settings_are_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_SETTINGS.noise_enabled = False  # type: ignore[misc]

    def test_settings_rng_uses_master_seed(self):
        a = SimulationSettings(master_seed=1).rng("label").standard_normal(3)
        b = SimulationSettings(master_seed=2).rng("label").standard_normal(3)
        assert list(a) != list(b)
