"""Unit tests for :mod:`repro.units`."""

from __future__ import annotations

import math

import pytest

from repro import units


class TestFrequencyConversions:
    def test_mhz_to_hz(self):
        assert units.mhz_to_hz(975) == 975e6

    def test_hz_to_mhz(self):
        assert units.hz_to_mhz(975e6) == 975

    def test_roundtrip(self):
        assert units.hz_to_mhz(units.mhz_to_hz(3505.5)) == pytest.approx(3505.5)

    def test_cycles_to_seconds(self):
        assert units.cycles_to_seconds(975e6, 975) == pytest.approx(1.0)

    def test_seconds_to_cycles(self):
        assert units.seconds_to_cycles(2.0, 100) == pytest.approx(2.0e8)

    def test_cycles_roundtrip(self):
        cycles = 1.25e9
        seconds = units.cycles_to_seconds(cycles, 875)
        assert units.seconds_to_cycles(seconds, 875) == pytest.approx(cycles)

    def test_cycles_to_seconds_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            units.cycles_to_seconds(100, 0)

    def test_seconds_to_cycles_rejects_negative_frequency(self):
        with pytest.raises(ValueError):
            units.seconds_to_cycles(1.0, -1)


class TestBandwidthAndEnergy:
    def test_gib_per_second(self):
        assert units.gib_per_second(2.0**30, 1.0) == pytest.approx(1.0)

    def test_gib_per_second_rejects_zero_duration(self):
        with pytest.raises(ValueError):
            units.gib_per_second(1024, 0.0)

    def test_energy(self):
        assert units.energy_joules(100.0, 2.5) == pytest.approx(250.0)


class TestFrequencyMatching:
    def test_frequencies_equal_within_tolerance(self):
        assert units.frequencies_equal(975.0, 975.4)

    def test_frequencies_not_equal_outside_tolerance(self):
        assert not units.frequencies_equal(975.0, 976.0)

    def test_find_frequency_level_hits(self):
        assert units.find_frequency_level(975.2, (595, 975, 1164)) == 975

    def test_find_frequency_level_misses(self):
        assert units.find_frequency_level(1000, (595, 975, 1164)) is None

    def test_closest_lower_level(self):
        levels = (595, 899, 975, 1126, 1164)
        assert units.closest_lower_level(1164, levels) == 1126

    def test_closest_lower_level_skips_equal(self):
        levels = (595, 899, 975)
        assert units.closest_lower_level(975, levels) == 899

    def test_closest_lower_level_at_bottom(self):
        assert units.closest_lower_level(595, (595, 975)) is None


class TestMeanAbsolutePercentageError:
    def test_perfect_prediction_is_zero(self):
        assert units.mean_absolute_percentage_error([100, 200], [100, 200]) == 0

    def test_known_value(self):
        # |90-100|/100 = 10% and |220-200|/200 = 10% -> mean 10%.
        error = units.mean_absolute_percentage_error([100, 200], [90, 220])
        assert error == pytest.approx(10.0)

    def test_symmetric_in_error_sign(self):
        over = units.mean_absolute_percentage_error([100], [110])
        under = units.mean_absolute_percentage_error([100], [90])
        assert over == pytest.approx(under)

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            units.mean_absolute_percentage_error([1, 2], [1])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            units.mean_absolute_percentage_error([], [])

    def test_rejects_nonpositive_measured(self):
        with pytest.raises(ValueError):
            units.mean_absolute_percentage_error([0.0], [1.0])
