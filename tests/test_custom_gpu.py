"""Tests for the custom-device builder (:mod:`repro.hardware.custom`)."""

from __future__ import annotations

import pytest

from repro.errors import SpecError
from repro.hardware.components import Component
from repro.hardware.custom import (
    build_spec,
    custom_gpu,
    evenly_spaced_levels,
    scaled_ground_truth,
)
from repro.hardware.specs import GTX_TITAN_X


def volta_like_spec():
    return build_spec(
        name="Volta-like test",
        sm_count=80,
        core_range_mhz=(607, 1700),
        core_levels=12,
        default_core_mhz=1455,
        memory_levels_mhz=(850, 425),
        default_memory_mhz=850,
        sp_int_units_per_sm=64,
        dp_units_per_sm=32,
        memory_bus_width_bytes=384,
        l2_bytes_per_cycle=2048.0,
        tdp_watts=320.0,
    )


class TestEvenlySpacedLevels:
    def test_contains_endpoints_and_default(self):
        levels = evenly_spaced_levels(600, 1200, 7, include=1000)
        assert min(levels) == 600
        assert max(levels) == 1200
        assert 1000 in levels
        assert len(levels) == 7

    def test_rejects_default_outside_range(self):
        with pytest.raises(SpecError):
            evenly_spaced_levels(600, 1200, 7, include=1500)

    def test_rejects_degenerate_range(self):
        with pytest.raises(SpecError):
            evenly_spaced_levels(1200, 600, 7, include=800)

    def test_rejects_too_few_levels(self):
        with pytest.raises(SpecError):
            evenly_spaced_levels(600, 1200, 1, include=800)


class TestBuildSpec:
    def test_produces_valid_spec(self):
        spec = volta_like_spec()
        assert spec.sm_count == 80
        assert len(spec.core_frequencies_mhz) == 12
        assert spec.default_core_mhz in spec.core_frequencies_mhz
        assert spec.reference.core_mhz == 1455

    def test_hbm_bandwidth(self):
        spec = volta_like_spec()
        # 850 MHz x 384 B x DDR = 652.8 GB/s.
        assert spec.dram_peak_bandwidth(850) == pytest.approx(652.8e9)


class TestScaledGroundTruth:
    def test_wide_dp_array_gets_bigger_budget(self):
        parameters = scaled_ground_truth(volta_like_spec())
        base = scaled_ground_truth(GTX_TITAN_X)
        assert (
            parameters.dynamic_full_watts[Component.DP]
            > base.dynamic_full_watts[Component.DP]
        )

    def test_identity_on_the_reference_device(self):
        parameters = scaled_ground_truth(GTX_TITAN_X)
        from repro.hardware.power import GROUND_TRUTH_PARAMETERS

        base = GROUND_TRUTH_PARAMETERS["GTX Titan X"]
        assert parameters.static_core_watts == pytest.approx(
            base.static_core_watts
        )
        for component, watts in base.dynamic_full_watts.items():
            assert parameters.dynamic_full_watts[component] == pytest.approx(
                watts
            ), component

    def test_all_parameters_nonnegative(self):
        parameters = scaled_ground_truth(volta_like_spec())
        assert parameters.static_core_watts >= 0
        assert all(w >= 0 for w in parameters.dynamic_full_watts.values())


class TestCustomGpuEndToEnd:
    @pytest.fixture(scope="class")
    def device(self):
        return custom_gpu(
            volta_like_spec(),
            voltage_flat_level=0.90,
            voltage_breakpoint_fraction=0.5,
        )

    def test_voltage_anchored_at_default(self, device):
        from repro.hardware.components import Domain

        assert device.debug_true_voltage(
            Domain.CORE, device.spec.reference
        ) == pytest.approx(1.0)

    def test_runs_workloads(self, device):
        from repro.workloads import workload_by_name

        result = device.run(workload_by_name("gemm"))
        assert 0 < result.true_power_watts <= device.spec.tdp_watts

    def test_full_pipeline_fits_and_validates(self, device):
        """The headline generalization claim: the unchanged pipeline fits a
        device the paper never saw and stays in the single-digit band."""
        import repro

        session = repro.ProfilingSession(device)
        model, report = repro.fit_power_model(session)
        assert report.iterations <= 50
        result = repro.validate_model(
            model, session, repro.all_workloads()
        )
        assert result.mean_absolute_error_percent < 9.0
