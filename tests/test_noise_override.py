"""Tests for injectable noise profiles (the noise-sweep knob)."""

from __future__ import annotations

import pytest

from repro.driver.cupti import CuptiContext
from repro.driver.nvml import NVMLDevice
from repro.hardware.gpu import SimulatedGPU
from repro.hardware.noise import (
    NOISE_PROFILES,
    NoiseProfile,
    scaled_profile,
)
from repro.hardware.specs import GTX_TITAN_X
from repro.workloads import workload_by_name


class TestScaledProfile:
    def test_scales_every_sigma(self):
        base = NOISE_PROFILES["Maxwell"]
        doubled = scaled_profile(base, 2.0)
        assert doubled.counter_sigma == pytest.approx(2 * base.counter_sigma)
        assert doubled.sensor_sigma == pytest.approx(2 * base.sensor_sigma)
        assert doubled.residual_sigma == pytest.approx(
            2 * base.residual_sigma
        )

    def test_zero_scale_silences_everything(self):
        silent = scaled_profile(NOISE_PROFILES["Maxwell"], 0.0)
        assert silent.counter_sigma == 0.0

    def test_rejects_negative_scale(self):
        with pytest.raises(ValueError):
            scaled_profile(NOISE_PROFILES["Maxwell"], -1.0)


class TestOverrideWiring:
    def test_default_profile_matches_architecture(self):
        gpu = SimulatedGPU(GTX_TITAN_X)
        assert gpu.noise_profile == NOISE_PROFILES["Maxwell"]

    def test_override_is_exposed(self):
        custom = NoiseProfile(
            sensor_sigma=0.0, counter_sigma=0.0, residual_sigma=0.0
        )
        gpu = SimulatedGPU(GTX_TITAN_X, noise_profile=custom)
        assert gpu.noise_profile is custom

    def test_zero_profile_makes_counters_exact(self):
        """A zeroed profile behaves like NOISELESS_SETTINGS for the
        counters: two devices, one silenced by profile and one by settings,
        collect identical events."""
        from repro.config import NOISELESS_SETTINGS

        silent = SimulatedGPU(
            GTX_TITAN_X,
            noise_profile=scaled_profile(NOISE_PROFILES["Maxwell"], 0.0),
        )
        quiet = SimulatedGPU(GTX_TITAN_X, settings=NOISELESS_SETTINGS)
        kernel = workload_by_name("gemm")
        a = CuptiContext(silent).collect_events(kernel)
        b = CuptiContext(quiet).collect_events(kernel)
        for name, value in a.values.items():
            assert value == pytest.approx(b.value(name))

    def test_louder_counters_distort_more(self):
        kernel = workload_by_name("gemm")
        base = NOISE_PROFILES["Maxwell"]
        nominal = CuptiContext(SimulatedGPU(GTX_TITAN_X)).collect_events(
            kernel
        )
        loud = CuptiContext(
            SimulatedGPU(
                GTX_TITAN_X, noise_profile=scaled_profile(base, 4.0)
            )
        ).collect_events(kernel)
        quiet = CuptiContext(
            SimulatedGPU(
                GTX_TITAN_X, noise_profile=scaled_profile(base, 0.0)
            )
        ).collect_events(kernel)

        def distortion(record):
            return sum(
                abs(record.value(name) / quiet.value(name) - 1.0)
                for name in quiet.values
                if quiet.value(name) > 0
            )

        assert distortion(loud) > distortion(nominal)

    def test_sensor_noise_scales_too(self):
        kernel = workload_by_name("gemm")
        base = NOISE_PROFILES["Maxwell"]
        quiet_gpu = SimulatedGPU(
            GTX_TITAN_X, noise_profile=scaled_profile(base, 0.0)
        )
        loud_gpu = SimulatedGPU(
            GTX_TITAN_X, noise_profile=scaled_profile(base, 4.0)
        )
        quiet_watts = NVMLDevice(quiet_gpu).measure_power(kernel).average_watts
        loud_watts = NVMLDevice(loud_gpu).measure_power(kernel).average_watts
        truth = quiet_gpu.run(kernel).true_power_watts
        # The loud sensor deviates further from a clean measurement than
        # the silent one does (which only carries the idle contamination).
        assert abs(loud_watts - truth) != abs(quiet_watts - truth)
