"""Tests for the DVFS-scaling classifier (:mod:`repro.analysis.classify`)."""

from __future__ import annotations

import pytest

from repro.analysis.classify import DVFSClassifier, ScalingClass
from repro.errors import ValidationError
from repro.workloads import all_workloads, workload_by_name


@pytest.fixture(scope="module")
def classifier(lab) -> DVFSClassifier:
    device = "GTX Titan X"
    return DVFSClassifier(lab.model(device), lab.session(device))


class TestKnownWorkloads:
    def test_blackscholes_depends_on_the_memory_clock(self, classifier):
        """On this substrate BlackScholes carries a core-clocked latency
        floor as well, so it lands in the memory-bound or balanced class —
        what matters is that its memory dependence is strong (Fig. 2A: the
        memory down-clock halves its power)."""
        result = classifier.classify(workload_by_name("blackscholes"))
        assert result.scaling_class in (
            ScalingClass.MEMORY_BOUND, ScalingClass.BALANCED
        )
        assert result.memory_sensitivity > 0.5
        assert result.memory_power_drop_fraction > 0.35

    def test_cutcp_is_compute_bound(self, classifier):
        result = classifier.classify(workload_by_name("cutcp"))
        assert result.scaling_class is ScalingClass.COMPUTE_BOUND
        assert result.core_sensitivity > result.memory_sensitivity
        assert result.memory_power_drop_fraction < 0.35

    def test_lbm_depends_on_the_memory_clock(self, classifier):
        result = classifier.classify(workload_by_name("lbm"))
        assert result.scaling_class in (
            ScalingClass.MEMORY_BOUND, ScalingClass.BALANCED
        )
        assert result.memory_sensitivity > 0.5

    def test_cublas_64_is_latency_bound(self, classifier):
        from repro.workloads.cuda_sdk import matrixmul_cublas

        kernel = matrixmul_cublas(64, classifier.spec)
        result = classifier.classify(kernel)
        # Tiny matrices: neither domain saturated (Fig. 9 utilizations
        # all below 0.2).
        assert result.scaling_class in (
            ScalingClass.LATENCY_BOUND, ScalingClass.COMPUTE_BOUND
        )
        assert result.memory_sensitivity < 0.4


class TestStructure:
    def test_sensitivities_bounded(self, classifier):
        for kernel in all_workloads()[:8]:
            result = classifier.classify(kernel)
            assert 0.0 <= result.core_sensitivity <= 1.0
            assert 0.0 <= result.memory_sensitivity <= 1.0

    def test_classify_all(self, classifier):
        results = classifier.classify_all(all_workloads())
        assert len(results) == 27
        classes = {r.scaling_class for r in results.values()}
        # The validation set is diverse enough to populate several classes.
        assert len(classes) >= 2

    def test_classify_all_rejects_empty(self, classifier):
        with pytest.raises(ValidationError):
            classifier.classify_all([])

    def test_memory_sensitive_workloads_drop_more_power(self, classifier):
        """Across the whole set, memory-clock-sensitive workloads lose more
        power to the memory down-clock than the compute-bound ones — the
        Sec. II motivation, quantified."""
        results = classifier.classify_all(all_workloads())
        memory_sensitive = [
            r.memory_power_drop_fraction
            for r in results.values()
            if r.memory_sensitivity >= 0.4
        ]
        compute_bound = [
            r.memory_power_drop_fraction
            for r in results.values()
            if r.scaling_class is ScalingClass.COMPUTE_BOUND
        ]
        assert memory_sensitive and compute_bound
        assert sum(memory_sensitive) / len(memory_sensitive) > sum(
            compute_bound
        ) / len(compute_bound)
