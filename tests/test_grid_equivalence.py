"""Equivalence of the grid measurement fast path with the scalar walk.

The fast path (``measure_power_grid`` / ``collect_training_dataset`` /
the vectorized voltage step) is a pure optimization: every observable it
produces must match the scalar code path — bitwise for the measurement
layer, to well below 1e-9 for the estimator, whose vectorized reductions
reassociate floating-point sums.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dataset import collect_training_dataset
from repro.core.estimation import ModelEstimator
from repro.core.regression import (
    minimize_voltage_1d,
    minimize_voltage_1d_stats,
)
from repro.driver.faults import FaultPlan
from repro.driver.session import ProfilingSession
from repro.hardware.gpu import SimulatedGPU
from repro.hardware.specs import ALL_GPUS
from repro.microbench import build_suite
from repro.telemetry import TraceRecorder

SPEC_IDS = [spec.name for spec in ALL_GPUS]


def _sample_configs(spec, count=6):
    """Up to ``count`` configurations spread across the device grid.

    Always includes the reference plus one neighbor along each frequency
    axis, so the estimator's F1/F2/F3 bootstrap has enough observations.
    """
    configs = spec.all_configurations()
    reference = spec.reference
    chosen = [reference]
    core_neighbors = [
        c
        for c in configs
        if c.memory_mhz == reference.memory_mhz and c != reference
    ]
    if core_neighbors:
        # Mirror the estimator's F2 pick (core closest to 85 % of F1).
        chosen.append(
            min(
                core_neighbors,
                key=lambda c: abs(c.core_mhz - 0.85 * reference.core_mhz),
            )
        )
        remaining = [c for c in core_neighbors if c not in chosen]
        if remaining:
            chosen.append(
                min(
                    remaining,
                    key=lambda c: abs(c.core_mhz - reference.core_mhz),
                )
            )
    mem_neighbors = [
        c
        for c in configs
        if c.core_mhz == reference.core_mhz and c != reference
    ]
    if mem_neighbors:
        chosen.append(
            min(
                mem_neighbors,
                key=lambda c: abs(c.memory_mhz - reference.memory_mhz),
            )
        )
    stride = max(1, len(configs) // count)
    for config in configs[::stride]:
        if config not in chosen and len(chosen) < count:
            chosen.append(config)
    return chosen


@pytest.mark.parametrize("spec", ALL_GPUS, ids=SPEC_IDS)
def test_grid_measurements_bitwise_identical_to_scalar(spec):
    """5 kernels x 6 configs: every PowerMeasurement field matches exactly."""
    kernels = build_suite()[:5]
    configs = _sample_configs(spec, count=6)
    session = ProfilingSession(SimulatedGPU(spec))

    scalar = {
        (kernel.name, config): session.measure_power(kernel, config)
        for kernel in kernels
        for config in configs
    }
    grid = session.measure_grid(kernels, configs)

    assert grid.kernel_names == tuple(kernel.name for kernel in kernels)
    for kernel, row in zip(kernels, grid.measurements):
        assert len(row) == len(configs)
        for config, measurement in zip(configs, row):
            expected = scalar[(kernel.name, config)]
            # Bitwise: dataclass equality compares every field with ==,
            # which for the float fields is exact equality.
            assert measurement == expected


@pytest.mark.parametrize("spec", ALL_GPUS, ids=SPEC_IDS)
def test_grid_dataset_rows_identical_to_scalar(spec):
    kernels = build_suite()[:5]
    configs = _sample_configs(spec, count=6)
    fast = collect_training_dataset(
        ProfilingSession(SimulatedGPU(spec)), kernels, configs
    )
    scalar = collect_training_dataset(
        ProfilingSession(SimulatedGPU(spec)), kernels, configs, use_grid=False
    )
    assert fast.rows == scalar.rows


@pytest.mark.parametrize("spec", ALL_GPUS, ids=SPEC_IDS)
def test_vectorized_estimator_matches_scalar(spec, lab):
    """Voltages, parameters and rmse_history agree to <= 1e-9.

    Runs on the full campaign dataset (the acceptance setting): the
    sub-sampled grids used elsewhere in this file converge differently
    enough that iteration dynamics would amplify ulp-level differences.
    """
    dataset = lab.dataset(spec.name)

    model_v, report_v = ModelEstimator(dataset, vectorized=True).estimate()
    model_s, report_s = ModelEstimator(dataset, vectorized=False).estimate()

    assert report_v.iterations == report_s.iterations
    assert len(report_v.rmse_history) == len(report_s.rmse_history)
    assert max(
        abs(a - b)
        for a, b in zip(report_v.rmse_history, report_s.rmse_history)
    ) <= 1e-9
    vector_v = model_v.parameters.as_vector()
    vector_s = model_s.parameters.as_vector()
    # 1e-9 relative: the bounded least-squares step amplifies ~1e-15
    # voltage differences into absolute coefficient differences of the
    # same relative order.
    assert np.max(
        np.abs(vector_v - vector_s) / np.maximum(1.0, np.abs(vector_s))
    ) <= 1e-9
    for config in model_v.known_configurations():
        a = model_v.voltage_at(config)
        b = model_s.voltage_at(config)
        assert abs(a.v_core - b.v_core) <= 1e-9
        assert abs(a.v_mem - b.v_mem) <= 1e-9


def _logical_counters(recorder: TraceRecorder) -> dict:
    """Counter totals minus the ``run.*`` cache series.

    The run cache is the one deliberately path-dependent observable: the
    grid path batches executions (and resolves idle-power baselines through
    ``run_grid``), so its hit/miss split differs from the scalar walk even
    though every *logical* event — faults, retries, rows, cells, samples —
    is identical. Everything else must match exactly.
    """
    return {
        name: value
        for name, value in recorder.counters().items()
        if not name.startswith("run.")
    }


@pytest.mark.parametrize("spec", ALL_GPUS, ids=SPEC_IDS)
def test_grid_and_scalar_campaigns_emit_identical_counters(spec):
    """Fault-free campaigns: same logical telemetry stream on both paths."""
    kernels = build_suite()[:5]
    configs = _sample_configs(spec, count=6)
    recorders = {}
    for use_grid in (True, False):
        recorder = TraceRecorder()
        session = ProfilingSession(SimulatedGPU(spec, recorder=recorder))
        collect_training_dataset(session, kernels, configs, use_grid=use_grid)
        recorders[use_grid] = recorder
    assert _logical_counters(recorders[True]) == _logical_counters(
        recorders[False]
    )
    # The span trees agree shape-for-shape as well: cells are traced per
    # logical measurement, not per driver call.
    assert recorders[True].span_tree() == recorders[False].span_tree()


@pytest.mark.parametrize("spec", ALL_GPUS, ids=SPEC_IDS)
def test_grid_and_scalar_campaigns_emit_identical_counters_under_faults(spec):
    """Under a seeded fault plan both paths observe the same fault stream,
    so retries, injected faults and degraded rows count identically.
    Clock-set faults stay off — the grid path performs no clock-set driver
    calls, making that class inherently path dependent."""
    kernels = build_suite()[:6]
    configs = spec.all_configurations()[:8]
    counters = {}
    for use_grid in (True, False):
        plan = FaultPlan(
            seed=20180224,
            nvml_read_rate=0.05,
            cupti_read_rate=0.05,
            sample_dropout_rate=0.3,
            thermal_throttle_rate=0.15,
        )
        recorder = TraceRecorder()
        session = ProfilingSession(
            SimulatedGPU(spec, fault_plan=plan, recorder=recorder)
        )
        collect_training_dataset(session, kernels, configs, use_grid=use_grid)
        counters[use_grid] = _logical_counters(recorder)
    assert counters[True] == counters[False]
    assert counters[True].get("faults.injected", 0) > 0


def test_estimator_identical_on_grid_and_scalar_datasets():
    """Row-identical datasets produce bitwise-identical reports."""
    spec = ALL_GPUS[1]  # GTX Titan X
    kernels = build_suite()[:8]
    configs = _sample_configs(spec, count=6)
    fast = collect_training_dataset(
        ProfilingSession(SimulatedGPU(spec)), kernels, configs
    )
    scalar = collect_training_dataset(
        ProfilingSession(SimulatedGPU(spec)), kernels, configs, use_grid=False
    )
    _, report_fast = ModelEstimator(fast).estimate()
    _, report_scalar = ModelEstimator(scalar).estimate()
    assert report_fast.rmse_history == report_scalar.rmse_history


# ----------------------------------------------------------------------
# Closed-form cubic minimizer vs brute force
# ----------------------------------------------------------------------
BOUNDS = (0.6, 1.6)
BRUTE_GRID = np.linspace(BOUNDS[0], BOUNDS[1], 20001)


def _objective(beta, quadratic, target, v):
    """f(V) = sum_k (beta V + s_k V^2 - t_k)^2, for scalar or array V."""
    v = np.asarray(v, dtype=float)[..., None]
    residual = beta * v + quadratic * v**2 - target
    return np.sum(residual**2, axis=-1)


def _random_cases(count):
    rng = np.random.default_rng(20180224)
    for _ in range(count):
        n = int(rng.integers(1, 7))
        beta = float(rng.uniform(-60.0, 60.0))
        if rng.random() < 0.1:
            beta = 0.0  # exercise the degenerate / lower-order branches
        quadratic = rng.uniform(0.0, 0.2, size=n) * rng.uniform(100, 1200)
        target = rng.uniform(-50.0, 300.0, size=n)
        yield beta, quadratic, target


def test_minimize_voltage_1d_matches_brute_force():
    """>= 200 random problems: closed form within 1e-6 of a 20k-point scan."""
    for beta, quadratic, target in _random_cases(250):
        found = minimize_voltage_1d(beta, quadratic, target, BOUNDS)
        assert BOUNDS[0] <= found <= BOUNDS[1]
        brute = float(np.min(_objective(beta, quadratic, target, BRUTE_GRID)))
        value = float(_objective(beta, quadratic, target, found))
        scale = max(1.0, abs(brute))
        assert value <= brute + 1e-6 * scale


def _adversarial_cases():
    """Hand-crafted pathologies for the closed-form stationary cubic.

    The minimizer solves ``2 s2 V^3 + 3 beta s1 V^2 + (n beta^2 - 2 srs) V
    - beta sr = 0``; these cases drive that cubic toward its degenerate
    corners: vanishing leading coefficient, repeated roots, zero-derivative
    plateaus, and stationary points parked exactly on the bounds.
    """
    cases = []
    # Near-degenerate quadratic term: s -> 0 collapses the cubic toward a
    # linear equation; the solver must not blow up on the tiny leading
    # coefficient (a classic np.roots ill-conditioning trap).
    for s in (1e-14, 1e-10, 1e-7, 1e-4):
        cases.append((37.5, np.asarray([s]), np.asarray([41.0])))
        cases.append((-12.0, np.asarray([s]), np.asarray([-8.0])))
    # Exactly-zero quadratic term with nonzero beta: pure linear model.
    cases.append((25.0, np.asarray([0.0]), np.asarray([20.0])))
    # Both terms zero: the objective is constant in V; any in-bounds
    # answer is optimal and the solver must still return one.
    cases.append((0.0, np.asarray([0.0]), np.asarray([15.0])))
    # Repeated root of the residual: for n=1 the single-term objective
    # (beta V + s V^2 - t)^2 has a double root of its gradient wherever
    # beta V + s V^2 = t has a repeated solution, i.e. t = -beta^2/(4 s).
    for beta, s in ((30.0, 50.0), (-20.0, 80.0), (4.0, 400.0)):
        cases.append(
            (beta, np.asarray([s]), np.asarray([-(beta**2) / (4.0 * s)]))
        )
    # Stationary point parked exactly on each bound: V* solves
    # beta V + s V^2 = t, so pick t accordingly.
    for v_star in BOUNDS:
        beta, s = 10.0, 120.0
        cases.append(
            (beta, np.asarray([s]), np.asarray([beta * v_star + s * v_star**2]))
        )
    # Opposed targets with mismatched scales: the optimum balances one
    # huge and one tiny residual (exercises candidate comparison).
    cases.append(
        (5.0, np.asarray([300.0, 0.001]), np.asarray([250.0, -40.0]))
    )
    # Large-coefficient stress: magnitudes near the top of the physical
    # range amplify any root-polishing error.
    cases.append(
        (
            -60.0,
            np.asarray([1200.0, 950.0, 1100.0]),
            np.asarray([300.0, -50.0, 120.0]),
        )
    )
    return cases


def test_minimize_voltage_1d_adversarial_cases_match_brute_force():
    """Degenerate/repeated-root pathologies: closed form vs 20k-point scan."""
    for beta, quadratic, target in _adversarial_cases():
        found = minimize_voltage_1d(beta, quadratic, target, BOUNDS)
        assert BOUNDS[0] <= found <= BOUNDS[1]
        assert np.isfinite(found)
        brute = float(np.min(_objective(beta, quadratic, target, BRUTE_GRID)))
        value = float(_objective(beta, quadratic, target, found))
        scale = max(1.0, abs(brute))
        assert value <= brute + 1e-6 * scale


def test_minimize_voltage_1d_stats_adversarial_cases_lane_by_lane():
    """The batched minimizer survives the same pathologies, per lane."""
    for beta, quadratic, target in _adversarial_cases():
        lane = minimize_voltage_1d_stats(
            beta,
            np.asarray([float(quadratic.size)]),
            np.asarray([np.sum(quadratic)]),
            np.asarray([np.sum(quadratic**2)]),
            np.asarray([np.sum(target)]),
            np.asarray([np.sum(target * quadratic)]),
            BOUNDS,
        )
        found = float(lane[0])
        assert BOUNDS[0] <= found <= BOUNDS[1]
        assert np.isfinite(found)
        brute = float(np.min(_objective(beta, quadratic, target, BRUTE_GRID)))
        value = float(_objective(beta, quadratic, target, found))
        scale = max(1.0, abs(brute))
        assert value <= brute + 1e-6 * scale
        scalar = minimize_voltage_1d(beta, quadratic, target, BOUNDS)
        assert abs(found - scalar) <= 1e-9 or (
            abs(value - float(_objective(beta, quadratic, target, scalar)))
            <= 1e-9 * scale
        )


def test_minimize_voltage_1d_stats_matches_scalar_and_brute_force():
    """The batched minimizer agrees lane-by-lane with the scalar one."""
    cases = list(_random_cases(250))
    counts = np.asarray([case[1].size for case in cases], dtype=float)
    s1 = np.asarray([np.sum(case[1]) for case in cases])
    s2 = np.asarray([np.sum(case[1] ** 2) for case in cases])
    sr = np.asarray([np.sum(case[2]) for case in cases])
    srs = np.asarray([np.sum(case[2] * case[1]) for case in cases])

    # The batched API shares one beta across lanes, so group by beta.
    for index, (beta, quadratic, target) in enumerate(cases):
        lane = minimize_voltage_1d_stats(
            beta,
            counts[index : index + 1],
            s1[index : index + 1],
            s2[index : index + 1],
            sr[index : index + 1],
            srs[index : index + 1],
            BOUNDS,
        )
        found = float(lane[0])
        brute = float(np.min(_objective(beta, quadratic, target, BRUTE_GRID)))
        value = float(_objective(beta, quadratic, target, found))
        scale = max(1.0, abs(brute))
        assert value <= brute + 1e-6 * scale
        scalar = minimize_voltage_1d(beta, quadratic, target, BOUNDS)
        assert abs(found - scalar) <= 1e-9 or (
            abs(value - float(_objective(beta, quadratic, target, scalar)))
            <= 1e-9 * scale
        )
