"""Generalization tests: the model on workloads nobody picked.

The Table-III validation set is fixed; these tests draw fresh random (but
physically consistent) workload populations and require the fitted model to
stay inside the paper's accuracy band on them too.
"""

from __future__ import annotations

import pytest

from repro.analysis.validation import validate_model
from repro.errors import ValidationError
from repro.hardware.components import Component
from repro.hardware.specs import FrequencyConfig, GTX_TITAN_X
from repro.workloads.generator import generate_workloads, random_profile
from repro.config import rng_for


class TestGenerator:
    def test_deterministic_per_seed_label(self):
        a = generate_workloads(5, seed_label="x")
        b = generate_workloads(5, seed_label="x")
        assert [k.cache_key for k in a] == [k.cache_key for k in b]

    def test_different_labels_differ(self):
        a = generate_workloads(5, seed_label="x")
        b = generate_workloads(5, seed_label="y")
        assert [k.cache_key for k in a] != [k.cache_key for k in b]

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ValidationError):
            generate_workloads(0)

    def test_profiles_physically_consistent(self):
        rng = rng_for("test-gen")
        for _ in range(50):
            profile = random_profile(rng)
            mass = sum(u**6.0 for u in profile.values())
            assert mass <= 0.75 + 1e-9
            for value in profile.values():
                assert 0.0 <= value <= 1.0

    def test_population_is_diverse(self):
        kernels = generate_workloads(30, seed_label="diversity")
        dominant = set()
        for kernel in kernels:
            work = {
                Component.SP: kernel.sp_ops,
                Component.INT: kernel.int_ops,
                Component.SHARED: kernel.shared_bytes,
                Component.DRAM: kernel.dram_bytes,
            }
            dominant.add(max(work, key=work.get))
        assert len(dominant) >= 3


class TestModelGeneralization:
    def test_random_population_stays_in_band(self, lab):
        """MAE on 20 random workloads over a 6-configuration spread stays
        within the paper's Maxwell band (+ a small margin for the random
        population's harder corners)."""
        device = "GTX Titan X"
        workloads = generate_workloads(20, seed_label="band")
        configs = [
            FrequencyConfig(core, memory)
            for core in (595, 975, 1164)
            for memory in (3505, 810)
        ]
        result = validate_model(
            lab.model(device), lab.session(device), workloads, configs
        )
        assert result.mean_absolute_error_percent < 9.0

    def test_second_population_confirms(self, lab):
        device = "GTX Titan X"
        workloads = generate_workloads(20, seed_label="confirm")
        configs = [GTX_TITAN_X.reference, FrequencyConfig(785, 3300)]
        result = validate_model(
            lab.model(device), lab.session(device), workloads, configs
        )
        assert result.mean_absolute_error_percent < 8.0
