"""Unit and property tests for the zero-copy columnar transport (ISSUE 6).

Covers the pieces under the sharded executor's bitwise contract that the
differential harness (``test_parallel_equivalence.py``) exercises only
end-to-end:

* the quality-flag bitmask codec (``encode_quality``/``decode_quality``),
* packed-bytes and shared-memory column round-trips,
* ``/dev/shm`` hygiene — no leaked segments after clean runs, injected
  shard failures, or a genuinely crashed worker process,
* the adaptive planner (``workers="auto"``, small-grid fallback, shard
  width, transport choice) and the whole-kernel-row partition,
* column blocks -> :class:`TrainingDataset` -> rows materialization
  (hypothesis: bitwise equal to a rows-built dataset),
* the persistent shared worker pool's reuse/growth/replacement rules.
"""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MASTER_SEED
from repro.core.dataset import (
    DatasetColumns,
    TrainingDataset,
    TrainingRow,
    collect_campaign,
)
from repro.core.metrics import ALL_COMPONENTS, UtilizationVector
from repro.driver import faults as faultlib
from repro.driver.faults import FaultPlan
from repro.driver.session import ProfilingSession
from repro.errors import ValidationError
from repro.hardware.gpu import SimulatedGPU
from repro.hardware.specs import GTX_TITAN_X, FrequencyConfig
from repro.microbench import build_suite
from repro.parallel import (
    FALLBACK_MIN_CELLS,
    SHM_MIN_CELLS,
    ArenaHandle,
    ColumnArena,
    WorkerPool,
    collect_campaign_sharded,
    pack_columns,
    partition_kernel_rows,
    plan_campaign,
    resolve_workers,
    should_fallback,
    unpack_columns,
    usable_cpu_count,
)
from repro.parallel import pool as poollib
from repro.parallel.transport import BlobArena, read_blob, write_arena_slice
from repro.telemetry import TraceRecorder

TIER_KERNELS = 10
TIER_CONFIGS = 8


def tier_kernels():
    return build_suite()[:TIER_KERNELS]


def tier_configs(spec):
    configs = spec.all_configurations()
    chosen = [spec.reference]
    stride = max(1, len(configs) // TIER_CONFIGS)
    for config in configs[::stride]:
        if config != spec.reference and len(chosen) < TIER_CONFIGS:
            chosen.append(config)
    return tuple(chosen)


def make_session(spec, chaos: bool, recorder=None) -> ProfilingSession:
    fault_plan = (
        FaultPlan.transient(0.05, seed=MASTER_SEED) if chaos else None
    )
    if recorder is None:
        gpu = SimulatedGPU(spec, fault_plan=fault_plan)
    else:
        gpu = SimulatedGPU(spec, fault_plan=fault_plan, recorder=recorder)
    return ProfilingSession(gpu)


# ----------------------------------------------------------------------
# Quality bitmask codec
# ----------------------------------------------------------------------
_READABLE_FLAGS = (
    faultlib.RETRIED,
    faultlib.THROTTLE_INJECTED,
    faultlib.DROPOUTS,
)


class TestQualityCodec:
    @given(
        flags=st.sets(st.sampled_from(_READABLE_FLAGS)),
        order_seed=st.randoms(use_true_random=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_round_trip_is_order_canonical(self, flags, order_seed):
        shuffled = list(flags)
        order_seed.shuffle(shuffled)
        code = faultlib.encode_quality(shuffled)
        decoded = faultlib.decode_quality(code)
        # Decoding yields the canonical emission order, independent of the
        # order the flags were encoded in.
        assert decoded == tuple(
            flag for flag in _READABLE_FLAGS if flag in flags
        )
        assert faultlib.encode_quality(decoded) == code

    @given(code=st.integers(min_value=0, max_value=7))
    @settings(max_examples=16, deadline=None)
    def test_every_readable_code_round_trips(self, code):
        assert faultlib.encode_quality(faultlib.decode_quality(code)) == code

    def test_unreadable_travels_alone(self):
        code = faultlib.encode_quality((faultlib.UNREADABLE,))
        assert faultlib.decode_quality(code) == (faultlib.UNREADABLE,)
        with pytest.raises(ValueError, match="no other quality flag"):
            faultlib.decode_quality(
                code | faultlib.QUALITY_BITS[faultlib.RETRIED]
            )

    def test_bad_inputs_raise(self):
        with pytest.raises(ValueError, match="unknown quality flag"):
            faultlib.encode_quality(("made-up",))
        with pytest.raises(ValueError, match="out of range"):
            faultlib.decode_quality(16)
        with pytest.raises(ValueError):
            faultlib.decode_quality(-1)


# ----------------------------------------------------------------------
# Column transport round-trips
# ----------------------------------------------------------------------
def _random_columns(rng: np.random.Generator, n: int):
    watts = rng.normal(150.0, 40.0, size=n)
    core = rng.choice([405.0, 810.0, 1202.0], size=n)
    memory = rng.choice([810.0, 3505.0], size=n)
    quality = rng.integers(0, 8, size=n, dtype=np.uint8)
    return watts, core, memory, quality


class TestPackedColumns:
    @given(n=st.integers(min_value=0, max_value=64), seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=50, deadline=None)
    def test_pack_unpack_is_bitwise(self, n, seed):
        watts, core, memory, quality = _random_columns(
            np.random.default_rng(seed), n
        )
        block = unpack_columns(pack_columns(watts, core, memory, quality))
        assert block.watts.tobytes() == watts.tobytes()
        assert block.core_mhz.tobytes() == core.tobytes()
        assert block.memory_mhz.tobytes() == memory.tobytes()
        assert block.quality.tobytes() == quality.tobytes()

    def test_ragged_payload_rejected(self):
        with pytest.raises(ValidationError, match="not a"):
            unpack_columns(b"\x00" * 26)


class TestColumnArena:
    def test_shard_slices_reassemble_bitwise(self):
        rng = np.random.default_rng(7)
        n = 40
        watts, core, memory, quality = _random_columns(rng, n)
        with ColumnArena(n) as arena:
            # Two "workers" writing disjoint slices, out of order.
            for start, stop in ((24, 40), (0, 24)):
                write_arena_slice(
                    arena.handle,
                    start,
                    watts[start:stop],
                    core[start:stop],
                    memory[start:stop],
                    quality[start:stop],
                )
            block = arena.read()
        assert block.watts.tobytes() == watts.tobytes()
        assert block.core_mhz.tobytes() == core.tobytes()
        assert block.memory_mhz.tobytes() == memory.tobytes()
        assert block.quality.tobytes() == quality.tobytes()

    def test_out_of_bounds_slice_rejected(self):
        ones = np.ones(4)
        with ColumnArena(8) as arena:
            with pytest.raises(ValidationError, match="exceeds arena"):
                write_arena_slice(
                    arena.handle, 6, ones, ones, ones, ones.astype(np.uint8)
                )

    def test_destroy_is_idempotent_and_unlinks(self):
        arena = ColumnArena(16)
        with pytest.raises(ValidationError, match="not open"):
            arena.handle
        with arena:
            name = arena.handle.name
            assert name.lstrip("/") in os.listdir("/dev/shm")
        assert name.lstrip("/") not in os.listdir("/dev/shm")
        arena.destroy()  # second destroy is a no-op

    def test_rejects_empty_arena(self):
        with pytest.raises(ValidationError, match="at least one cell"):
            ColumnArena(0)

    def test_stale_handle_write_fails_cleanly(self):
        with ColumnArena(4) as arena:
            handle = arena.handle
        ones = np.ones(4)
        with pytest.raises(FileNotFoundError):
            write_arena_slice(
                handle, 0, ones, ones, ones, ones.astype(np.uint8)
            )


# ----------------------------------------------------------------------
# Blob arena (shared immutable artifacts for the serving fleet)
# ----------------------------------------------------------------------
class TestBlobArena:
    def test_round_trip_is_bitwise(self):
        payload = np.random.default_rng(5).bytes(10_000)
        with BlobArena(payload) as arena:
            assert read_blob(arena.handle) == payload

    def test_logical_size_survives_page_rounding(self):
        # /dev/shm segments are page-rounded; the handle must carry the
        # payload's true length so readers never see padding bytes.
        payload = b"short"
        with BlobArena(payload) as arena:
            assert arena.handle.size == len(payload)
            assert read_blob(arena.handle) == payload

    def test_open_is_idempotent(self):
        arena = BlobArena(b"abc")
        try:
            assert arena.open() == arena.open() == arena.handle
        finally:
            arena.destroy()

    def test_destroy_is_idempotent_and_unlinks(self):
        before = _shm_segments()
        arena = BlobArena(b"payload")
        arena.open()
        assert _shm_segments() != before
        arena.destroy()
        arena.destroy()
        assert _shm_segments() == before

    def test_destroyed_arena_cannot_reopen(self):
        arena = BlobArena(b"payload")
        arena.open()
        arena.destroy()
        with pytest.raises(ValidationError, match="destroyed"):
            arena.open()

    def test_handle_requires_open(self):
        with pytest.raises(ValidationError, match="not open"):
            BlobArena(b"payload").handle

    def test_empty_payload_rejected(self):
        with pytest.raises(ValidationError, match="non-empty"):
            BlobArena(b"")

    def test_stale_handle_read_fails_cleanly(self):
        arena = BlobArena(b"data")
        handle = arena.open()
        arena.destroy()
        with pytest.raises(FileNotFoundError):
            read_blob(handle)

    def test_worker_crash_cannot_unlink_parent_segment(self):
        """A forked reader that dies hard must not take the segment with
        it — the resource-tracker suppression in read_blob is what keeps
        the parent's artifact alive (same discipline as the column arena).
        """
        import multiprocessing

        before = _shm_segments()
        with BlobArena(b"artifact-bytes" * 64) as arena:
            handle = arena.handle

            def read_then_die(handle=handle):  # pragma: no cover - child
                read_blob(handle)
                os._exit(13)

            process = multiprocessing.get_context().Process(
                target=read_then_die
            )
            process.start()
            process.join(timeout=10.0)
            assert process.exitcode == 13
            # The parent can still read its own segment afterwards.
            assert read_blob(handle) == b"artifact-bytes" * 64
        assert _shm_segments() == before


# ----------------------------------------------------------------------
# /dev/shm hygiene across the executor
# ----------------------------------------------------------------------
def _shm_segments():
    return {name for name in os.listdir("/dev/shm") if name.startswith("psm_")}


def _crash_hard(*args, **kwargs):  # pragma: no cover - runs in a subprocess
    os._exit(13)


class TestNoShmLeaks:
    def test_clean_campaign_leaves_no_segments(self):
        before = _shm_segments()
        session = make_session(GTX_TITAN_X, True)
        serial_session = make_session(GTX_TITAN_X, True)
        dataset, report = collect_campaign_sharded(
            session,
            tier_kernels(),
            tier_configs(GTX_TITAN_X),
            workers=2,
            transport="shm",
        )
        serial_dataset, serial_report = collect_campaign(
            serial_session, tier_kernels(), tier_configs(GTX_TITAN_X)
        )
        # Forcing the arena below SHM_MIN_CELLS must not change a bit.
        assert dataset == serial_dataset
        assert report == serial_report
        assert _shm_segments() == before

    def test_all_shards_failing_leaves_no_segments(self):
        before = _shm_segments()
        session = make_session(GTX_TITAN_X, False)
        with pytest.raises(ValidationError, match="no usable rows"):
            collect_campaign_sharded(
                session,
                tier_kernels(),
                tier_configs(GTX_TITAN_X),
                workers=2,
                shard_size=TIER_CONFIGS,
                fail_shards=set(range(TIER_KERNELS)),
                transport="shm",
            )
        assert _shm_segments() == before

    def test_crashed_worker_process_leaves_no_segments(self, monkeypatch):
        """A worker that dies mid-task (BrokenProcessPool) must not leak.

        The task function is patched to ``os._exit`` before the pool forks,
        so every shard dies with its process; the parent degrades them all
        to skipped kernels, raises, and still unlinks the arena.
        """
        from concurrent.futures import ProcessPoolExecutor

        from repro.parallel import worker as workerlib

        monkeypatch.setattr(workerlib, "run_shard_columns", _crash_hard)
        before = _shm_segments()
        session = make_session(GTX_TITAN_X, False)
        with ProcessPoolExecutor(max_workers=2) as crashing_pool:
            with pytest.raises(ValidationError, match="no usable rows"):
                collect_campaign_sharded(
                    session,
                    tier_kernels(),
                    tier_configs(GTX_TITAN_X),
                    workers=2,
                    executor=crashing_pool,
                    transport="shm",
                )
        assert session.recorder is not None  # session intact after failure
        assert _shm_segments() == before


# ----------------------------------------------------------------------
# Planner
# ----------------------------------------------------------------------
class TestPlanner:
    def test_resolve_workers(self):
        assert resolve_workers(3) == 3
        assert resolve_workers("auto") == usable_cpu_count()
        assert resolve_workers("auto") >= 1
        for bad in (0, -2, "three"):
            with pytest.raises(ValidationError):
                resolve_workers(bad)

    def test_should_fallback(self):
        # Grids below the cell threshold, or fewer than two workers,
        # stay serial.
        assert should_fallback(10, 8, 2)  # 80 cells
        assert should_fallback(83, 64, 1)  # single worker
        assert not should_fallback(83, 64, 2)  # 5312 cells
        assert FALLBACK_MIN_CELLS <= SHM_MIN_CELLS

    def test_adaptive_width_scales_with_grid(self):
        small = plan_campaign(10, 8, 2)
        assert small.shard_kernels == 3  # ceil(10 / 4)
        assert small.transport == "bytes"
        big = plan_campaign(83, 64, 2)
        assert big.shard_kernels == 4  # capped at the legacy default
        assert big.transport == "shm"
        assert big.workers == 2

    def test_explicit_shard_size_rounds_to_whole_rows(self):
        plan = plan_campaign(10, 8, 2, shard_size=20)
        assert plan.shard_kernels == 2  # 20 cells // 8 configs
        assert plan_campaign(10, 8, 2, shard_size=3).shard_kernels == 1
        with pytest.raises(ValidationError):
            plan_campaign(10, 8, 2, shard_size=0)

    def test_transport_override_validated(self):
        assert plan_campaign(10, 8, 2, transport="shm").transport == "shm"
        assert plan_campaign(83, 64, 2, transport="bytes").transport == "bytes"
        with pytest.raises(ValidationError, match="transport"):
            plan_campaign(10, 8, 2, transport="carrier-pigeon")

    @given(
        n_kernels=st.integers(min_value=1, max_value=120),
        shard_kernels=st.integers(min_value=1, max_value=16),
        n_configs=st.integers(min_value=1, max_value=80),
    )
    @settings(max_examples=200, deadline=None)
    def test_row_partition_is_a_disjoint_cover(
        self, n_kernels, shard_kernels, n_configs
    ):
        shards = partition_kernel_rows(n_kernels, shard_kernels)
        assert [s.index for s in shards] == list(range(len(shards)))
        covered = [
            k
            for s in shards
            for k in range(s.kernel_start, s.kernel_start + s.kernel_count)
        ]
        assert covered == list(range(n_kernels))
        # Row ranges tile the flattened kernel-major grid contiguously.
        ranges = [s.row_range(n_configs) for s in shards]
        assert ranges[0][0] == 0
        assert ranges[-1][1] == n_kernels * n_configs
        for (_, stop), (start, _) in zip(ranges, ranges[1:]):
            assert stop == start

    def test_row_partition_rejects_bad_arguments(self):
        with pytest.raises(ValidationError):
            partition_kernel_rows(-1, 4)
        with pytest.raises(ValidationError):
            partition_kernel_rows(4, 0)


# ----------------------------------------------------------------------
# Column blocks -> TrainingDataset -> rows
# ----------------------------------------------------------------------
_GRID = (
    FrequencyConfig(405.0, 810.0),
    FrequencyConfig(810.0, 3505.0),
    FrequencyConfig(1202.0, 3505.0),
)


def _utilization(rng: np.random.Generator) -> UtilizationVector:
    return UtilizationVector(
        {c: float(rng.uniform(0.0, 1.0)) for c in ALL_COMPONENTS}
    )


class TestColumnsToDataset:
    @given(
        seed=st.integers(0, 2**32 - 1),
        n_kernels=st.integers(min_value=1, max_value=4),
        rows_per_kernel=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=50, deadline=None)
    def test_materialized_rows_match_hand_built(
        self, seed, n_kernels, rows_per_kernel
    ):
        rng = np.random.default_rng(seed)
        names = tuple(f"kernel_{i}" for i in range(n_kernels))
        utilizations = tuple(_utilization(rng) for _ in range(n_kernels))
        n = n_kernels * rows_per_kernel
        kernel_indices = np.repeat(np.arange(n_kernels), rows_per_kernel)
        config_picks = rng.integers(0, len(_GRID), size=n)
        watts = rng.normal(150.0, 40.0, size=n)
        quality = rng.integers(0, 8, size=n, dtype=np.uint8)
        columns = DatasetColumns(
            kernel_names=names,
            utilizations=utilizations,
            kernel_indices=kernel_indices,
            core_mhz=np.asarray([_GRID[i].core_mhz for i in config_picks]),
            memory_mhz=np.asarray(
                [_GRID[i].memory_mhz for i in config_picks]
            ),
            measured_watts=watts,
            quality_codes=quality,
        )
        expected = tuple(
            TrainingRow(
                kernel_name=names[int(kernel_indices[r])],
                config=_GRID[int(config_picks[r])],
                measured_watts=float(watts[r]),
                utilizations=utilizations[int(kernel_indices[r])],
                quality=faultlib.decode_quality(int(quality[r])),
            )
            for r in range(n)
        )
        dataset = TrainingDataset(spec=GTX_TITAN_X, columns=columns)
        assert dataset.rows == expected
        assert dataset.row_count() == n
        # The columnar dataset is indistinguishable from a rows-built one:
        # equality, pickling and the SoA accessors all agree.
        twin = TrainingDataset(spec=GTX_TITAN_X, rows=expected)
        assert dataset == twin
        clone = pickle.loads(pickle.dumps(dataset))
        assert clone == dataset
        assert np.array_equal(dataset.measured_vector(), twin.measured_vector())

    def test_unreadable_rows_are_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValidationError, match="unreadable"):
            DatasetColumns(
                kernel_names=("k",),
                utilizations=(_utilization(rng),),
                kernel_indices=np.zeros(1, dtype=int),
                core_mhz=np.asarray([405.0]),
                memory_mhz=np.asarray([810.0]),
                measured_watts=np.asarray([100.0]),
                quality_codes=np.asarray(
                    [faultlib.QUALITY_BITS[faultlib.UNREADABLE]],
                    dtype=np.uint8,
                ),
            )

    def test_misaligned_columns_are_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValidationError, match="entries"):
            DatasetColumns(
                kernel_names=("k",),
                utilizations=(_utilization(rng),),
                kernel_indices=np.zeros(2, dtype=int),
                core_mhz=np.asarray([405.0]),
                memory_mhz=np.asarray([810.0]),
                measured_watts=np.asarray([100.0]),
                quality_codes=np.zeros(1, dtype=np.uint8),
            )


# ----------------------------------------------------------------------
# Transport equivalence: shm vs bytes vs serial
# ----------------------------------------------------------------------
@pytest.mark.parametrize("transport", ["shm", "bytes"])
def test_transport_never_changes_the_campaign(transport):
    serial = collect_campaign(
        make_session(GTX_TITAN_X, True),
        tier_kernels(),
        tier_configs(GTX_TITAN_X),
    )
    sharded = collect_campaign_sharded(
        make_session(GTX_TITAN_X, True),
        tier_kernels(),
        tier_configs(GTX_TITAN_X),
        workers=2,
        transport=transport,
    )
    assert sharded[0] == serial[0]
    assert sharded[1] == serial[1]


# ----------------------------------------------------------------------
# Small-grid fallback
# ----------------------------------------------------------------------
class TestFallback:
    def test_small_grid_falls_back_to_serial_with_counter(self):
        recorder = TraceRecorder()
        session = make_session(GTX_TITAN_X, True, recorder=recorder)
        serial_dataset, serial_report = collect_campaign(
            make_session(GTX_TITAN_X, True),
            tier_kernels(),
            tier_configs(GTX_TITAN_X),
        )
        dataset, report = collect_campaign(
            session,
            tier_kernels(),
            tier_configs(GTX_TITAN_X),
            workers=2,
        )
        assert recorder.counters()["parallel.fallback"] == 1
        assert dataset == serial_dataset

    def test_auto_workers_resolve_through_the_campaign(self):
        # "auto" on a small grid resolves and falls back serially; the
        # result must still be the plain serial campaign's.
        serial_dataset, _ = collect_campaign(
            make_session(GTX_TITAN_X, False),
            tier_kernels(),
            tier_configs(GTX_TITAN_X),
        )
        dataset, _ = collect_campaign(
            make_session(GTX_TITAN_X, False),
            tier_kernels(),
            tier_configs(GTX_TITAN_X),
            workers="auto",
        )
        assert dataset == serial_dataset

    def test_fallback_mode_is_validated(self):
        session = make_session(GTX_TITAN_X, False)
        with pytest.raises(ValidationError, match="fallback"):
            collect_campaign(
                session, tier_kernels(), workers=2, fallback="sometimes"
            )

    def test_cli_workers_argument_parser(self):
        import argparse

        from repro.cli import _workers_arg

        assert _workers_arg("auto") == "auto"
        assert _workers_arg("4") == 4
        for bad in ("0", "-1", "many"):
            with pytest.raises(argparse.ArgumentTypeError):
                _workers_arg(bad)


# ----------------------------------------------------------------------
# Persistent shared pool
# ----------------------------------------------------------------------
class TestSharedPool:
    def test_reuse_growth_and_broken_replacement(self):
        poollib.shutdown_shared_pool()
        try:
            first = poollib.shared_pool(2)
            assert poollib.shared_pool(2) is first
            # A smaller request reuses the existing, bigger pool.
            assert poollib.shared_pool(1) is first
            grown = poollib.shared_pool(4)
            assert grown is not first
            assert grown.workers == 4
            grown.broken = True
            replaced = poollib.shared_pool(2)
            assert replaced is not grown
            assert not replaced.broken
        finally:
            poollib.shutdown_shared_pool()

    def test_worker_count_validated(self):
        with pytest.raises(ValidationError):
            WorkerPool(0)

    def test_shutdown_without_start_is_safe(self):
        pool = WorkerPool(2)
        pool.shutdown()  # never started an executor
        assert pool._executor is None
