"""Property suite for the technology-scaling tables and device families.

The generator's contract is that every member it emits is a *valid* device
(the spec constructor's invariants hold), that its grids and physics follow
the scaling table exactly, and that generation is bitwise deterministic —
the same (master seed, coordinates) always yields the same member, across
processes and through pickle. Hypothesis drives the coordinates; the
fixed-fleet and integration checks ride the shared Lab.
"""

from __future__ import annotations

import json
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RegistryError, SpecError
from repro.hardware.custom import scaled_ground_truth
from repro.hardware.families import (
    SENSOR_PERIODS_MS,
    DeviceFamily,
    FamilyMember,
    _scale_watts,
    saturated_draw_watts,
    standard_members,
)
from repro.hardware.scaling import (
    BASE_NODE,
    CONSERVATIVE,
    ITRS,
    SCALING_TABLES,
    TECH_NODES,
    ScalingTable,
    scaling_table,
)
from repro.hardware.specs import GTX_TITAN_X, TESLA_K40C, TITAN_XP
from repro.serialization import (
    family_member_from_dict,
    family_member_to_dict,
    load_family_member,
    save_family_member,
)
from repro.serving.registry import FAMILY_KIND, ModelRegistry

SEED_SPECS = (TITAN_XP, GTX_TITAN_X, TESLA_K40C)
TABLES = (ITRS, CONSERVATIVE)

seed_specs = st.sampled_from(SEED_SPECS)
tables = st.sampled_from(TABLES)
nodes = st.sampled_from(TECH_NODES)
sm_counts = st.integers(min_value=4, max_value=64)
master_seeds = st.integers(min_value=0, max_value=2**31 - 1)


# ----------------------------------------------------------------------
# Scaling tables
# ----------------------------------------------------------------------
class TestScalingTables:
    @pytest.mark.parametrize("table", TABLES, ids=lambda t: t.name)
    def test_power_column_strictly_decreases(self, table):
        powers = [table.power(node) for node in TECH_NODES]
        assert all(b < a for a, b in zip(powers, powers[1:]))

    @pytest.mark.parametrize("table", TABLES, ids=lambda t: t.name)
    def test_vdd_column_never_increases(self, table):
        vdds = [table.vdd(node) for node in TECH_NODES]
        assert all(b <= a for a, b in zip(vdds, vdds[1:]))

    @pytest.mark.parametrize("table", TABLES, ids=lambda t: t.name)
    def test_base_node_is_identity(self, table):
        factors = table.factors(BASE_NODE)
        assert (factors.vdd, factors.frequency, factors.power) == (1, 1, 1)
        assert factors.area == 1.0

    @pytest.mark.parametrize("table", TABLES, ids=lambda t: t.name)
    def test_area_halves_per_node(self, table):
        for index, node in enumerate(TECH_NODES):
            assert table.area(node) == pytest.approx(0.5**index)

    def test_lookup_by_name_and_alias(self):
        assert scaling_table("itrs") is ITRS
        assert scaling_table("ITRS") is ITRS
        assert scaling_table(" conservative ") is CONSERVATIVE
        assert scaling_table("cons") is CONSERVATIVE
        assert set(SCALING_TABLES) == {"itrs", "conservative", "cons"}

    def test_unknown_table_raises(self):
        with pytest.raises(SpecError, match="unknown scaling table"):
            scaling_table("moore")

    def test_unknown_node_raises(self):
        with pytest.raises(SpecError, match="no 7 nm node"):
            ITRS.factors(7)

    def test_incomplete_column_rejected(self):
        vdd = {node: 1.0 if node == BASE_NODE else 0.9 for node in TECH_NODES}
        freq = dict(vdd)
        power = {
            node: 1.0 / (index + 1) for index, node in enumerate(TECH_NODES)
        }
        del freq[8]
        with pytest.raises(SpecError, match="missing"):
            ScalingTable("partial", vdd, freq, power)

    def test_non_monotone_power_rejected(self):
        vdd = {node: 1.0 if node == BASE_NODE else 0.9 for node in TECH_NODES}
        power = {45: 1.0, 32: 0.7, 22: 0.8, 16: 0.5, 11: 0.4, 8: 0.3}
        with pytest.raises(SpecError, match="strictly"):
            ScalingTable("bumpy", vdd, dict(vdd), power)

    def test_unnormalized_base_rejected(self):
        vdd = {node: 0.9 for node in TECH_NODES}
        power = {
            node: 1.0 / (index + 1) for index, node in enumerate(TECH_NODES)
        }
        power[BASE_NODE] = 1.0
        with pytest.raises(SpecError, match="must be 1.0"):
            ScalingTable("off-base", vdd, dict(vdd), power)


# ----------------------------------------------------------------------
# Member generation properties
# ----------------------------------------------------------------------
class TestMemberProperties:
    @given(seed=seed_specs, table=tables, node=nodes, sm=sm_counts)
    @settings(max_examples=60, deadline=None)
    def test_generated_spec_is_valid(self, seed, table, node, sm):
        """Construction succeeding IS the spec validating (GPUSpec's
        __post_init__ runs); on top, the grid invariants the campaign
        machinery leans on hold at every coordinate."""
        member = DeviceFamily(seed, table).member(node, sm_count=sm)
        spec = member.spec
        assert spec.sm_count == sm
        assert spec.default_core_mhz in spec.core_frequencies_mhz
        assert spec.default_memory_mhz in spec.memory_frequencies_mhz
        assert len(set(spec.core_frequencies_mhz)) == len(
            spec.core_frequencies_mhz
        )
        assert spec.tdp_watts > 0
        assert spec.nvml_refresh_ms in SENSOR_PERIODS_MS
        assert len(spec.memory_frequencies_mhz) == min(
            2, len(seed.memory_frequencies_mhz)
        )
        assert f"{node}nm" in spec.name
        assert 0.84 <= member.voltage_flat_level <= 0.92
        assert 0.45 <= member.voltage_breakpoint_fraction <= 0.65

    @given(seed=seed_specs, table=tables, node=nodes)
    @settings(max_examples=40, deadline=None)
    def test_frequencies_scale_per_table(self, seed, table, node):
        member = DeviceFamily(seed, table).member(node)
        factor = table.frequency(node)
        spec = member.spec
        assert spec.default_core_mhz == round(seed.default_core_mhz * factor)
        assert spec.default_memory_mhz == round(
            seed.default_memory_mhz * factor
        )
        low = round(min(seed.core_frequencies_mhz) * factor)
        high = round(max(seed.core_frequencies_mhz) * factor)
        assert low - 1 <= min(spec.core_frequencies_mhz)
        assert max(spec.core_frequencies_mhz) <= high + 1

    @given(seed=seed_specs, table=tables, node=nodes, sm=sm_counts)
    @settings(max_examples=40, deadline=None)
    def test_hidden_power_follows_power_factor(self, seed, table, node, sm):
        """The member's ground truth is exactly the throughput-scaled
        Maxwell calibration shrunk by the node's power factor — so across
        nodes the per-circuit draw inherits the table's strictly-decreasing
        power column."""
        member = DeviceFamily(seed, table).member(node, sm_count=sm)
        expected = _scale_watts(
            scaled_ground_truth(member.spec), table.power(node)
        )
        assert member.parameters.static_core_watts == pytest.approx(
            expected.static_core_watts
        )
        assert member.parameters.issue_full_watts == pytest.approx(
            expected.issue_full_watts
        )
        for component, watts in expected.dynamic_full_watts.items():
            assert member.parameters.dynamic_full_watts[
                component
            ] == pytest.approx(watts)
        assert member.spec.tdp_watts == pytest.approx(
            round(
                member.tdp_headroom * saturated_draw_watts(member.parameters),
                1,
            )
        )

    @given(
        seed=seed_specs,
        table=tables,
        node=nodes,
        sm=sm_counts,
        master=master_seeds,
    )
    @settings(max_examples=40, deadline=None)
    def test_same_seed_generation_is_bitwise_deterministic(
        self, seed, table, node, sm, master
    ):
        first = DeviceFamily(seed, table, master_seed=master).member(
            node, sm_count=sm
        )
        second = DeviceFamily(seed, table, master_seed=master).member(
            node, sm_count=sm
        )
        assert first == second
        assert pickle.dumps(first) == pickle.dumps(second)

    @given(seed=seed_specs, table=tables, node=nodes)
    @settings(max_examples=25, deadline=None)
    def test_member_pickle_round_trip(self, seed, table, node):
        member = DeviceFamily(seed, table).member(node)
        clone = pickle.loads(pickle.dumps(member))
        assert clone == member
        assert clone.spec == member.spec
        assert clone.voltage_table() == member.voltage_table()

    @given(seed=seed_specs, table=tables, node=nodes)
    @settings(max_examples=15, deadline=None)
    def test_device_spec_closure_round_trips(self, seed, table, node):
        """The sharded executor ships members as pickled DeviceSpec
        closures; a worker must rebuild the identical board."""
        member = DeviceFamily(seed, table).member(node)
        device_spec = pickle.loads(pickle.dumps(member.device_spec()))
        gpu = device_spec.build_gpu()
        assert gpu.spec == member.spec

    def test_invalid_coordinates_rejected(self):
        family = DeviceFamily(GTX_TITAN_X, ITRS)
        with pytest.raises(SpecError, match="sm_count"):
            family.member(22, sm_count=0)
        with pytest.raises(SpecError, match="memory_domains"):
            family.member(22, memory_domains=99)
        with pytest.raises(SpecError, match="tdp_headroom"):
            family.member(22, tdp_headroom=0.0)
        with pytest.raises(SpecError, match="core_span"):
            family.member(22, core_span=1.5)

    def test_master_seed_changes_draws(self):
        base = DeviceFamily(GTX_TITAN_X, ITRS, master_seed=0).member(22)
        other = DeviceFamily(GTX_TITAN_X, ITRS, master_seed=1).member(22)
        assert (
            base.voltage_flat_level,
            base.voltage_breakpoint_fraction,
            base.spec.nvml_refresh_ms,
        ) != (
            other.voltage_flat_level,
            other.voltage_breakpoint_fraction,
            other.spec.nvml_refresh_ms,
        )


# ----------------------------------------------------------------------
# Serialization and registry
# ----------------------------------------------------------------------
class TestFamilySerialization:
    @given(seed=seed_specs, table=tables, node=nodes)
    @settings(max_examples=20, deadline=None)
    def test_document_round_trip(self, seed, table, node):
        member = DeviceFamily(seed, table).member(node)
        document = json.loads(json.dumps(family_member_to_dict(member)))
        assert family_member_from_dict(document) == member

    def test_file_round_trip(self, tmp_path):
        member = standard_members()[0]
        path = tmp_path / "member.json"
        save_family_member(member, path)
        assert load_family_member(path) == member

    def test_registry_publish_and_load(self, tmp_path):
        member = standard_members()[0]
        registry = ModelRegistry(tmp_path)
        record = registry.publish(member)
        assert record.kind == FAMILY_KIND
        assert record.device == member.spec.name
        assert record.configurations == len(member.spec.all_configurations())
        loaded, loaded_record = registry.load(record.name)
        assert isinstance(loaded, FamilyMember)
        assert loaded == member
        assert loaded_record.version == 1
        # Idempotent re-publish: identical bytes mint no new version.
        assert registry.publish(member).version == 1

    def test_registry_refuses_kind_mixing(self, tmp_path, lab):
        member = standard_members()[0]
        registry = ModelRegistry(tmp_path)
        record = registry.publish(member)
        with pytest.raises(RegistryError, match="refusing"):
            registry.publish(lab.model("GTX Titan X"), name=record.name)


# ----------------------------------------------------------------------
# The standard fleet and Lab integration
# ----------------------------------------------------------------------
class TestStandardFleet:
    def test_fleet_shape(self):
        members = standard_members()
        assert len(members) == 7
        assert len({m.name for m in members}) == 7
        assert len({m.node_nm for m in members}) >= 5
        capped = [m for m in members if m.power_capped]
        assert len(capped) == 1
        assert capped[0].seed_device == "Tesla K40c"
        assert len(capped[0].spec.memory_frequencies_mhz) == 1
        assert capped[0].spec.tdp_watts < saturated_draw_watts(
            capped[0].parameters
        )

    def test_fleet_is_deterministic(self):
        assert standard_members() == standard_members()
        assert pickle.dumps(standard_members()) == pickle.dumps(
            standard_members()
        )

    def test_lab_resolves_registered_member(self, lab):
        member = standard_members()[0]
        name = lab.register_member(member)
        assert lab.spec(name) == member.spec
        assert lab.spec(name.upper()) == member.spec
        gpu = lab.gpu(name)
        assert gpu.spec == member.spec
        assert lab.session(name).gpu is gpu

    def test_cluster_oracle_and_mixed_fleet(self, lab):
        """A synthetic member drops into the cluster simulator next to a
        real device — DeviceOracle.fit resolves it through the Lab."""
        from repro.cluster import DeviceOracle, build_fleet

        member = standard_members()[-1]
        name = lab.register_member(member)
        kernels = tuple(lab.workloads(name))[:3]
        synthetic = DeviceOracle.fit(name, kernels, lab=lab)
        real = DeviceOracle.fit("GTX Titan X", kernels, lab=lab)
        nodes = build_fleet(
            {name: synthetic, "GTX Titan X": real},
            {name: 1, "GTX Titan X": 1},
        )
        assert len(nodes) == 2
        devices = {node.oracle.device_name for node in nodes}
        assert devices == {name, "GTX Titan X"}
