"""Unit tests for training-data collection (:mod:`repro.core.dataset`)."""

from __future__ import annotations

import pytest

from repro.config import NOISELESS_SETTINGS
from repro.core.dataset import TrainingDataset, collect_training_dataset
from repro.driver.session import ProfilingSession
from repro.errors import ValidationError
from repro.hardware.gpu import SimulatedGPU
from repro.hardware.specs import FrequencyConfig, GTX_TITAN_X
from repro.microbench import suite_group


@pytest.fixture(scope="module")
def small_dataset() -> TrainingDataset:
    """SP + DRAM ladders over a 2x2 grid — fast but representative."""
    session = ProfilingSession(
        SimulatedGPU(GTX_TITAN_X, settings=NOISELESS_SETTINGS)
    )
    kernels = suite_group("sp") + suite_group("dram")
    configs = [
        FrequencyConfig(975, 3505),
        FrequencyConfig(595, 3505),
        FrequencyConfig(975, 810),
        FrequencyConfig(595, 810),
    ]
    return collect_training_dataset(session, kernels, configs)


class TestCollection:
    def test_row_count(self, small_dataset):
        assert len(small_dataset.rows) == (11 + 12) * 4

    def test_configurations_discovered(self, small_dataset):
        assert len(small_dataset.configurations()) == 4

    def test_rows_at_configuration(self, small_dataset):
        rows = small_dataset.rows_at(FrequencyConfig(595, 810))
        assert len(rows) == 23

    def test_utilizations_shared_across_configs(self, small_dataset):
        """Events are measured once, at the reference (Sec. III-D): every
        row of a kernel carries the same utilization vector."""
        by_kernel = {}
        for row in small_dataset.rows:
            by_kernel.setdefault(row.kernel_name, []).append(row.utilizations)
        for vectors in by_kernel.values():
            first = vectors[0]
            assert all(v.as_dict() == first.as_dict() for v in vectors)

    def test_power_varies_across_configs(self, small_dataset):
        watts = {
            (row.config.core_mhz, row.config.memory_mhz): row.measured_watts
            for row in small_dataset.rows
            if row.kernel_name == "dram_n000"
        }
        assert watts[(975, 3505)] > watts[(975, 810)]

    def test_measured_vector_matches_rows(self, small_dataset):
        vector = small_dataset.measured_vector()
        assert len(vector) == len(small_dataset.rows)
        assert vector[0] == small_dataset.rows[0].measured_watts

    def test_kernel_names_ordered_unique(self, small_dataset):
        names = small_dataset.kernel_names()
        assert len(names) == 23
        assert len(set(names)) == 23


class TestSubset:
    def test_subset_restricts_configs(self, small_dataset):
        subset = small_dataset.subset([FrequencyConfig(975, 3505)])
        assert len(subset.rows) == 23
        assert subset.configurations() == [FrequencyConfig(975, 3505)]

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValidationError):
            TrainingDataset(spec=GTX_TITAN_X, rows=())

    def test_collect_rejects_empty_kernel_list(self):
        session = ProfilingSession(SimulatedGPU(GTX_TITAN_X))
        with pytest.raises(ValidationError):
            collect_training_dataset(session, [])
