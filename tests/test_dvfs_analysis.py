"""Unit tests for the DVFS advisor (:mod:`repro.analysis.dvfs`)."""

from __future__ import annotations

import pytest

from repro.analysis.dvfs import ConfigurationScore, DVFSAdvisor
from repro.errors import ValidationError
from repro.hardware.specs import FrequencyConfig, GTX_TITAN_X
from repro.workloads import workload_by_name


@pytest.fixture(scope="module")
def advisor(lab) -> DVFSAdvisor:
    device = "GTX Titan X"
    return DVFSAdvisor(lab.model(device), lab.session(device))


class TestConfigurationScore:
    def test_energy(self):
        score = ConfigurationScore(
            config=FrequencyConfig(975, 3505),
            predicted_power_watts=150.0,
            time_seconds=2.0,
        )
        assert score.energy_joules == pytest.approx(300.0)
        assert score.edp == pytest.approx(600.0)

    def test_objective_dispatch(self):
        score = ConfigurationScore(
            config=FrequencyConfig(975, 3505),
            predicted_power_watts=150.0,
            time_seconds=2.0,
        )
        assert score.objective_value("power") == 150.0
        assert score.objective_value("energy") == 300.0
        assert score.objective_value("edp") == 600.0
        with pytest.raises(ValidationError):
            score.objective_value("happiness")


class TestAdvisor:
    def test_scores_cover_full_grid(self, advisor):
        scores = advisor.score_configurations(workload_by_name("cutcp"))
        assert len(scores) == 64

    def test_recommendation_beats_reference_for_compute_bound(self, advisor):
        """CUTCP barely uses DRAM: dropping the memory clock must save
        energy at almost no runtime cost."""
        kernel = workload_by_name("cutcp")
        best = advisor.recommend(kernel, objective="energy", max_slowdown=1.10)
        reference = advisor.score_configurations(
            kernel, [GTX_TITAN_X.reference]
        )[0]
        assert best.energy_joules < reference.energy_joules
        assert best.config.memory_mhz < 3505

    def test_slowdown_constraint_respected(self, advisor):
        kernel = workload_by_name("cutcp")
        reference_time = advisor.session.measure_time(
            kernel, GTX_TITAN_X.reference
        )
        best = advisor.recommend(kernel, objective="energy", max_slowdown=1.05)
        assert best.time_seconds <= reference_time * 1.05 * (1 + 1e-9)

    def test_power_objective_picks_lowest_frequencies(self, advisor):
        kernel = workload_by_name("gemm")
        best = advisor.recommend(kernel, objective="power")
        assert best.config.core_mhz == min(GTX_TITAN_X.core_frequencies_mhz)
        assert best.config.memory_mhz == min(GTX_TITAN_X.memory_frequencies_mhz)

    def test_invalid_objective_rejected(self, advisor):
        with pytest.raises(ValidationError):
            advisor.recommend(workload_by_name("gemm"), objective="speed")

    def test_invalid_slowdown_rejected(self, advisor):
        with pytest.raises(ValidationError):
            advisor.recommend(
                workload_by_name("gemm"), objective="energy", max_slowdown=0.5
            )

    def test_savings_summary_fields(self, advisor):
        summary = advisor.savings_versus_reference(
            workload_by_name("cutcp"), objective="energy", max_slowdown=1.10
        )
        assert 0.0 <= summary["objective_saving_fraction"] < 1.0
        assert summary["best_energy_joules"] > 0
        assert summary["slowdown"] >= 0.9

    def test_custom_time_estimator(self, lab):
        device = "GTX Titan X"
        advisor = DVFSAdvisor(
            lab.model(device),
            lab.session(device),
            time_estimator=lambda kernel, config: 1.0,  # frequency-blind
        )
        best = advisor.recommend(workload_by_name("gemm"), objective="energy")
        # With constant time, minimum energy = minimum power.
        assert best.config.core_mhz == min(GTX_TITAN_X.core_frequencies_mhz)
