"""Unit tests for the profiling session (:mod:`repro.driver.session`)."""

from __future__ import annotations

import pytest

from repro.driver.session import ProfilingSession
from repro.hardware.gpu import SimulatedGPU
from repro.hardware.specs import FrequencyConfig, GTX_TITAN_X
from repro.workloads import workload_by_name


@pytest.fixture()
def session() -> ProfilingSession:
    return ProfilingSession(SimulatedGPU(GTX_TITAN_X))


class TestMeasurement:
    def test_measure_power_defaults_to_reference(self, session):
        measurement = session.measure_power(workload_by_name("gemm"))
        assert measurement.applied_config == GTX_TITAN_X.reference

    def test_measure_power_sets_clocks(self, session):
        session.measure_power(workload_by_name("gemm"), FrequencyConfig(595, 810))
        assert session.nvml.application_clocks == FrequencyConfig(595, 810)

    def test_median_versus_single(self, session):
        kernel = workload_by_name("gemm")
        median = session.measure_power(kernel, median=True)
        single = session.measure_power(kernel, median=False)
        # Both are valid measurements of the same kernel...
        assert median.average_watts == pytest.approx(
            single.average_watts, rel=0.05
        )
        # ...but not byte-identical (different noise draws).
        assert median.average_watts != single.average_watts

    def test_measure_time_scales_with_core_frequency(self, session):
        kernel = workload_by_name("cutcp")  # compute-bound
        fast = session.measure_time(kernel, FrequencyConfig(1164, 3505))
        slow = session.measure_time(kernel, FrequencyConfig(595, 3505))
        assert slow > fast


class TestObserve:
    def test_observe_at_reference_includes_events(self, session):
        observation = session.observe(workload_by_name("gemm"))
        assert observation.events is not None
        assert observation.config == GTX_TITAN_X.reference

    def test_observe_elsewhere_skips_events(self, session):
        observation = session.observe(
            workload_by_name("gemm"), FrequencyConfig(595, 810)
        )
        assert observation.events is None
        assert observation.measured_watts > 0

    def test_observe_with_events_override(self, session):
        observation = session.observe(
            workload_by_name("gemm"),
            FrequencyConfig(595, 810),
            with_events=True,
        )
        assert observation.events is not None
        # Events are still collected at the reference configuration.
        assert observation.events.config == GTX_TITAN_X.reference
