"""Unit tests for the regression primitives (:mod:`repro.core.regression`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.regression import (
    fit_voltage_pair,
    isotonic_regression,
    minimize_voltage_1d,
    nonnegative_least_squares,
)
from repro.errors import EstimationError


class TestNonnegativeLeastSquares:
    def test_recovers_exact_nonnegative_solution(self):
        rng = np.random.default_rng(0)
        design = rng.uniform(0.1, 2.0, size=(50, 4))
        truth = np.asarray([1.5, 0.0, 3.0, 0.25])
        target = design @ truth
        solution = nonnegative_least_squares(design, target)
        assert solution == pytest.approx(truth, abs=1e-4)

    def test_clips_negative_tendency_to_zero(self):
        rng = np.random.default_rng(1)
        design = rng.uniform(0.1, 2.0, size=(60, 2))
        # The unconstrained solution would need a negative second weight.
        target = design @ np.asarray([2.0, -1.0])
        solution = nonnegative_least_squares(design, target)
        assert solution[1] <= 1e-4
        assert np.all(solution >= 0.0)

    def test_handles_badly_scaled_columns(self):
        """The estimator mixes O(1) and O(1000) columns; scaling must cope."""
        rng = np.random.default_rng(2)
        design = np.column_stack(
            [rng.uniform(0.8, 1.2, 200), rng.uniform(500, 2000, 200)]
        )
        truth = np.asarray([30.0, 0.05])
        solution = nonnegative_least_squares(design, design @ truth)
        assert solution == pytest.approx(truth, rel=1e-4)

    def test_handles_duplicate_columns_gracefully(self):
        """Step 1 of the estimator produces two identical static columns."""
        column = np.ones(30)
        design = np.column_stack([column, column])
        target = 10.0 * column
        solution = nonnegative_least_squares(design, target)
        assert solution.sum() == pytest.approx(10.0, rel=1e-6)
        assert np.all(solution >= 0.0)

    def test_rejects_underdetermined(self):
        with pytest.raises(EstimationError):
            nonnegative_least_squares(np.ones((2, 3)), np.ones(2))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(EstimationError):
            nonnegative_least_squares(np.ones((5, 2)), np.ones(4))


class TestIsotonicRegression:
    def test_identity_on_sorted_input(self):
        values = [0.8, 0.9, 1.0, 1.1]
        assert list(isotonic_regression(values)) == values

    def test_pools_single_violation(self):
        result = isotonic_regression([1.0, 3.0, 2.0, 4.0])
        assert list(result) == [1.0, 2.5, 2.5, 4.0]

    def test_fully_decreasing_pools_to_mean(self):
        result = isotonic_regression([3.0, 2.0, 1.0])
        assert list(result) == [2.0, 2.0, 2.0]

    def test_respects_weights(self):
        result = isotonic_regression([2.0, 1.0], weights=[3.0, 1.0])
        assert result[0] == pytest.approx(1.75)
        assert result[1] == pytest.approx(1.75)

    def test_output_is_monotone(self):
        rng = np.random.default_rng(3)
        values = rng.normal(size=100)
        result = isotonic_regression(values)
        assert np.all(np.diff(result) >= -1e-12)

    def test_idempotent(self):
        rng = np.random.default_rng(4)
        values = rng.normal(size=50)
        once = isotonic_regression(values)
        twice = isotonic_regression(once)
        assert twice == pytest.approx(once)

    def test_preserves_weighted_mean(self):
        rng = np.random.default_rng(5)
        values = rng.normal(size=30)
        result = isotonic_regression(values)
        assert result.mean() == pytest.approx(values.mean())

    def test_rejects_bad_weights(self):
        with pytest.raises(EstimationError):
            isotonic_regression([1.0, 2.0], weights=[1.0, 0.0])

    def test_rejects_2d_input(self):
        with pytest.raises(EstimationError):
            isotonic_regression(np.ones((2, 2)))


class TestVoltageSolvers:
    def test_minimize_voltage_1d_exact(self):
        """With consistent data the closed-form cubic finds the generator."""
        rng = np.random.default_rng(6)
        quadratic = rng.uniform(10, 50, 40)
        v_true = 1.12
        target = 7.0 * v_true + quadratic * v_true**2
        solution = minimize_voltage_1d(7.0, quadratic, target, (0.6, 1.6))
        assert solution == pytest.approx(v_true, abs=1e-6)

    def test_minimize_voltage_1d_respects_bounds(self):
        quadratic = np.asarray([10.0, 20.0])
        # Data generated far above the box: solver must stop at the bound.
        target = 7.0 * 3.0 + quadratic * 9.0
        solution = minimize_voltage_1d(7.0, quadratic, target, (0.6, 1.6))
        assert solution == 1.6

    def test_minimize_voltage_1d_degenerate_returns_neutral(self):
        solution = minimize_voltage_1d(
            0.0, np.zeros(5), np.zeros(5), (0.6, 1.6)
        )
        assert solution == 1.0

    def test_minimize_voltage_1d_rejects_empty(self):
        with pytest.raises(EstimationError):
            minimize_voltage_1d(1.0, np.asarray([]), np.asarray([]), (0.6, 1.6))

    def test_fit_voltage_pair_recovers_both(self):
        rng = np.random.default_rng(7)
        n = 60
        core_activity = rng.uniform(0.01, 0.08, n)
        mem_activity = rng.uniform(0.005, 0.03, n)
        beta0, beta2 = 14.0, 8.0
        fc, fm = 1164.0, 3505.0
        vc_true, vm_true = 1.08, 0.97
        measured = (
            beta0 * vc_true
            + vc_true**2 * fc * core_activity
            + beta2 * vm_true
            + vm_true**2 * fm * mem_activity
        )
        vc, vm = fit_voltage_pair(
            measured, fc, fm, beta0, beta2, core_activity, mem_activity,
            sweeps=100,
        )
        assert vc == pytest.approx(vc_true, abs=1e-3)
        assert vm == pytest.approx(vm_true, abs=1e-3)

    def test_fit_voltage_pair_shape_mismatch(self):
        with pytest.raises(EstimationError):
            fit_voltage_pair(
                np.ones(3), 975, 3505, 1.0, 1.0, np.ones(2), np.ones(3)
            )

    def test_fit_voltage_pair_robust_to_noise(self):
        rng = np.random.default_rng(8)
        n = 80
        core_activity = rng.uniform(0.01, 0.08, n)
        mem_activity = rng.uniform(0.005, 0.03, n)
        vc_true, vm_true = 0.90, 1.00
        clean = (
            14.0 * vc_true
            + vc_true**2 * 785.0 * core_activity
            + 8.0 * vm_true
            + vm_true**2 * 3505.0 * mem_activity
        )
        noisy = clean * (1 + 0.02 * rng.standard_normal(n))
        vc, vm = fit_voltage_pair(
            noisy, 785.0, 3505.0, 14.0, 8.0, core_activity, mem_activity
        )
        assert vc == pytest.approx(vc_true, abs=0.05)
        assert vm == pytest.approx(vm_true, abs=0.05)
