"""Unit tests for the hidden ground-truth power model
(:mod:`repro.hardware.power`), checked against the paper's anchors."""

from __future__ import annotations

import pytest

from repro.config import NOISELESS_SETTINGS
from repro.hardware.components import Component
from repro.hardware.gpu import SimulatedGPU
from repro.hardware.performance import PerformanceModel
from repro.hardware.power import (
    GROUND_TRUTH_PARAMETERS,
    GroundTruthParameters,
    GroundTruthPowerModel,
    ground_truth_parameters_for,
)
from repro.hardware.specs import FrequencyConfig, GTX_TITAN_X
from repro.kernels.kernel import idle_kernel
from repro.workloads import workload_by_name


@pytest.fixture(scope="module")
def power_model() -> GroundTruthPowerModel:
    return GroundTruthPowerModel(GTX_TITAN_X, settings=NOISELESS_SETTINGS)


@pytest.fixture(scope="module")
def perf_model() -> PerformanceModel:
    return PerformanceModel(GTX_TITAN_X)


class TestParameters:
    def test_tables_exist_for_all_devices(self):
        assert set(GROUND_TRUTH_PARAMETERS) == {
            "Titan Xp", "GTX Titan X", "Tesla K40c"
        }

    def test_lookup_falls_back_for_unknown_device(self):
        import dataclasses

        custom = dataclasses.replace(GTX_TITAN_X, name="Custom")
        assert (
            ground_truth_parameters_for(custom)
            is GROUND_TRUTH_PARAMETERS["GTX Titan X"]
        )

    def test_rejects_negative_parameters(self):
        with pytest.raises(ValueError):
            GroundTruthParameters(
                static_core_watts=-1, static_mem_watts=0,
                idle_core_watts=0, idle_mem_watts=0,
                dynamic_full_watts={}, issue_full_watts=0,
            )

    def test_kepler_is_dp_heavy(self):
        # 64 DP units/SM on the K40c vs 4 on Maxwell: its DP power budget
        # must dominate the Maxwell one.
        kepler = GROUND_TRUTH_PARAMETERS["Tesla K40c"]
        maxwell = GROUND_TRUTH_PARAMETERS["GTX Titan X"]
        assert (
            kepler.dynamic_full_watts[Component.DP]
            > maxwell.dynamic_full_watts[Component.DP]
        )


class TestPaperAnchors:
    """DESIGN.md §6 calibration anchors."""

    def test_idle_constant_power_at_reference(self, power_model, perf_model):
        # Fig. 5B: the constant part contributes ~84 W at the defaults.
        profile = perf_model.profile(idle_kernel(), GTX_TITAN_X.reference)
        watts = power_model.average_power_watts(profile)
        assert watts == pytest.approx(84.0, abs=6.0)

    def test_blackscholes_power_anchor(self, power_model, perf_model):
        # Fig. 2A: ~181 W at the defaults (tolerance per DESIGN.md: +-15%).
        kernel = workload_by_name("blackscholes")
        profile = perf_model.profile(kernel, GTX_TITAN_X.reference)
        watts = power_model.average_power_watts(profile)
        assert watts == pytest.approx(181.0, rel=0.15)

    def test_blackscholes_memory_drop_anchor(self, power_model, perf_model):
        # Fig. 2A: 3505 -> 810 MHz costs ~52% of the power.
        kernel = workload_by_name("blackscholes")
        high = power_model.average_power_watts(
            perf_model.profile(kernel, FrequencyConfig(975, 3505))
        )
        low = power_model.average_power_watts(
            perf_model.profile(kernel, FrequencyConfig(975, 810))
        )
        assert 1 - low / high == pytest.approx(0.52, abs=0.08)

    def test_cutcp_power_anchor(self, power_model, perf_model):
        # Fig. 2B: ~135 W at the defaults.
        kernel = workload_by_name("cutcp")
        profile = perf_model.profile(kernel, GTX_TITAN_X.reference)
        watts = power_model.average_power_watts(profile)
        assert watts == pytest.approx(135.0, rel=0.15)

    def test_cutcp_memory_drop_much_smaller_than_blackscholes(
        self, power_model, perf_model
    ):
        def drop(name: str) -> float:
            kernel = workload_by_name(name)
            high = power_model.average_power_watts(
                perf_model.profile(kernel, FrequencyConfig(975, 3505))
            )
            low = power_model.average_power_watts(
                perf_model.profile(kernel, FrequencyConfig(975, 810))
            )
            return 1 - low / high

        assert drop("blackscholes") > 2 * drop("cutcp")


class TestScalingStructure:
    def test_power_increases_with_core_frequency(self, power_model, perf_model):
        kernel = workload_by_name("gemm")
        watts = [
            power_model.average_power_watts(
                perf_model.profile(kernel, FrequencyConfig(core, 3505))
            )
            for core in (595, 785, 975, 1164)
        ]
        assert watts == sorted(watts)

    def test_power_superlinear_in_core_frequency(self, power_model, perf_model):
        """Above the voltage breakpoint, V^2 f grows faster than f — the
        non-linearity Fig. 2 shows and linear models miss."""
        kernel = workload_by_name("gemm")

        def watts(core):
            return power_model.average_power_watts(
                perf_model.profile(kernel, FrequencyConfig(core, 3505))
            )

        # Slope above the breakpoint exceeds the slope below it.
        low_slope = (watts(709) - watts(595)) / (709 - 595)
        high_slope = (watts(1164) - watts(1050)) / (1164 - 1050)
        assert high_slope > 1.2 * low_slope

    def test_breakdown_sums_to_total(self, power_model, perf_model):
        kernel = workload_by_name("blackscholes")
        profile = perf_model.profile(kernel, GTX_TITAN_X.reference)
        breakdown = power_model.breakdown(profile)
        assert breakdown.total_watts == pytest.approx(
            breakdown.constant_watts + breakdown.dynamic_watts
        )

    def test_residual_is_deterministic_per_kernel(self):
        gpu_a = SimulatedGPU(GTX_TITAN_X)
        gpu_b = SimulatedGPU(GTX_TITAN_X)
        kernel = workload_by_name("gemm")
        assert gpu_a.run(kernel).true_power_watts == pytest.approx(
            gpu_b.run(kernel).true_power_watts
        )

    def test_noiseless_model_has_unit_residual(self, power_model, perf_model):
        profile = perf_model.profile(
            workload_by_name("gemm"), GTX_TITAN_X.reference
        )
        assert power_model.breakdown(profile).residual_factor == 1.0

    def test_dram_power_scales_with_memory_frequency_only(
        self, power_model, perf_model
    ):
        kernel = workload_by_name("blackscholes")
        ref = power_model.breakdown(
            perf_model.profile(kernel, FrequencyConfig(975, 3505))
        )
        slow_core = power_model.breakdown(
            perf_model.profile(kernel, FrequencyConfig(595, 3505))
        )
        # Down-clocking the core drags the DRAM power only through the
        # slower request stream (utilization), while the SP power drops with
        # both utilization and the V^2 f factor — so SP must fall by a larger
        # ratio than DRAM.
        dram_ratio = (
            slow_core.component_watts[Component.DRAM]
            / ref.component_watts[Component.DRAM]
        )
        sp_ratio = (
            slow_core.component_watts[Component.SP]
            / ref.component_watts[Component.SP]
        )
        assert sp_ratio < dram_ratio < 1.0
