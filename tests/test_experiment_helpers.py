"""Unit tests for experiment-module helpers (pure logic, no heavy runs)."""

from __future__ import annotations

import pytest

from repro.experiments.fig2 import ApplicationCurves, MEMORY_LEVELS
from repro.experiments.noise_sweep import NoiseSweepResult
from repro.experiments.sensitivity import stratified_subset
from repro.experiments.transfer import transplant
from repro.experiments.common import Lab
from repro.core.metrics import UtilizationVector
from repro.hardware.components import ALL_COMPONENTS
from repro.microbench import MICROBENCHMARK_GROUPS, build_suite


class TestStratifiedSubset:
    def test_full_size_returns_whole_suite(self):
        assert len(stratified_subset(83)) == 83
        assert len(stratified_subset(200)) == 83

    @pytest.mark.parametrize("size", [20, 40, 60])
    def test_subset_close_to_requested_size(self, size):
        subset = stratified_subset(size)
        assert abs(len(subset) - size) <= 5

    @pytest.mark.parametrize("size", [20, 40, 60])
    def test_every_group_represented(self, size):
        subset = stratified_subset(size)
        groups = {kernel.tags["group"] for kernel in subset}
        assert groups == set(MICROBENCHMARK_GROUPS)

    def test_ladder_endpoints_kept(self):
        subset = stratified_subset(20)
        names = {kernel.name for kernel in subset}
        suite = build_suite()
        for group in ("int", "sp", "dram"):
            ladder = [k for k in suite if k.tags.get("group") == group]
            assert ladder[0].name in names, group
            assert ladder[-1].name in names, group

    def test_no_duplicates(self):
        subset = stratified_subset(40)
        names = [kernel.name for kernel in subset]
        assert len(set(names)) == len(names)


class TestFig2Helpers:
    def _curves(self, high_power, low_power):
        utilization = UtilizationVector(
            values={component: 0.0 for component in ALL_COMPONENTS}
        )
        return ApplicationCurves(
            name="synthetic",
            power_curves={
                MEMORY_LEVELS[0]: {975.0: high_power, 595.0: high_power - 20},
                MEMORY_LEVELS[1]: {975.0: low_power, 595.0: low_power - 10},
            },
            utilizations=utilization,
            reference_power_watts=high_power,
        )

    def test_memory_drop_fraction(self):
        curves = self._curves(high_power=200.0, low_power=100.0)
        assert curves.memory_drop_fraction() == pytest.approx(0.5)

    def test_no_drop(self):
        curves = self._curves(high_power=150.0, low_power=150.0)
        assert curves.memory_drop_fraction() == pytest.approx(0.0)


class TestNoiseSweepResult:
    def test_monotone_detection(self):
        result = NoiseSweepResult(
            device="x", mae_by_scale={0.0: 4.0, 1.0: 6.0, 2.0: 9.0}
        )
        assert result.is_monotone()
        assert result.structural_floor == 4.0
        assert result.nominal == 6.0

    def test_non_monotone_detected(self):
        result = NoiseSweepResult(
            device="x", mae_by_scale={0.0: 4.0, 1.0: 9.0, 2.0: 5.0}
        )
        assert not result.is_monotone()

    def test_small_wiggle_tolerated(self):
        result = NoiseSweepResult(
            device="x", mae_by_scale={0.0: 4.0, 1.0: 6.0, 2.0: 5.9}
        )
        assert result.is_monotone(tolerance=0.3)


class TestTransplant:
    def test_transplant_keeps_parameters_changes_grid(self, lab: Lab):
        source_model = lab.model("GTX Titan X")
        target = transplant(source_model, lab, "Titan Xp")
        assert target.parameters == source_model.parameters
        assert target.spec.name == "Titan Xp"
        assert len(target.known_configurations()) == 44  # 22 x 2
        # Transplanted voltages are the V = 1 assumption.
        for config in target.known_configurations():
            assert target.voltage_at(config).v_core == 1.0
