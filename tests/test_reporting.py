"""Unit tests for the plain-text reporting helpers
(:mod:`repro.reporting.tables`)."""

from __future__ import annotations

import pytest

from repro.reporting.tables import format_kv, format_table


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4  # header + rule + 2 rows
        assert lines[0].startswith("a")
        assert "---" in lines[1]

    def test_columns_aligned(self):
        text = format_table(["name", "w"], [["x", "1"], ["longer", "2"]])
        lines = text.splitlines()
        positions = {line.index("1") for line in lines[2:3]}
        positions |= {line.index("2") for line in lines[3:4]}
        assert len(positions) == 1

    def test_floats_formatted(self):
        text = format_table(["v"], [[3.14159]])
        assert "3.14" in text
        assert "3.14159" not in text

    def test_title_prepended(self):
        text = format_table(["a"], [["1"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])


class TestFormatKV:
    def test_alignment(self):
        text = format_kv({"a": 1, "long_key": 2})
        lines = text.splitlines()
        assert lines[0].index(":") == lines[1].index(":")

    def test_title(self):
        text = format_kv({"a": 1}, title="T")
        assert text.splitlines()[0] == "T"

    def test_empty(self):
        assert format_kv({}) == ""
