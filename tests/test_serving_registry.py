"""Registry lifecycle tests (:mod:`repro.serving.registry`)."""

from __future__ import annotations

import json

import pytest

from repro.errors import RegistryError, ReproError
from repro.serving.registry import MANIFEST_SCHEMA, ModelRegistry, slugify


@pytest.fixture(scope="module")
def k40c_model(lab):
    return lab.model("Tesla K40c")


@pytest.fixture(scope="module")
def titanx_model(lab):
    return lab.model("GTX Titan X")


@pytest.fixture()
def registry(tmp_path):
    return ModelRegistry(tmp_path / "registry")


class TestSlug:
    def test_device_names(self):
        assert slugify("Titan Xp") == "titan-xp"
        assert slugify("GTX Titan X") == "gtx-titan-x"
        assert slugify("Tesla K40c") == "tesla-k40c"

    def test_empty_rejected(self):
        with pytest.raises(RegistryError):
            slugify("---")


class TestPublish:
    def test_first_publish_mints_v1(self, registry, k40c_model):
        record = registry.publish(k40c_model)
        assert record.name == "tesla-k40c"
        assert record.version == 1
        assert record.device == "Tesla K40c"
        assert record.configurations == 4
        assert record.path.exists()
        assert len(record.sha256) == 64

    def test_republish_identical_is_idempotent(self, registry, k40c_model):
        first = registry.publish(k40c_model)
        second = registry.publish(k40c_model)
        assert second == first
        assert len(registry.versions("tesla-k40c")) == 1

    def test_changed_model_mints_next_version(
        self, registry, k40c_model, quiet_lab
    ):
        registry.publish(k40c_model)
        retrained = quiet_lab.model("Tesla K40c")
        record = registry.publish(retrained, name="tesla-k40c")
        assert record.version == 2
        assert [r.version for r in registry.versions("tesla-k40c")] == [1, 2]

    def test_models_lists_all_names(self, registry, k40c_model, titanx_model):
        registry.publish(k40c_model)
        registry.publish(titanx_model)
        assert registry.models() == ["gtx-titan-x", "tesla-k40c"]

    def test_artifact_is_plain_save_model_json(self, registry, k40c_model):
        record = registry.publish(k40c_model)
        data = json.loads(record.path.read_text())
        assert data["format"] == "repro-dvfs-power-model"
        assert data["device"] == "Tesla K40c"

    def test_version_key_carries_hash_prefix(self, registry, k40c_model):
        record = registry.publish(k40c_model)
        assert record.version_key == (
            f"tesla-k40c@v1:{record.sha256[:12]}"
        )


class TestResolveAndPin:
    def test_latest_wins_by_default(self, registry, k40c_model, quiet_lab):
        registry.publish(k40c_model)
        registry.publish(quiet_lab.model("Tesla K40c"), name="tesla-k40c")
        assert registry.resolve("tesla-k40c").version == 2

    def test_pin_freezes_resolution(self, registry, k40c_model, quiet_lab):
        registry.publish(k40c_model)
        registry.publish(quiet_lab.model("Tesla K40c"), name="tesla-k40c")
        registry.pin("tesla-k40c", 1)
        assert registry.pinned("tesla-k40c") == 1
        assert registry.resolve("tesla-k40c").version == 1
        registry.unpin("tesla-k40c")
        assert registry.pinned("tesla-k40c") is None
        assert registry.resolve("tesla-k40c").version == 2

    def test_explicit_version_beats_pin(self, registry, k40c_model, quiet_lab):
        registry.publish(k40c_model)
        registry.publish(quiet_lab.model("Tesla K40c"), name="tesla-k40c")
        registry.pin("tesla-k40c", 1)
        assert registry.resolve("tesla-k40c", version=2).version == 2

    def test_pin_unpublished_version_rejected(self, registry, k40c_model):
        registry.publish(k40c_model)
        with pytest.raises(RegistryError):
            registry.pin("tesla-k40c", 7)

    def test_unknown_model_rejected(self, registry):
        with pytest.raises(RegistryError, match="unknown model"):
            registry.latest("nope")

    def test_unknown_version_rejected(self, registry, k40c_model):
        registry.publish(k40c_model)
        with pytest.raises(RegistryError, match="no version 9"):
            registry.resolve("tesla-k40c", version=9)


class TestLoadIntegrity:
    def test_round_trip_preserves_parameters(self, registry, k40c_model):
        record = registry.publish(k40c_model)
        loaded, loaded_record = registry.load("tesla-k40c")
        assert loaded_record == record
        assert loaded.parameters == k40c_model.parameters

    def test_truncated_artifact_detected(self, registry, k40c_model):
        record = registry.publish(k40c_model)
        record.path.write_bytes(record.path.read_bytes()[:100])
        with pytest.raises(RegistryError, match="corrupt"):
            registry.load("tesla-k40c")

    def test_flipped_byte_detected(self, registry, k40c_model):
        record = registry.publish(k40c_model)
        payload = bytearray(record.path.read_bytes())
        payload[50] ^= 0xFF
        record.path.write_bytes(bytes(payload))
        with pytest.raises(RegistryError, match="corrupt"):
            registry.load("tesla-k40c")

    def test_deleted_artifact_detected(self, registry, k40c_model):
        record = registry.publish(k40c_model)
        record.path.unlink()
        with pytest.raises(RegistryError, match="unreadable"):
            registry.load("tesla-k40c")

    def test_malformed_manifest_detected(self, registry, k40c_model):
        registry.publish(k40c_model)
        manifest = registry._manifest_path("tesla-k40c")
        manifest.write_text("{not json")
        with pytest.raises(RegistryError, match="not valid JSON"):
            registry.load("tesla-k40c")

    def test_wrong_manifest_schema_detected(self, registry, k40c_model):
        registry.publish(k40c_model)
        manifest = registry._manifest_path("tesla-k40c")
        data = json.loads(manifest.read_text())
        data["schema"] = "something/else"
        manifest.write_text(json.dumps(data))
        with pytest.raises(RegistryError, match="unsupported schema"):
            registry.load("tesla-k40c")

    def test_corruption_errors_are_repro_errors(self, registry, k40c_model):
        record = registry.publish(k40c_model)
        record.path.write_bytes(b"")
        with pytest.raises(ReproError):
            registry.load("tesla-k40c")

    def test_verify_flags_only_the_bad_version(
        self, registry, k40c_model, quiet_lab
    ):
        registry.publish(k40c_model)
        second = registry.publish(
            quiet_lab.model("Tesla K40c"), name="tesla-k40c"
        )
        second.path.write_bytes(b"garbage")
        results = dict(
            (record.version, failure)
            for record, failure in registry.verify("tesla-k40c")
        )
        assert results[1] is None
        assert "corrupt" in results[2]

    def test_corrupt_latest_still_allows_pinned_load(
        self, registry, k40c_model, quiet_lab
    ):
        registry.publish(k40c_model)
        second = registry.publish(
            quiet_lab.model("Tesla K40c"), name="tesla-k40c"
        )
        second.path.write_bytes(b"garbage")
        model, record = registry.load("tesla-k40c", version=1)
        assert record.version == 1
        assert model.parameters == k40c_model.parameters


class TestDeterminism:
    def test_same_model_same_bytes_same_hash(
        self, tmp_path, k40c_model
    ):
        a = ModelRegistry(tmp_path / "a").publish(k40c_model)
        b = ModelRegistry(tmp_path / "b").publish(k40c_model)
        assert a.sha256 == b.sha256
        assert a.path.read_bytes() == b.path.read_bytes()

    def test_manifest_has_no_timestamps(self, registry, k40c_model):
        registry.publish(k40c_model)
        manifest = json.loads(
            registry._manifest_path("tesla-k40c").read_text()
        )
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert set(manifest) == {"schema", "model", "pinned", "versions"}
        assert set(manifest["versions"][0]) == {
            "version", "file", "sha256", "device", "configurations", "kind",
        }


class TestPerformanceArtifacts:
    """perf/v1 artifacts share the registry with power/v1 models."""

    @pytest.fixture(scope="class")
    def perf_model(self, lab):
        return lab.performance_model("Tesla K40c")

    def test_publish_and_load_round_trip(self, registry, perf_model):
        from repro.serialization import performance_model_to_dict

        record = registry.publish(perf_model)
        assert record.kind == "perf/v1"
        assert record.name == "tesla-k40c-perf"
        loaded, loaded_record = registry.load(record.name)
        assert loaded_record == record
        assert performance_model_to_dict(loaded) == performance_model_to_dict(
            perf_model
        )

    def test_republish_is_idempotent(self, registry, perf_model):
        first = registry.publish(perf_model)
        second = registry.publish(perf_model)
        assert first == second
        assert first.version == 1

    def test_mixed_kinds_under_one_name_rejected(
        self, registry, perf_model, k40c_model
    ):
        record = registry.publish(perf_model)
        with pytest.raises(RegistryError):
            registry.publish(k40c_model, name=record.name)
        power_record = registry.publish(k40c_model, name="shared")
        with pytest.raises(RegistryError):
            registry.publish(perf_model, name=power_record.name)

    def test_power_records_default_kind(self, registry, k40c_model):
        record = registry.publish(k40c_model)
        assert record.kind == "power/v1"
