"""Unit tests for the utilization metrics (Eq. 8/9/10,
:mod:`repro.core.metrics`)."""

from __future__ import annotations

import pytest

from repro.config import NOISELESS_SETTINGS
from repro.core.metrics import MetricCalculator, UtilizationVector
from repro.driver.cupti import CuptiContext
from repro.errors import MetricError
from repro.hardware.components import ALL_COMPONENTS, Component
from repro.hardware.gpu import SimulatedGPU
from repro.hardware.specs import GTX_TITAN_X, TESLA_K40C
from repro.kernels.kernel import KernelDescriptor
from repro.workloads import all_workloads, workload_by_name


@pytest.fixture(scope="module")
def quiet_gpu_local() -> SimulatedGPU:
    return SimulatedGPU(GTX_TITAN_X, settings=NOISELESS_SETTINGS)


@pytest.fixture(scope="module")
def quiet_cupti(quiet_gpu_local) -> CuptiContext:
    return CuptiContext(quiet_gpu_local)


@pytest.fixture(scope="module")
def calculator() -> MetricCalculator:
    return MetricCalculator(GTX_TITAN_X)


class TestUtilizationVector:
    def test_requires_all_components(self):
        with pytest.raises(MetricError):
            UtilizationVector(values={Component.SP: 0.5})

    def test_core_array_order(self):
        values = {component: 0.0 for component in ALL_COMPONENTS}
        values[Component.INT] = 0.1
        values[Component.L2] = 0.6
        vector = UtilizationVector(values=values)
        array = vector.core_array()
        assert array[0] == 0.1  # INT is first in the canonical order
        assert array[-1] == 0.6  # L2 is last among core components

    def test_dram_accessor(self):
        values = {component: 0.0 for component in ALL_COMPONENTS}
        values[Component.DRAM] = 0.85
        assert UtilizationVector(values=values).dram == 0.85


class TestEquationRoundTrip:
    """Noise-free events + Eq. 8/9/10 must reproduce the ground-truth
    utilizations the simulator computed."""

    @pytest.mark.parametrize(
        "workload", ["blackscholes", "cutcp", "gemm", "lbm", "syrk_double"]
    )
    def test_reconstruction_matches_ground_truth(
        self, quiet_gpu_local, quiet_cupti, calculator, workload
    ):
        kernel = workload_by_name(workload)
        record = quiet_cupti.collect_events(kernel)
        reconstructed = calculator.utilizations(record)
        truth = quiet_gpu_local.run(kernel).profile.utilizations
        for component in ALL_COMPONENTS:
            assert reconstructed[component] == pytest.approx(
                truth[component], abs=1e-6
            ), component

    def test_eq10_splits_int_and_sp_by_instruction_ratio(
        self, quiet_cupti, calculator
    ):
        kernel = KernelDescriptor(
            name="int-sp-mix", threads=4_000_000,
            int_ops=30.0, sp_ops=90.0, dram_bytes=8.0, l2_bytes=8.0,
        )
        record = quiet_cupti.collect_events(kernel)
        utilization = calculator.utilizations(record)
        # Same units, same rate: utilizations must sit in the 1:3 ops ratio.
        assert utilization[Component.SP] == pytest.approx(
            3 * utilization[Component.INT], rel=1e-6
        )

    def test_no_instructions_means_zero_compute_utilization(
        self, quiet_cupti, calculator
    ):
        kernel = KernelDescriptor(
            name="pure-stream", threads=4_000_000, dram_bytes=32.0,
            l2_bytes=32.0,
        )
        record = quiet_cupti.collect_events(kernel)
        utilization = calculator.utilizations(record)
        assert utilization[Component.INT] == 0.0
        assert utilization[Component.SP] == 0.0

    def test_values_clipped_to_unit_interval(self, calculator):
        gpu = SimulatedGPU(TESLA_K40C)  # strongest counter noise
        cupti = CuptiContext(gpu)
        calculator_k40 = MetricCalculator(TESLA_K40C)
        for kernel in all_workloads():
            utilization = calculator_k40.utilizations(
                cupti.collect_events(kernel)
            )
            for component in ALL_COMPONENTS:
                assert 0.0 <= utilization[component] <= 1.0

    def test_zero_active_cycles_rejected(self, calculator, quiet_cupti):
        import dataclasses

        record = quiet_cupti.collect_events(workload_by_name("gemm"))
        broken = dataclasses.replace(
            record,
            values={name: 0.0 for name in record.values},
        )
        with pytest.raises(MetricError):
            calculator.utilizations(broken)


class TestCrossArchitecture:
    def test_kepler_reconstruction_noiseless(self):
        gpu = SimulatedGPU(TESLA_K40C, settings=NOISELESS_SETTINGS)
        cupti = CuptiContext(gpu)
        calculator = MetricCalculator(TESLA_K40C)
        kernel = workload_by_name("syrk_double")
        reconstructed = calculator.utilizations(cupti.collect_events(kernel))
        truth = gpu.run(kernel).profile.utilizations
        for component in ALL_COMPONENTS:
            assert reconstructed[component] == pytest.approx(
                truth[component], abs=1e-6
            )
