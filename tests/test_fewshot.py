"""Differential tests of the few-shot calibration experiment.

Three claims are pinned: the probe schedule is a deterministic prefix
family covering the component groups early; fitting on the *full* probe
budget is byte-identical to fitting on the full dataset (the subset path
introduces nothing); and on synthetic devices the k-probe MAE curve
descends into the seed's Table-III band while the zero-probe transplant
baseline stays far outside it — the non-vacuous version of "calibration
data helps". The power-capped member exercises the single-probe fallback
of the runtime fit: its TDP collapses every requested core level of a
heavy kernel onto the floor, leaving one distinct applied configuration.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimation import ModelEstimator
from repro.core.perf_estimation import PerformanceEstimator
from repro.errors import ValidationError
from repro.experiments import fewshot
from repro.experiments.fewshot import (
    GROUP_ORDER,
    MIN_PROBES,
    QUICK_BUDGETS,
    TABLE3_BANDS_PERCENT,
    DeviceFewshotResult,
    FewshotResult,
    ProbePoint,
    probe_schedule,
    run,
    sweep_device,
)
from repro.hardware.families import standard_members
from repro.microbench import build_suite
from repro.microbench.suite import suite_group
from repro.telemetry import TraceRecorder

SUITE_SIZE = len(build_suite())

#: Curve tolerance: more probes may be locally *worse* by up to this many
#: percentage points (small-k fits ride noise), but never more.
MONOTONE_TOLERANCE_PP = 2.0


# ----------------------------------------------------------------------
# Probe schedule
# ----------------------------------------------------------------------
class TestProbeSchedule:
    @given(k=st.integers(min_value=MIN_PROBES, max_value=SUITE_SIZE))
    @settings(max_examples=40, deadline=None)
    def test_exact_size_unique_and_known(self, k):
        schedule = probe_schedule(k)
        assert len(schedule) == k
        assert len(set(schedule)) == k
        names = {kernel.name for kernel in build_suite()}
        assert set(schedule) <= names

    @given(
        small=st.integers(min_value=MIN_PROBES, max_value=SUITE_SIZE),
        large=st.integers(min_value=MIN_PROBES, max_value=SUITE_SIZE),
    )
    @settings(max_examples=40, deadline=None)
    def test_schedules_form_a_prefix_family(self, small, large):
        """Growing the budget only appends probes — a field engineer can
        extend a campaign without re-running anything."""
        if small > large:
            small, large = large, small
        assert probe_schedule(large)[:small] == probe_schedule(small)

    def test_first_round_covers_distinct_groups(self):
        group_of = {}
        for group in GROUP_ORDER:
            for kernel in suite_group(group):
                group_of[kernel.name] = group
        first = probe_schedule(len(GROUP_ORDER))
        assert [group_of[name] for name in first] == list(GROUP_ORDER)

    def test_full_budget_is_the_whole_suite(self):
        assert set(probe_schedule(SUITE_SIZE)) == {
            kernel.name for kernel in build_suite()
        }

    @pytest.mark.parametrize("k", [0, MIN_PROBES - 1, SUITE_SIZE + 1])
    def test_out_of_range_budget_rejected(self, k):
        with pytest.raises(ValidationError, match="probe budget"):
            probe_schedule(k)


# ----------------------------------------------------------------------
# Dataset subsetting
# ----------------------------------------------------------------------
class TestSubsetKernels:
    def test_subset_filters_and_preserves_order(self, lab):
        member = standard_members()[0]
        name = lab.register_member(member)
        dataset = lab.dataset(name)
        wanted = probe_schedule(6)
        subset = dataset.subset_kernels(wanted)
        assert subset.spec == dataset.spec
        assert {row.kernel_name for row in subset.rows} == set(wanted)
        expected = tuple(
            row for row in dataset.rows if row.kernel_name in set(wanted)
        )
        assert subset.rows == expected

    def test_subset_with_all_kernels_is_identity(self, lab):
        member = standard_members()[0]
        dataset = lab.dataset(lab.register_member(member))
        assert (
            dataset.subset_kernels(probe_schedule(SUITE_SIZE)).rows
            == dataset.rows
        )

    def test_subset_with_unknown_names_rejected(self, lab):
        """Datasets must not be empty, so a subset that matches nothing
        fails loudly instead of producing an unfittable dataset."""
        member = standard_members()[0]
        dataset = lab.dataset(lab.register_member(member))
        with pytest.raises(ValidationError, match="empty"):
            dataset.subset_kernels(["no-such-kernel"])


# ----------------------------------------------------------------------
# Differential: subset fit vs full fit, k-probe curve vs bands
# ----------------------------------------------------------------------
class TestFewshotDifferential:
    def test_full_budget_fit_equals_full_dataset_fit(self, lab):
        """The k = 83 point of every curve is exactly the headline fit —
        the subset machinery adds no degrees of freedom."""
        member = standard_members()[0]
        name = lab.register_member(member)
        dataset = lab.dataset(name)
        subset = dataset.subset_kernels(probe_schedule(SUITE_SIZE))
        model, _ = ModelEstimator(subset).estimate()
        assert model.parameters == lab.model(name).parameters

    @pytest.fixture(scope="class")
    def swept(self, lab):
        """One uncapped member swept at the quick tier (cached campaign)."""
        member = standard_members()[0]
        return member, sweep_device(
            lab, member, budgets=QUICK_BUDGETS, quick=True
        )

    def test_curve_reaches_band_and_transplant_does_not(self, swept):
        member, result = swept
        assert result.band_percent == TABLE3_BANDS_PERCENT[member.seed_device]
        assert result.in_band
        assert result.probes_to_band <= 12
        assert result.full_mae_percent <= result.band_percent
        # Non-vacuous: the zero-probe transplant sits far outside the band,
        # so crossing it required the calibration data.
        assert result.transplant_mae_percent > result.band_percent

    def test_curve_budgets_match_and_descend_within_tolerance(self, swept):
        _, result = swept
        assert tuple(p.budget for p in result.curve) == QUICK_BUDGETS
        maes = [p.mae_percent for p in result.curve]
        assert all(mae is not None for mae in maes)
        for previous, current in zip(maes, maes[1:]):
            assert current <= previous + MONOTONE_TOLERANCE_PP
        # End-to-end the curve must actually descend (not merely wiggle).
        assert maes[-1] < maes[0]

    def test_capped_member_sweeps_into_its_band(self, lab):
        capped = standard_members()[-1]
        result = sweep_device(lab, capped, budgets=QUICK_BUDGETS, quick=True)
        assert capped.power_capped
        assert result.in_band
        assert result.full_mae_percent <= TABLE3_BANDS_PERCENT["Tesla K40c"]

    def test_run_on_explicit_members(self, lab):
        member = standard_members()[0]
        result = run(lab=lab, quick=True, members=[member])
        assert isinstance(result, FewshotResult)
        assert result.budgets == QUICK_BUDGETS
        assert len(result.devices) == 1
        assert result.devices_in_band == 1
        assert not result.passes_gate  # one device cannot clear the floor


# ----------------------------------------------------------------------
# Single-probe fallback on the power-capped member
# ----------------------------------------------------------------------
class TestCappedSingleProbeFallback:
    def test_heavy_kernels_collapse_to_one_probe(self, lab):
        """On the capped member the TDP limiter pushes heavy kernels to
        the bottom core level at *every* requested probe, so the runtime
        fit sees one distinct applied configuration and must take the
        single-probe path; light kernels keep their full ladder."""
        capped = standard_members()[-1]
        name = lab.register_member(capped)
        recorder = TraceRecorder()
        estimator = PerformanceEstimator(
            lab.dataset(name), lab.session(name), lab.suite, recorder=recorder
        )
        model, report = estimator.estimate()
        probes_per_kernel = [
            span.attributes["probes"]
            for span in recorder.finished_spans()
            if span.name == "perf_fit"
        ]
        assert report.kernels == SUITE_SIZE
        assert probes_per_kernel.count(1) >= 30
        assert max(probes_per_kernel) >= 2  # light kernels keep a ladder
        assert report.probes == sum(probes_per_kernel)
        assert report.probes < 3 * report.kernels
        # The fallback law still reproduces its anchor probe exactly.
        assert report.train_mae_percent <= 1e-10

    def test_uncapped_member_keeps_full_probe_ladder(self, lab):
        member = standard_members()[0]
        name = lab.register_member(member)
        recorder = TraceRecorder()
        PerformanceEstimator(
            lab.dataset(name), lab.session(name), lab.suite, recorder=recorder
        ).estimate()
        probes_per_kernel = [
            span.attributes["probes"]
            for span in recorder.finished_spans()
            if span.name == "perf_fit"
        ]
        assert probes_per_kernel.count(1) == 0


# ----------------------------------------------------------------------
# Result objects, report schema and the CLI gate
# ----------------------------------------------------------------------
def _device_result(node_nm: int, budgets=(4, 83), mae=5.0):
    return DeviceFewshotResult(
        device=f"synthetic-{node_nm}",
        family="GTX Titan X/itrs",
        seed_device="GTX Titan X",
        table="itrs",
        node_nm=node_nm,
        band_percent=6.59,
        transplant_mae_percent=40.0,
        curve=tuple(ProbePoint(budget=b, mae_percent=mae) for b in budgets),
    )


class TestResultObjects:
    def test_probes_to_band_picks_first_crossing(self):
        result = DeviceFewshotResult(
            device="d", family="f", seed_device="GTX Titan X", table="itrs",
            node_nm=22, band_percent=6.59, transplant_mae_percent=40.0,
            curve=(
                ProbePoint(4, None),
                ProbePoint(6, 9.0),
                ProbePoint(12, 5.0),
                ProbePoint(83, 4.0),
            ),
        )
        assert result.probes_to_band == 12
        assert result.in_band
        assert result.full_mae_percent == 4.0

    def test_out_of_band_device(self):
        result = _device_result(22, mae=50.0)
        assert result.probes_to_band is None
        assert not result.in_band

    def test_gate_needs_devices_and_nodes(self):
        six_one_node = FewshotResult(
            devices=tuple(_device_result(22) for _ in range(6)),
            budgets=(4, 83),
            quick=True,
        )
        assert six_one_node.devices_in_band == 6
        assert six_one_node.nodes_in_band == 1
        assert not six_one_node.passes_gate

        six_three_nodes = FewshotResult(
            devices=tuple(
                _device_result(node) for node in (45, 45, 22, 22, 11, 11)
            ),
            budgets=(4, 83),
            quick=True,
        )
        assert six_three_nodes.passes_gate

    def test_report_dict_schema(self):
        result = FewshotResult(
            devices=(_device_result(22),), budgets=(4, 83), quick=True
        )
        report = result.to_dict()
        assert report["schema"] == fewshot.REPORT_SCHEMA
        assert report["budgets"] == [4, 83]
        assert report["quick"] is True
        (device,) = report["devices"]
        assert device["curve"] == [
            {"budget": 4, "mae_percent": 5.0},
            {"budget": 83, "mae_percent": 5.0},
        ]
        json.dumps(report)  # must be JSON-serializable as-is


class TestMain:
    def test_main_writes_report_and_gates(self, lab, tmp_path, monkeypatch):
        monkeypatch.setattr(
            fewshot, "standard_members", lambda: standard_members()[:1]
        )
        monkeypatch.setattr(fewshot, "get_lab", lambda: lab)
        output = tmp_path / "FEWSHOT.json"
        result = fewshot.main(["--quick", "--output", str(output), "--no-gate"])
        report = json.loads(output.read_text())
        assert report["schema"] == fewshot.REPORT_SCHEMA
        assert report["devices_in_band"] == 1
        assert not result.passes_gate
        # Without --no-gate a one-device fleet must fail the CI gate.
        with pytest.raises(SystemExit):
            fewshot.main(["--quick", "--output", str(output)])
