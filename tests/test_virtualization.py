"""Tests for the virtualization power-attribution scenario
(:mod:`repro.runtime.virtual`, Sec. V-B use case 2)."""

from __future__ import annotations

import json

import pytest

from repro.errors import ValidationError
from repro.hardware.specs import FrequencyConfig
from repro.runtime.virtual import (
    GuestPowerEstimator,
    HypervisorPowerService,
)
from repro.workloads import workload_by_name


@pytest.fixture(scope="module")
def service(lab) -> HypervisorPowerService:
    device = "GTX Titan X"
    return HypervisorPowerService(lab.model(device), lab.session(device))


class TestProvisioning:
    def test_serialized_model_is_json_compatible(self, service):
        blob = json.dumps(service.serialized_model())
        assert "voltages" in blob

    def test_guest_estimator_predicts_like_the_host(self, service, lab):
        from repro.core.metrics import MetricCalculator

        guest = service.provision_guest()
        session = lab.session("GTX Titan X")
        record = session.collect_events(workload_by_name("gemm"))
        guest_reading = guest.observe(record)
        host_prediction = service.model.predict_power(
            MetricCalculator(service.spec).utilizations(record),
            record.config,
        )
        assert guest_reading.power_watts == pytest.approx(host_prediction)

    def test_guest_accumulates_energy_without_sensor(self, service, lab):
        guest = service.provision_guest()
        session = lab.session("GTX Titan X")
        for name in ("gemm", "lbm"):
            guest.observe(session.collect_events(workload_by_name(name)))
        assert guest.total_energy_joules > 0
        assert len(guest.readings) == 2


class TestAttribution:
    def test_rejects_empty_inputs(self, service):
        with pytest.raises(ValidationError):
            service.attribute({})
        with pytest.raises(ValidationError):
            service.attribute({"vm0": []})
        with pytest.raises(ValidationError):
            service.attribute({"vm0": [(workload_by_name("gemm"), 0)]})

    def test_busy_guest_gets_more_energy(self, service):
        gemm = workload_by_name("gemm")
        usages = service.attribute(
            {"heavy": [(gemm, 10)], "light": [(gemm, 1)]}
        )
        assert usages["heavy"].energy_joules > usages["light"].energy_joules
        assert usages["heavy"].busy_seconds == pytest.approx(
            10 * usages["light"].busy_seconds, rel=1e-6
        )

    def test_hotter_workload_costs_more_at_equal_time(self, service, lab):
        """Two guests busy for similar time, one running the DRAM-saturated
        kernel: the hot guest pays more — attribution is power-aware, not
        just time-slicing."""
        session = lab.session("GTX Titan X")
        hot = workload_by_name("blackscholes")
        cool = workload_by_name("gaussian")
        usages = service.attribute({"hot": [(hot, 4)], "cool": [(cool, 4)]})
        hot_usage, cool_usage = usages["hot"], usages["cool"]
        # Same kernel count and similar durations on this substrate...
        assert hot_usage.busy_seconds == pytest.approx(
            cool_usage.busy_seconds, rel=0.2
        )
        # ...but the hot guest's average power is clearly higher.
        assert (
            hot_usage.average_power_watts
            > 1.1 * cool_usage.average_power_watts
        )

    def test_idle_overhead_split_by_busy_share(self, service):
        gemm = workload_by_name("gemm")
        with_overhead = service.attribute(
            {"a": [(gemm, 3)], "b": [(gemm, 1)]}, include_idle_overhead=True
        )
        without = service.attribute(
            {"a": [(gemm, 3)], "b": [(gemm, 1)]}, include_idle_overhead=False
        )
        overhead_a = (
            with_overhead["a"].energy_joules - without["a"].energy_joules
        )
        overhead_b = (
            with_overhead["b"].energy_joules - without["b"].energy_joules
        )
        assert overhead_a == pytest.approx(3 * overhead_b, rel=1e-6)

    def test_attribution_respects_configuration(self, service):
        gemm = workload_by_name("gemm")
        at_reference = service.attribute({"vm": [(gemm, 1)]})
        at_low = service.attribute(
            {"vm": [(gemm, 1)]}, config=FrequencyConfig(595, 810)
        )
        assert (
            at_low["vm"].average_power_watts
            < at_reference["vm"].average_power_watts
        )
