"""Chaos tests: the measurement campaign under seeded driver faults.

The headline resilience guarantees of the fault-injection layer:

* a 5 % transient-fault plan never aborts the campaign — every device's
  full suite x grid dataset completes, with per-cell quality flags;
* the estimator fitted on the faulted dataset stays within 2 % RMSE (and
  small voltage deviations) of the fault-free fit;
* the vectorized grid path and the scalar walk observe the *same* seeded
  fault stream, so their datasets are identical row by row;
* everything is deterministic and no retry ever sleeps on the wall clock.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dataset import collect_campaign, collect_training_dataset
from repro.core.estimation import ModelEstimator
from repro.driver import faults as faultlib
from repro.driver.faults import FaultPlan
from repro.driver.session import ProfilingSession
from repro.hardware.gpu import SimulatedGPU
from repro.microbench import build_suite
from repro.telemetry import TraceRecorder
from repro.units import closest_lower_level

#: The acceptance setting: every transient fault class at 5 %.
CHAOS_RATE = 0.05
CHAOS_SEED = 20180224


def _chaos_session(spec, seed: int = CHAOS_SEED) -> ProfilingSession:
    plan = FaultPlan.transient(CHAOS_RATE, seed=seed)
    return ProfilingSession(SimulatedGPU(spec, fault_plan=plan))


def _traced_chaos_session(spec, seed: int = CHAOS_SEED) -> ProfilingSession:
    plan = FaultPlan.transient(CHAOS_RATE, seed=seed)
    recorder = TraceRecorder()
    return ProfilingSession(
        SimulatedGPU(spec, fault_plan=plan, recorder=recorder)
    )


@pytest.fixture(autouse=True)
def _no_wall_clock_sleeps(monkeypatch):
    """Chaos runs must never stall: backoff is virtual by construction."""
    import time

    def forbidden(_seconds):  # pragma: no cover - tripping it is the bug
        raise AssertionError(
            "fault-injection retry slept on the wall clock"
        )

    monkeypatch.setattr(time, "sleep", forbidden)


class TestChaosCampaign:
    """Full-suite campaign under the 5 % plan, per device (acceptance)."""

    def test_campaign_completes_with_quality_flags(self, lab, any_spec):
        session = _chaos_session(any_spec)
        dataset, campaign = collect_campaign(session, lab.suite)

        clean = lab.dataset(any_spec.name)
        # Graceful degradation may only ever *remove* cells, and at 5 %
        # transient rates nothing should actually be lost.
        assert campaign.skipped_kernels == ()
        assert campaign.skipped_cells == ()
        assert campaign.complete
        assert campaign.row_count == len(clean.rows)

        # Faults demonstrably fired and were recorded per cell.
        assert campaign.flagged_rows > 0
        assert campaign.read_faults > 0
        assert campaign.dropped_samples > 0
        assert campaign.backoff_seconds > 0
        flags = {flag for row in dataset.rows for flag in row.quality}
        assert "dropouts" in flags
        assert np.isfinite(dataset.measured_vector()).all()

    def test_estimator_fit_within_tolerance_of_fault_free(self, lab, any_spec):
        session = _chaos_session(any_spec)
        dataset, _ = collect_campaign(session, lab.suite)
        model, report = ModelEstimator(dataset).estimate()

        clean_model = lab.model(any_spec.name)
        clean_report = lab.report(any_spec.name)
        # Acceptance: <= 2 % RMSE deviation from the fault-free fit
        # (measured ~0.1-0.4 % across the three devices).
        rmse_deviation = (
            abs(report.final_rmse - clean_report.final_rmse)
            / clean_report.final_rmse
        )
        assert rmse_deviation <= 0.02
        assert report.train_mae_percent == pytest.approx(
            clean_report.train_mae_percent, abs=0.5
        )
        # Fitted voltages stay close cell by cell (measured <= 0.03).
        for config in clean_model.known_configurations():
            chaos_v = model.voltage_at(config)
            clean_v = clean_model.voltage_at(config)
            assert abs(chaos_v.v_core - clean_v.v_core) <= 0.05
            assert abs(chaos_v.v_mem - clean_v.v_mem) <= 0.05

    def test_campaign_deterministic_in_seed(self, lab):
        spec = lab.spec("Tesla K40c")  # smallest grid: fastest double run
        kernels = lab.suite[:12]
        first, report_a = collect_campaign(_chaos_session(spec), kernels)
        second, report_b = collect_campaign(_chaos_session(spec), kernels)
        assert first.rows == second.rows
        assert report_a == report_b

    def test_different_seed_different_fault_stream(self, lab):
        spec = lab.spec("Tesla K40c")
        kernels = lab.suite[:12]
        _, report_a = collect_campaign(_chaos_session(spec, seed=1), kernels)
        _, report_b = collect_campaign(_chaos_session(spec, seed=2), kernels)
        assert (
            report_a.read_faults,
            report_a.dropped_samples,
            report_a.retried_rows,
        ) != (
            report_b.read_faults,
            report_b.dropped_samples,
            report_b.retried_rows,
        )


class TestChaosGridScalarEquivalence:
    """Grid fast path and scalar walk observe identical fault streams."""

    def test_grid_rows_identical_to_scalar_under_faults(self, lab, any_spec):
        kernels = lab.suite[:6]
        configs = any_spec.all_configurations()[:8]
        # Clock-set faults stay off: the grid path performs no clock-set
        # driver calls at all, so they are inherently path dependent.
        plan = FaultPlan(
            seed=CHAOS_SEED,
            nvml_read_rate=CHAOS_RATE,
            cupti_read_rate=CHAOS_RATE,
            sample_dropout_rate=0.3,
            thermal_throttle_rate=0.15,
        )
        grid_session = ProfilingSession(SimulatedGPU(any_spec, fault_plan=plan))
        scalar_session = ProfilingSession(
            SimulatedGPU(any_spec, fault_plan=plan)
        )
        fast, fast_report = collect_campaign(grid_session, kernels, configs)
        slow, slow_report = collect_campaign(
            scalar_session, kernels, configs, use_grid=False
        )
        assert fast.rows == slow.rows
        assert fast_report.flagged_rows == slow_report.flagged_rows
        assert fast_report.flagged_rows > 0  # the rates guarantee faults
        assert fast_report.dropped_samples == slow_report.dropped_samples

    def test_faults_disabled_bitwise_identical_to_no_plan(self, any_spec):
        kernels = build_suite()[:4]
        configs = any_spec.all_configurations()[:5]
        bare = collect_training_dataset(
            ProfilingSession(SimulatedGPU(any_spec)), kernels, configs
        )
        gated = collect_training_dataset(
            ProfilingSession(SimulatedGPU(any_spec, fault_plan=FaultPlan())),
            kernels,
            configs,
        )
        assert bare.rows == gated.rows


class TestChaosTelemetryCrossCheck:
    """Telemetry counters audited against two independent sources: the
    campaign's own :class:`CampaignReport` tallies, and a from-scratch
    replay of the seeded :class:`FaultPlan` decision stream."""

    def test_counters_mirror_campaign_report(self, lab, any_spec):
        session = _traced_chaos_session(any_spec)
        recorder = session.recorder
        kernels = lab.suite[:10]
        _, report = collect_campaign(session, kernels)

        c = recorder.counter
        assert c("faults.nvml_read") == report.read_faults
        assert c("faults.cupti_read") == report.event_faults
        assert c("faults.clock_set") == report.clock_faults
        assert c("samples.dropped") == report.dropped_samples
        assert c("throttle.injected") == report.injected_throttles
        assert c("counters.corrupted") == report.corrupted_counters
        # faults.injected is the grand total of every injected fault event.
        assert c("faults.injected") == (
            report.read_faults
            + report.event_faults
            + report.clock_faults
            + report.injected_throttles
            + report.corrupted_counters
        )
        assert c("rows.collected") == report.row_count
        assert c("rows.degraded") == report.flagged_rows
        assert c("cells.skipped") == len(report.skipped_cells)
        assert c("kernels.skipped") == len(report.skipped_kernels)
        # Same floats added in the same order: exact equality, not approx.
        assert c("backoff.virtual_seconds") == report.backoff_seconds
        assert report.flagged_rows > 0  # the 5 % plan demonstrably fired

    def test_counters_equal_replayed_fault_plan_stream(self, lab, any_spec):
        """Replay the plan's pure decision functions cell by cell and
        demand the recorder saw exactly that stream — nothing dropped,
        nothing double-counted."""
        plan = FaultPlan.transient(CHAOS_RATE, seed=CHAOS_SEED)
        recorder = TraceRecorder()
        session = ProfilingSession(
            SimulatedGPU(any_spec, fault_plan=plan, recorder=recorder)
        )
        kernels = lab.suite[:16]
        configs = any_spec.all_configurations()[:8]
        repeats = session.settings.measurement_repeats
        grid = session.measure_grid(kernels, configs, on_unreadable="skip")

        # Fault-free twin board: reproduces each cell's pre-injection
        # applied configuration (fault plans never alter execution).
        twin = SimulatedGPU(any_spec)
        name = any_spec.name
        read_faults = retries = throttles = dropped = 0
        for kernel, row in zip(kernels, grid.measurements):
            for m in row:
                assert faultlib.UNREADABLE not in m.quality
                cell = (
                    f"{m.requested_config.core_mhz:.0f}-"
                    f"{m.requested_config.memory_mhz:.0f}"
                )
                # Every attempt before the successful one must have been
                # a seeded read failure; the successful one a clean read.
                for attempt in range(m.retries):
                    assert plan.nvml_read_fails(name, kernel.name, cell, attempt)
                assert not plan.nvml_read_fails(
                    name, kernel.name, cell, m.retries
                )
                read_faults += m.retries
                retries += m.retries
                success = m.retries
                if plan.spurious_throttle(name, kernel.name, cell, success):
                    applied = twin.run(kernel, m.requested_config).applied_config
                    if (
                        closest_lower_level(
                            applied.core_mhz, any_spec.core_frequencies_mhz
                        )
                        is not None
                    ):
                        throttles += 1
                mask = plan.dropout_mask(
                    name, kernel.name, cell, success, repeats, m.sample_count
                )
                if mask is not None:
                    dropped += int(mask.sum())

        assert recorder.counter("faults.nvml_read") == read_faults
        assert recorder.counter("nvml.retries") == retries
        assert recorder.counter("throttle.injected") == throttles
        assert recorder.counter("samples.dropped") == dropped
        assert recorder.counter("faults.injected") == read_faults + throttles
        assert read_faults > 0 and dropped > 0  # the stream demonstrably fired

    def test_profile_replay_matches_cupti_counters(self, lab):
        """The event-collection retry loop against the replayed plan."""
        spec = lab.spec("Tesla K40c")
        session = _traced_chaos_session(spec)
        plan = session.fault_plan
        recorder = session.recorder
        kernels = lab.suite[:20]
        for kernel in kernels:
            session.collect_events(kernel)

        expected_faults = 0
        for kernel in kernels:
            attempt = 0
            while plan.cupti_read_fails(spec.name, kernel.name, attempt):
                expected_faults += 1
                attempt += 1
        assert recorder.counter("faults.cupti_read") == expected_faults
        assert recorder.counter("cupti.retries") == expected_faults
        assert recorder.counter("cupti.collections") == len(kernels)


class TestChaosReport:
    def test_clean_campaign_reports_all_clean(self, lab):
        spec = lab.spec("Tesla K40c")
        session = ProfilingSession(SimulatedGPU(spec))
        dataset, report = collect_campaign(session, lab.suite[:6])
        assert report.complete
        assert report.flagged_rows == 0
        assert report.read_faults == 0
        assert report.backoff_seconds == 0.0
        assert "clean" in report.summary()

    def test_summary_mentions_skips(self, lab):
        spec = lab.spec("Tesla K40c")
        # Event collection always fails -> some kernels must be skipped.
        plan = FaultPlan(cupti_read_rate=0.9, seed=5)
        session = ProfilingSession(SimulatedGPU(spec, fault_plan=plan))
        dataset, report = collect_campaign(session, lab.suite[:12])
        assert report.skipped_kernels  # 0.9^4 ~ 66 % per kernel
        assert not report.complete
        assert "skipped kernels" in report.summary()
        surviving = set(dataset.kernel_names())
        assert surviving.isdisjoint(report.skipped_kernels)
