"""Chaos tests: the measurement campaign under seeded driver faults.

The headline resilience guarantees of the fault-injection layer:

* a 5 % transient-fault plan never aborts the campaign — every device's
  full suite x grid dataset completes, with per-cell quality flags;
* the estimator fitted on the faulted dataset stays within 2 % RMSE (and
  small voltage deviations) of the fault-free fit;
* the vectorized grid path and the scalar walk observe the *same* seeded
  fault stream, so their datasets are identical row by row;
* everything is deterministic and no retry ever sleeps on the wall clock.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dataset import collect_campaign, collect_training_dataset
from repro.core.estimation import ModelEstimator
from repro.driver.faults import FaultPlan
from repro.driver.session import ProfilingSession
from repro.hardware.gpu import SimulatedGPU
from repro.microbench import build_suite

#: The acceptance setting: every transient fault class at 5 %.
CHAOS_RATE = 0.05
CHAOS_SEED = 20180224


def _chaos_session(spec, seed: int = CHAOS_SEED) -> ProfilingSession:
    plan = FaultPlan.transient(CHAOS_RATE, seed=seed)
    return ProfilingSession(SimulatedGPU(spec, fault_plan=plan))


@pytest.fixture(autouse=True)
def _no_wall_clock_sleeps(monkeypatch):
    """Chaos runs must never stall: backoff is virtual by construction."""
    import time

    def forbidden(_seconds):  # pragma: no cover - tripping it is the bug
        raise AssertionError(
            "fault-injection retry slept on the wall clock"
        )

    monkeypatch.setattr(time, "sleep", forbidden)


class TestChaosCampaign:
    """Full-suite campaign under the 5 % plan, per device (acceptance)."""

    def test_campaign_completes_with_quality_flags(self, lab, any_spec):
        session = _chaos_session(any_spec)
        dataset, campaign = collect_campaign(session, lab.suite)

        clean = lab.dataset(any_spec.name)
        # Graceful degradation may only ever *remove* cells, and at 5 %
        # transient rates nothing should actually be lost.
        assert campaign.skipped_kernels == ()
        assert campaign.skipped_cells == ()
        assert campaign.complete
        assert campaign.row_count == len(clean.rows)

        # Faults demonstrably fired and were recorded per cell.
        assert campaign.flagged_rows > 0
        assert campaign.read_faults > 0
        assert campaign.dropped_samples > 0
        assert campaign.backoff_seconds > 0
        flags = {flag for row in dataset.rows for flag in row.quality}
        assert "dropouts" in flags
        assert np.isfinite(dataset.measured_vector()).all()

    def test_estimator_fit_within_tolerance_of_fault_free(self, lab, any_spec):
        session = _chaos_session(any_spec)
        dataset, _ = collect_campaign(session, lab.suite)
        model, report = ModelEstimator(dataset).estimate()

        clean_model = lab.model(any_spec.name)
        clean_report = lab.report(any_spec.name)
        # Acceptance: <= 2 % RMSE deviation from the fault-free fit
        # (measured ~0.1-0.4 % across the three devices).
        rmse_deviation = (
            abs(report.final_rmse - clean_report.final_rmse)
            / clean_report.final_rmse
        )
        assert rmse_deviation <= 0.02
        assert report.train_mae_percent == pytest.approx(
            clean_report.train_mae_percent, abs=0.5
        )
        # Fitted voltages stay close cell by cell (measured <= 0.03).
        for config in clean_model.known_configurations():
            chaos_v = model.voltage_at(config)
            clean_v = clean_model.voltage_at(config)
            assert abs(chaos_v.v_core - clean_v.v_core) <= 0.05
            assert abs(chaos_v.v_mem - clean_v.v_mem) <= 0.05

    def test_campaign_deterministic_in_seed(self, lab):
        spec = lab.spec("Tesla K40c")  # smallest grid: fastest double run
        kernels = lab.suite[:12]
        first, report_a = collect_campaign(_chaos_session(spec), kernels)
        second, report_b = collect_campaign(_chaos_session(spec), kernels)
        assert first.rows == second.rows
        assert report_a == report_b

    def test_different_seed_different_fault_stream(self, lab):
        spec = lab.spec("Tesla K40c")
        kernels = lab.suite[:12]
        _, report_a = collect_campaign(_chaos_session(spec, seed=1), kernels)
        _, report_b = collect_campaign(_chaos_session(spec, seed=2), kernels)
        assert (
            report_a.read_faults,
            report_a.dropped_samples,
            report_a.retried_rows,
        ) != (
            report_b.read_faults,
            report_b.dropped_samples,
            report_b.retried_rows,
        )


class TestChaosGridScalarEquivalence:
    """Grid fast path and scalar walk observe identical fault streams."""

    def test_grid_rows_identical_to_scalar_under_faults(self, lab, any_spec):
        kernels = lab.suite[:6]
        configs = any_spec.all_configurations()[:8]
        # Clock-set faults stay off: the grid path performs no clock-set
        # driver calls at all, so they are inherently path dependent.
        plan = FaultPlan(
            seed=CHAOS_SEED,
            nvml_read_rate=CHAOS_RATE,
            cupti_read_rate=CHAOS_RATE,
            sample_dropout_rate=0.3,
            thermal_throttle_rate=0.15,
        )
        grid_session = ProfilingSession(SimulatedGPU(any_spec, fault_plan=plan))
        scalar_session = ProfilingSession(
            SimulatedGPU(any_spec, fault_plan=plan)
        )
        fast, fast_report = collect_campaign(grid_session, kernels, configs)
        slow, slow_report = collect_campaign(
            scalar_session, kernels, configs, use_grid=False
        )
        assert fast.rows == slow.rows
        assert fast_report.flagged_rows == slow_report.flagged_rows
        assert fast_report.flagged_rows > 0  # the rates guarantee faults
        assert fast_report.dropped_samples == slow_report.dropped_samples

    def test_faults_disabled_bitwise_identical_to_no_plan(self, any_spec):
        kernels = build_suite()[:4]
        configs = any_spec.all_configurations()[:5]
        bare = collect_training_dataset(
            ProfilingSession(SimulatedGPU(any_spec)), kernels, configs
        )
        gated = collect_training_dataset(
            ProfilingSession(SimulatedGPU(any_spec, fault_plan=FaultPlan())),
            kernels,
            configs,
        )
        assert bare.rows == gated.rows


class TestChaosReport:
    def test_clean_campaign_reports_all_clean(self, lab):
        spec = lab.spec("Tesla K40c")
        session = ProfilingSession(SimulatedGPU(spec))
        dataset, report = collect_campaign(session, lab.suite[:6])
        assert report.complete
        assert report.flagged_rows == 0
        assert report.read_faults == 0
        assert report.backoff_seconds == 0.0
        assert "clean" in report.summary()

    def test_summary_mentions_skips(self, lab):
        spec = lab.spec("Tesla K40c")
        # Event collection always fails -> some kernels must be skipped.
        plan = FaultPlan(cupti_read_rate=0.9, seed=5)
        session = ProfilingSession(SimulatedGPU(spec, fault_plan=plan))
        dataset, report = collect_campaign(session, lab.suite[:12])
        assert report.skipped_kernels  # 0.9^4 ~ 66 % per kernel
        assert not report.complete
        assert "skipped kernels" in report.summary()
        surviving = set(dataset.kernel_names())
        assert surviving.isdisjoint(report.skipped_kernels)
