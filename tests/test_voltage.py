"""Unit tests for the hidden voltage curves (:mod:`repro.hardware.voltage`)."""

from __future__ import annotations

import pytest

from repro.errors import SpecError
from repro.hardware.components import Domain
from repro.hardware.specs import (
    FrequencyConfig,
    GTX_TITAN_X,
    TESLA_K40C,
    TITAN_XP,
)
from repro.hardware.voltage import (
    VoltageCurve,
    VoltageTable,
    default_voltage_table,
)


class TestVoltageCurve:
    def test_flat_region(self):
        curve = VoltageCurve(flat_level=0.9, breakpoint_mhz=700, slope_per_mhz=1e-3)
        assert curve.normalized_voltage(500) == 0.9
        assert curve.normalized_voltage(700) == 0.9

    def test_linear_region(self):
        curve = VoltageCurve(flat_level=0.9, breakpoint_mhz=700, slope_per_mhz=1e-3)
        assert curve.normalized_voltage(800) == pytest.approx(1.0)

    def test_monotone_nondecreasing(self):
        curve = VoltageCurve(flat_level=0.8, breakpoint_mhz=600, slope_per_mhz=5e-4)
        values = [curve.normalized_voltage(f) for f in range(400, 1300, 50)]
        assert values == sorted(values)

    def test_rejects_negative_slope(self):
        with pytest.raises(SpecError):
            VoltageCurve(flat_level=0.9, breakpoint_mhz=700, slope_per_mhz=-1e-4)

    def test_rejects_nonpositive_flat_level(self):
        with pytest.raises(SpecError):
            VoltageCurve(flat_level=0.0, breakpoint_mhz=700, slope_per_mhz=0)

    def test_through_reference_anchors_at_one(self):
        curve = VoltageCurve.through_reference(
            flat_level=0.85, breakpoint_mhz=700, reference_mhz=975
        )
        assert curve.normalized_voltage(975) == pytest.approx(1.0)

    def test_through_reference_in_flat_region(self):
        # Reference below the breakpoint: whole flat region pinned at 1.
        curve = VoltageCurve.through_reference(
            flat_level=0.85, breakpoint_mhz=900, reference_mhz=800
        )
        assert curve.normalized_voltage(800) == 1.0
        assert curve.normalized_voltage(850) == 1.0

    def test_through_reference_rejects_decreasing(self):
        with pytest.raises(SpecError):
            VoltageCurve.through_reference(
                flat_level=1.2, breakpoint_mhz=700, reference_mhz=975
            )


class TestVoltageTables:
    def test_reference_is_unity(self, any_spec):
        table = default_voltage_table(any_spec)
        assert table.core_voltage(any_spec.reference) == pytest.approx(1.0)
        assert table.memory_voltage(any_spec.reference) == pytest.approx(1.0)

    def test_memory_voltage_constant_across_levels(self, any_spec):
        # Sec. V-B: "no voltage differences were observed across the
        # different memory frequency levels".
        table = default_voltage_table(any_spec)
        voltages = {
            table.memory_voltage(
                FrequencyConfig(any_spec.default_core_mhz, memory)
            )
            for memory in any_spec.memory_frequencies_mhz
        }
        assert len(voltages) == 1

    def test_core_voltage_has_two_regions(self):
        table = default_voltage_table(GTX_TITAN_X)
        reference_memory = GTX_TITAN_X.default_memory_mhz
        low = [
            table.core_voltage(FrequencyConfig(f, reference_memory))
            for f in (595, 633, 671)
        ]
        high = [
            table.core_voltage(FrequencyConfig(f, reference_memory))
            for f in (899, 1050, 1164)
        ]
        assert low[0] == pytest.approx(low[-1])  # flat region
        assert high[0] < high[1] < high[2]  # linear region

    def test_core_voltage_monotone_in_core_frequency(self, any_spec):
        table = default_voltage_table(any_spec)
        memory = any_spec.default_memory_mhz
        values = [
            table.core_voltage(FrequencyConfig(core, memory))
            for core in sorted(any_spec.core_frequencies_mhz)
        ]
        assert values == sorted(values)

    def test_titan_x_memory_coupling_shifts_core_voltage(self):
        # End of Sec. V-B: "significant core voltage differences are
        # predicted on the GTX Titan X across different memory frequencies".
        table = default_voltage_table(GTX_TITAN_X)
        at_default = table.core_voltage(FrequencyConfig(975, 3505))
        at_low = table.core_voltage(FrequencyConfig(975, 810))
        assert at_default != at_low

    def test_titan_xp_has_no_memory_coupling(self):
        table = default_voltage_table(TITAN_XP)
        at_default = table.core_voltage(FrequencyConfig(1404, 5705))
        at_low = table.core_voltage(FrequencyConfig(1404, 4705))
        assert at_default == pytest.approx(at_low)

    def test_voltage_by_domain_dispatch(self):
        table = default_voltage_table(GTX_TITAN_X)
        config = FrequencyConfig(1164, 3505)
        assert table.voltage(Domain.CORE, config) == table.core_voltage(config)
        assert table.voltage(Domain.MEMORY, config) == table.memory_voltage(
            config
        )

    def test_generic_fallback_for_unknown_device(self):
        import dataclasses

        custom = dataclasses.replace(GTX_TITAN_X, name="Custom GPU")
        table = default_voltage_table(custom)
        assert table.core_voltage(custom.reference) == pytest.approx(1.0)

    def test_fig6_magnitudes(self):
        # Fig. 6a: the Titan X curve spans roughly [0.85, 1.15].
        table = default_voltage_table(GTX_TITAN_X)
        low = table.core_voltage(FrequencyConfig(595, 3505))
        high = table.core_voltage(FrequencyConfig(1164, 3505))
        assert 0.80 <= low <= 0.92
        assert 1.05 <= high <= 1.25
