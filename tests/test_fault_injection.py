"""Unit tests for the fault-injection layer (:mod:`repro.driver.faults`)
and the driver stack's resilience hooks.

Everything here is deterministic: fault decisions are pure functions of the
plan seed and stable labels, and retry backoff accumulates on a virtual
clock — no test ever sleeps on the wall clock.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.driver import faults as faultlib
from repro.driver.faults import (
    DEFAULT_RETRY_POLICY,
    BackoffClock,
    FaultPlan,
    FaultStats,
    RetryPolicy,
    robust_median,
)
from repro.driver.nvml import NVMLDevice
from repro.driver.session import ProfilingSession
from repro.errors import (
    DriverError,
    NVMLError,
    PersistentDriverError,
    TransientCuptiError,
    TransientDriverError,
    TransientNVMLError,
)
from repro.hardware.gpu import SimulatedGPU
from repro.hardware.specs import GTX_TITAN_X, FrequencyConfig
from repro.workloads import workload_by_name


def _gpu(plan=None):
    return SimulatedGPU(GTX_TITAN_X, fault_plan=plan)


# ----------------------------------------------------------------------
# FaultPlan
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(nvml_read_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(sample_dropout_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(dropout_density=2.0)

    def test_enabled_property(self):
        assert not FaultPlan().enabled
        assert FaultPlan(nvml_read_rate=0.01).enabled
        # dropout_density alone enables nothing (it only shapes episodes).
        assert not FaultPlan(dropout_density=0.9).enabled

    def test_transient_plan_excludes_counter_corruption(self):
        plan = FaultPlan.transient(0.05, seed=3)
        assert plan.enabled
        assert plan.nvml_read_rate == 0.05
        assert plan.cupti_read_rate == 0.05
        assert plan.sample_dropout_rate == 0.05
        assert plan.thermal_throttle_rate == 0.05
        assert plan.clock_set_failure_rate == 0.05
        # Saturation biases systematically — it is not a transient fault.
        assert plan.counter_corruption_rate == 0.0

    def test_decisions_deterministic_in_seed_and_labels(self):
        a = FaultPlan(nvml_read_rate=0.3, seed=11)
        b = FaultPlan(nvml_read_rate=0.3, seed=11)
        c = FaultPlan(nvml_read_rate=0.3, seed=12)
        labels = [("dev", "k", f"{core}-810", attempt)
                  for core in (595, 705, 810) for attempt in range(4)]
        decisions_a = [a.nvml_read_fails(*label) for label in labels]
        decisions_b = [b.nvml_read_fails(*label) for label in labels]
        decisions_c = [c.nvml_read_fails(*label) for label in labels]
        assert decisions_a == decisions_b
        assert decisions_a != decisions_c

    def test_rate_endpoints(self):
        never = FaultPlan(nvml_read_rate=0.0)
        always = FaultPlan(nvml_read_rate=1.0)
        assert not never.nvml_read_fails("d", "k", "c", 0)
        assert always.nvml_read_fails("d", "k", "c", 0)

    def test_observed_rate_tracks_configured_rate(self):
        plan = FaultPlan(nvml_read_rate=0.05, seed=5)
        hits = sum(
            plan.nvml_read_fails("dev", f"kernel{i}", f"cell{j}", 0)
            for i in range(40)
            for j in range(50)
        )
        assert 0.03 <= hits / 2000 <= 0.07

    def test_dropout_mask_shape_and_determinism(self):
        plan = FaultPlan(sample_dropout_rate=1.0, dropout_density=0.25, seed=2)
        mask = plan.dropout_mask("d", "k", "c", 0, 10, 28)
        assert mask is not None and mask.shape == (10, 28)
        again = plan.dropout_mask("d", "k", "c", 0, 10, 28)
        assert np.array_equal(mask, again)

    def test_dropout_mask_none_without_episode(self):
        plan = FaultPlan(sample_dropout_rate=0.0)
        assert plan.dropout_mask("d", "k", "c", 0, 10, 28) is None

    def test_corrupted_events_systematic(self):
        plan = FaultPlan(counter_corruption_rate=0.5, seed=9)
        names = tuple(f"event_{i}" for i in range(20))
        first = plan.corrupted_events("d", "k", names)
        assert first == plan.corrupted_events("d", "k", names)
        assert 0 < len(first) < len(names)
        # Independent per kernel.
        assert first != plan.corrupted_events("d", "other", names)


# ----------------------------------------------------------------------
# Retry policy / backoff clock / robust median
# ----------------------------------------------------------------------
class TestResiliencePrimitives:
    def test_retry_policy_exponential_schedule(self):
        policy = RetryPolicy(
            max_attempts=5, backoff_base_seconds=0.05, backoff_multiplier=2.0
        )
        assert [policy.delay_for(i) for i in range(4)] == pytest.approx(
            [0.05, 0.1, 0.2, 0.4]
        )

    def test_retry_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base_seconds=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_multiplier=0.5)

    def test_backoff_clock_is_virtual(self, monkeypatch):
        import time

        def forbidden(_seconds):  # pragma: no cover - should never run
            raise AssertionError("wall-clock sleep in a virtual backoff")

        monkeypatch.setattr(time, "sleep", forbidden)
        clock = BackoffClock()
        clock.sleep(0.05)
        clock.sleep(0.1)
        assert clock.total_seconds == pytest.approx(0.15)
        assert clock.sleep_log == [0.05, 0.1]

    def test_backoff_clock_custom_sleeper(self):
        calls = []
        clock = BackoffClock(sleeper=calls.append)
        clock.sleep(0.2)
        assert calls == [0.2]

    def test_robust_median_matches_numpy_without_outliers(self):
        rng = np.random.default_rng(0)
        values = 100.0 + rng.normal(0, 0.5, size=10)
        assert robust_median(values) == float(np.median(values))

    def test_robust_median_rejects_outlier(self):
        values = np.asarray([100.0, 100.2, 99.9, 100.1, 100.05, 40.0])
        robust = robust_median(values)
        plain = float(np.median(values))
        # The outlier is rejected: the result is the median of the clean
        # subset, not the even-count interpolation the outlier drags down.
        assert robust == float(np.median(values[:-1]))
        assert robust != plain

    def test_robust_median_constant_and_empty(self):
        assert robust_median(np.full(5, 42.0)) == 42.0
        with pytest.raises(ValueError):
            robust_median(np.asarray([]))


# ----------------------------------------------------------------------
# Error hierarchy
# ----------------------------------------------------------------------
def test_transient_errors_are_catchable_by_layer_and_kind():
    assert issubclass(TransientNVMLError, NVMLError)
    assert issubclass(TransientNVMLError, TransientDriverError)
    assert issubclass(TransientCuptiError, TransientDriverError)
    assert issubclass(PersistentDriverError, DriverError)
    assert not issubclass(PersistentDriverError, TransientDriverError)


# ----------------------------------------------------------------------
# NVML resilience
# ----------------------------------------------------------------------
class TestNVMLFaults:
    def test_device_inherits_plan_from_board(self):
        plan = FaultPlan.transient(0.05)
        device = NVMLDevice(_gpu(plan))
        assert device.fault_plan is plan

    def test_all_zero_plan_is_bitwise_clean(self):
        kernel = workload_by_name("gemm")
        clean = NVMLDevice(_gpu()).measure_median_power(kernel)
        gated = NVMLDevice(_gpu(FaultPlan())).measure_median_power(kernel)
        assert gated == clean
        assert gated.quality == () and gated.retries == 0

    def test_retry_recovers_and_flags_measurement(self):
        # rate=0.5 guarantees some cell faults at attempt 0 and recovers on
        # a later attempt; scan the grid for one deterministic instance.
        plan = FaultPlan(nvml_read_rate=0.5, seed=123)
        device = NVMLDevice(_gpu(plan))
        kernel = workload_by_name("gemm")
        retried = None
        for config in GTX_TITAN_X.all_configurations():
            device.set_application_clocks(config.core_mhz, config.memory_mhz)
            sleeps_before = len(device.backoff_clock.sleep_log)
            try:
                measurement = device.measure_median_power(kernel)
            except PersistentDriverError:
                continue  # at rate 0.5 some cells legitimately exhaust
            if measurement.retries:
                retried = (measurement, sleeps_before)
                break
        assert retried is not None, "no cell needed a retry at rate 0.5"
        measurement, sleeps_before = retried
        assert faultlib.RETRIED in measurement.quality
        log = device.backoff_clock.sleep_log[sleeps_before:]
        policy = device.retry_policy
        assert log == [policy.delay_for(i) for i in range(measurement.retries)]

    def test_persistent_read_failure_exhausts_budget(self):
        plan = FaultPlan(nvml_read_rate=1.0, seed=1)
        device = NVMLDevice(_gpu(plan))
        kernel = workload_by_name("gemm")
        with pytest.raises(PersistentDriverError):
            device.measure_median_power(kernel)
        policy = device.retry_policy
        assert device.backoff_clock.sleep_log == [
            policy.delay_for(i) for i in range(policy.max_attempts - 1)
        ]
        assert device.fault_stats.read_faults == policy.max_attempts
        assert device.fault_stats.unreadable_cells == 1

    def test_single_shot_measurement_retries(self):
        plan = FaultPlan(nvml_read_rate=1.0, seed=1)
        device = NVMLDevice(_gpu(plan))
        with pytest.raises(PersistentDriverError):
            device.measure_power(workload_by_name("gemm"))

    def test_spurious_throttle_lowers_applied_clock(self):
        plan = FaultPlan(thermal_throttle_rate=1.0, seed=4)
        device = NVMLDevice(_gpu(plan))
        measurement = device.measure_median_power(workload_by_name("gemm"))
        assert faultlib.THROTTLE_INJECTED in measurement.quality
        assert (
            measurement.applied_config.core_mhz
            < measurement.requested_config.core_mhz
        )
        assert measurement.throttled

    def test_dropouts_flagged_and_still_accurate(self):
        plan = FaultPlan(sample_dropout_rate=1.0, dropout_density=0.3, seed=6)
        device = NVMLDevice(_gpu(plan))
        kernel = workload_by_name("gemm")
        faulted = device.measure_median_power(kernel)
        clean = NVMLDevice(_gpu()).measure_median_power(kernel)
        assert faultlib.DROPOUTS in faulted.quality
        assert device.fault_stats.dropped_samples > 0
        # Losing 30 % of samples barely moves the robust median.
        assert faulted.average_watts == pytest.approx(
            clean.average_watts, rel=0.02
        )

    def test_clock_set_failure_persists_and_leaves_clocks(self):
        plan = FaultPlan(clock_set_failure_rate=1.0, seed=8)
        device = NVMLDevice(_gpu(plan))
        before = device.application_clocks
        with pytest.raises(PersistentDriverError):
            device.set_application_clocks(595, 3505)
        assert device.application_clocks == before
        assert device.fault_stats.clock_faults == device.retry_policy.max_attempts

    def test_clock_set_transient_failures_recover(self):
        plan = FaultPlan(clock_set_failure_rate=0.5, seed=21)
        device = NVMLDevice(_gpu(plan))
        applied = 0
        for config in GTX_TITAN_X.all_configurations():
            try:
                device.set_application_clocks(
                    config.core_mhz, config.memory_mhz
                )
            except PersistentDriverError:
                continue
            applied += 1
            assert device.application_clocks == config
        assert applied > 0

    def test_grid_skip_records_unreadable_cells(self):
        plan = FaultPlan(nvml_read_rate=1.0, seed=1)
        device = NVMLDevice(_gpu(plan))
        kernel = workload_by_name("gemm")
        configs = GTX_TITAN_X.all_configurations()[:4]
        grid = device.measure_power_grid(
            [kernel], configs, on_unreadable="skip"
        )
        for measurement in grid.measurements[0]:
            assert measurement.quality == (faultlib.UNREADABLE,)
            assert np.isnan(measurement.average_watts)

    def test_grid_raise_propagates_unreadable(self):
        plan = FaultPlan(nvml_read_rate=1.0, seed=1)
        device = NVMLDevice(_gpu(plan))
        with pytest.raises(PersistentDriverError):
            device.measure_power_grid(
                [workload_by_name("gemm")],
                GTX_TITAN_X.all_configurations()[:4],
            )

    def test_grid_rejects_unknown_on_unreadable(self):
        device = NVMLDevice(_gpu())
        with pytest.raises(NVMLError):
            device.measure_power_grid(
                [workload_by_name("gemm")],
                GTX_TITAN_X.all_configurations()[:2],
                on_unreadable="ignore",
            )


# ----------------------------------------------------------------------
# CUPTI / session resilience
# ----------------------------------------------------------------------
class TestCuptiFaults:
    def test_session_retries_event_collection(self):
        # Moderate rate: some kernels fail once or twice and recover.
        plan = FaultPlan(cupti_read_rate=0.4, seed=17)
        session = ProfilingSession(_gpu(plan))
        kernel = workload_by_name("gemm")
        record = session.collect_events(kernel)
        assert record.kernel_name == kernel.name

    def test_session_exhausts_event_retries(self):
        plan = FaultPlan(cupti_read_rate=1.0, seed=17)
        session = ProfilingSession(_gpu(plan))
        with pytest.raises(PersistentDriverError):
            session.collect_events(workload_by_name("gemm"))
        assert (
            session.fault_stats.event_faults
            == session.retry_policy.max_attempts
        )
        assert len(session.backoff_clock.sleep_log) == (
            session.retry_policy.max_attempts - 1
        )

    def test_counter_saturation_applied_and_reproducible(self):
        plan = FaultPlan(counter_corruption_rate=0.3, seed=30)
        session = ProfilingSession(_gpu(plan))
        kernel = workload_by_name("gemm")
        record = session.collect_events(kernel)
        saturated = [
            name
            for name, value in record.values.items()
            if value == plan.counter_saturation_value
        ]
        expected = plan.corrupted_events(
            "GTX Titan X", kernel.name, tuple(record.values)
        )
        assert tuple(saturated) == expected
        assert saturated  # rate 0.3 over ~20 events: some must saturate
        again = session.collect_events(kernel)
        assert dict(record.values) == dict(again.values)

    def test_shared_stats_and_clock_across_handles(self):
        plan = FaultPlan.transient(0.05)
        session = ProfilingSession(_gpu(plan))
        assert session.nvml.fault_stats is session.fault_stats
        assert session.cupti.fault_stats is session.fault_stats
        assert session.nvml.backoff_clock is session.backoff_clock


# ----------------------------------------------------------------------
# FaultStats
# ----------------------------------------------------------------------
def test_fault_stats_total():
    stats = FaultStats(read_faults=2, clock_faults=1, event_faults=3)
    assert stats.total_faults == 6
    assert FaultStats().total_faults == 0


def test_default_retry_policy_is_bounded():
    assert DEFAULT_RETRY_POLICY.max_attempts >= 2
    assert DEFAULT_RETRY_POLICY.backoff_base_seconds > 0
