"""Unit/integration tests for the iterative estimator (Sec. III-D,
:mod:`repro.core.estimation`)."""

from __future__ import annotations

import pytest

from repro.config import NOISELESS_SETTINGS
from repro.core.dataset import collect_training_dataset
from repro.core.estimation import ModelEstimator, fit_power_model
from repro.driver.session import ProfilingSession
from repro.errors import EstimationError
from repro.hardware.components import Component, Domain
from repro.hardware.gpu import SimulatedGPU
from repro.hardware.specs import FrequencyConfig, GTX_TITAN_X, TESLA_K40C
from repro.microbench import suite_group


def _is_monotone(values, tolerance: float = 1e-6) -> bool:
    """Non-decreasing up to the float epsilon of the weighted-pin PAVA."""
    return all(b >= a - tolerance for a, b in zip(values, values[1:]))


@pytest.fixture(scope="module")
def quiet_fit(quiet_lab):
    """Noise-free fit of the full suite over the full grid."""
    device = "GTX Titan X"
    return (
        quiet_lab.gpu(device),
        quiet_lab.model(device),
        quiet_lab.report(device),
    )


class TestBootstrapConfigurations:
    def test_titan_x_bootstrap(self):
        session = ProfilingSession(SimulatedGPU(GTX_TITAN_X))
        kernels = suite_group("idle") + suite_group("mix")
        dataset = collect_training_dataset(session, kernels)
        configs = ModelEstimator(dataset).bootstrap_configurations()
        assert configs[0] == GTX_TITAN_X.reference
        assert len(configs) == 3
        # F2 changes the core frequency at the reference memory level.
        assert configs[1].memory_mhz == 3505
        assert configs[1].core_mhz != 975
        # F3 changes the memory frequency at the reference core level.
        assert configs[2].core_mhz == 975
        assert configs[2].memory_mhz != 3505

    def test_kepler_bootstrap_uses_two_core_levels(self):
        """Single memory level on the K40c: F3 falls back to a core level."""
        session = ProfilingSession(SimulatedGPU(TESLA_K40C))
        kernels = suite_group("idle") + suite_group("mix")
        dataset = collect_training_dataset(session, kernels)
        configs = ModelEstimator(dataset).bootstrap_configurations()
        assert len(configs) == 3
        assert all(c.memory_mhz == 3004 for c in configs)
        assert len({c.core_mhz for c in configs}) == 3

    def test_requires_reference_in_dataset(self):
        session = ProfilingSession(SimulatedGPU(GTX_TITAN_X))
        kernels = suite_group("idle") + suite_group("mix")
        dataset = collect_training_dataset(
            session, kernels, [FrequencyConfig(595, 810)]
        )
        with pytest.raises(EstimationError):
            ModelEstimator(dataset)


class TestNoiseFreeRecovery:
    def test_voltage_curve_recovered(self, quiet_fit):
        gpu, model, _ = quiet_fit
        for core, estimated in model.core_voltage_curve(3505).items():
            truth = gpu.debug_true_voltage(
                Domain.CORE, FrequencyConfig(core, 3505)
            )
            # The residual deviation at the lowest frequencies is the
            # structural reference-utilization transfer error of the method
            # itself, present with or without measurement noise.
            assert estimated == pytest.approx(truth, abs=0.07), core

    def test_memory_voltage_constraints(self, quiet_fit):
        """V_mem is pinned at the reference, bounded, and monotone in the
        memory frequency within the reference core group. (Away from the
        anchor the estimates legitimately absorb the reference-utilization
        transfer error — the same structural effect behind the paper's
        higher 810 MHz prediction error in Fig. 8; the paper had no tool to
        read memory voltages either.)"""
        _, model, _ = quiet_fit
        assert model.voltage_at(GTX_TITAN_X.reference).v_mem == 1.0
        group = [
            model.voltage_at(FrequencyConfig(975, memory)).v_mem
            for memory in (810, 3300, 3505, 4005)
        ]
        assert _is_monotone(group)
        for value in group:
            assert 0.6 <= value <= 1.6

    def test_training_error_small(self, quiet_fit):
        _, _, report = quiet_fit
        assert report.train_mae_percent < 4.0

    def test_converged_within_paper_budget(self, quiet_fit):
        _, _, report = quiet_fit
        assert report.iterations <= 50

    def test_rmse_history_decreases_overall(self, quiet_fit):
        _, _, report = quiet_fit
        assert report.rmse_history[-1] < report.rmse_history[0]

    def test_constant_power_recovered(self, quiet_fit):
        """beta0 + beta2 + f-scaled idle terms must reproduce the ~84 W
        constant share at the reference configuration."""
        _, model, _ = quiet_fit
        p = model.parameters
        constant = (
            p.beta0 + p.beta2 + 975 * p.beta1 + 3505 * p.beta3
        )
        assert constant == pytest.approx(84.0, abs=8.0)

    def test_dram_omega_dominates(self, quiet_fit):
        """DRAM at full utilization draws far more than any single core
        component on the Titan X ground truth."""
        _, model, _ = quiet_fit
        p = model.parameters
        dram_full = p.omega_mem * 3505
        core_fulls = [p.omega_core[c] * 975 for c in p.omega_core]
        assert dram_full > max(core_fulls)


class TestEstimatorModes:
    def test_model_voltage_false_keeps_unit_voltages(self):
        session = ProfilingSession(
            SimulatedGPU(GTX_TITAN_X, settings=NOISELESS_SETTINGS)
        )
        kernels = suite_group("sp") + suite_group("dram") + suite_group("idle")
        configs = [
            FrequencyConfig(core, 3505) for core in (595, 823, 975, 1164)
        ]
        dataset = collect_training_dataset(session, kernels, configs)
        model, report = ModelEstimator(
            dataset, model_voltage=False
        ).estimate()
        assert report.converged
        for config in model.known_configurations():
            estimate = model.voltage_at(config)
            assert estimate.v_core == 1.0
            assert estimate.v_mem == 1.0

    def test_voltage_monotone_after_fit(self, quiet_fit):
        _, model, _ = quiet_fit
        curve = model.core_voltage_curve(3505)
        assert _is_monotone(list(curve.values()))

    def test_fit_power_model_wrapper(self):
        session = ProfilingSession(
            SimulatedGPU(GTX_TITAN_X, settings=NOISELESS_SETTINGS)
        )
        kernels = suite_group("sp") + suite_group("dram") + suite_group("idle")
        configs = [
            FrequencyConfig(975, 3505),
            FrequencyConfig(595, 3505),
            FrequencyConfig(975, 810),
        ]
        model, report = fit_power_model(session, kernels, configs)
        assert report.final_rmse >= 0
        assert len(model.known_configurations()) == 3
