"""Policy-regret tests: planning with *predicted* durations must not cost
more than a sliver of the true energy savings that planning with *measured*
(oracle) durations achieves.

Two :class:`~repro.runtime.manager.OnlineDVFSManager` instances share the
same power model, session and policy; one plans from the fitted
performance model's predicted runtimes, the other from measured runtimes
(``oracle_durations=True``). Both plans are then graded on the *measured*
energy of their chosen configuration — the regret bound is on ground
truth, not on the model's own scoring. Everything is deterministic
(memoized runs, fixed probe schedule), so the bounds are exact gates, not
statistical ones.
"""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.runtime.manager import OnlineDVFSManager
from repro.runtime.policies import (
    Ed2pPolicy,
    EdpPolicy,
    EnergyPolicy,
    PowerCapPolicy,
    StaticPolicy,
)

DEVICES = ("Titan Xp", "GTX Titan X", "Tesla K40c")

#: Maximum fraction of true energy savings the predicted-duration plan may
#: lose against the oracle-duration plan. The runtime model is near-exact,
#: so the two plans should coincide; the bound gives deliberate slack for
#: knife-edge ties between configurations with near-identical energy.
REGRET_BOUND = 0.02

POLICIES = {
    "energy": lambda: EnergyPolicy(),
    "edp": lambda: EdpPolicy(),
    "ed2p": lambda: Ed2pPolicy(),
}


def _true_energy(session, kernel, config):
    """Measured energy (J) of one invocation — the grading oracle."""
    measurement = session.measure_power(kernel, config, median=False)
    return measurement.average_watts * session.measure_time(kernel, config)


def _savings(session, kernel, chosen_config, reference_config):
    reference = _true_energy(session, kernel, reference_config)
    chosen = _true_energy(session, kernel, chosen_config)
    if reference <= 0.0:
        return 0.0
    return 1.0 - chosen / reference


@pytest.fixture(scope="module", params=DEVICES)
def device_setup(request, lab):
    device = request.param
    return (
        device,
        lab.model(device),
        lab.session(device),
        lab.performance_model(device),
    )


class TestPolicyRegret:
    @pytest.mark.parametrize("policy_name", sorted(POLICIES))
    def test_predicted_durations_match_oracle_savings(
        self, device_setup, lab, policy_name
    ):
        device, model, session, performance = device_setup
        spec = session.gpu.spec
        predicted_manager = OnlineDVFSManager(
            model, session, POLICIES[policy_name](), performance=performance
        )
        oracle_manager = OnlineDVFSManager(
            model,
            session,
            POLICIES[policy_name](),
            performance=performance,
            oracle_durations=True,
        )
        kernels = lab.suite[::13]  # ~7 kernels across the suite spectrum
        for kernel in kernels:
            predicted_plan = predicted_manager.plan_for(kernel)
            oracle_plan = oracle_manager.plan_for(kernel)
            predicted_savings = _savings(
                session, kernel, predicted_plan.config, spec.reference
            )
            oracle_savings = _savings(
                session, kernel, oracle_plan.config, spec.reference
            )
            regret = oracle_savings - predicted_savings
            assert regret <= REGRET_BOUND, (
                f"{device}/{policy_name}/{kernel.name}: predicted-duration "
                f"plan loses {regret:.1%} of true savings "
                f"(chose {predicted_plan.config}, oracle chose "
                f"{oracle_plan.config})"
            )

    def test_planning_is_deterministic(self, device_setup, lab):
        _device, model, session, performance = device_setup
        kernel = lab.suite[4]
        first = OnlineDVFSManager(
            model, session, EnergyPolicy(), performance=performance
        ).plan_for(kernel)
        second = OnlineDVFSManager(
            model, session, EnergyPolicy(), performance=performance
        ).plan_for(kernel)
        assert first.config == second.config
        assert first.chosen.energy_joules == second.chosen.energy_joules

    def test_oracle_flag_keeps_measured_durations(self, device_setup, lab):
        """With oracle_durations=True the scored time is the measured one
        even though a performance model is attached."""
        _device, model, session, performance = device_setup
        kernel = lab.suite[4]
        manager = OnlineDVFSManager(
            model,
            session,
            EnergyPolicy(),
            performance=performance,
            oracle_durations=True,
        )
        plan = manager.plan_for(kernel)
        assert plan.chosen.time_seconds == session.measure_time(
            kernel, plan.config
        )

    def test_predicted_durations_are_used_when_known(self, device_setup, lab):
        _device, model, session, performance = device_setup
        kernel = lab.suite[4]
        manager = OnlineDVFSManager(
            model, session, EnergyPolicy(), performance=performance
        )
        plan = manager.plan_for(kernel)
        assert plan.chosen.time_seconds == performance.predict_runtime(
            kernel.name, plan.config
        )

    def test_unknown_kernel_falls_back_to_measurement(self, lab):
        device = "GTX Titan X"
        session = lab.session(device)
        performance = lab.performance_model(device)
        kernel = lab.workloads(device)[0]  # Table-III workload, not fitted
        assert not performance.has_kernel(kernel.name)
        manager = OnlineDVFSManager(
            lab.model(device),
            session,
            EnergyPolicy(),
            performance=performance,
        )
        plan = manager.plan_for(kernel)
        assert plan.chosen.time_seconds == session.measure_time(
            kernel, plan.config
        )


class TestCapAndStaticInteraction:
    @pytest.fixture(scope="class")
    def setup(self, lab):
        device = "GTX Titan X"
        return (
            lab.model(device),
            lab.session(device),
            lab.performance_model(device),
        )

    def test_power_cap_respected_with_predicted_durations(self, setup, lab):
        model, session, performance = setup
        kernel = lab.suite[20]
        cap = 150.0
        manager = OnlineDVFSManager(
            model,
            session,
            PowerCapPolicy(cap_watts=cap),
            performance=performance,
        )
        plan = manager.plan_for(kernel)
        assert plan.chosen.predicted_power_watts <= cap
        # Among capped candidates the policy picks the fastest; check
        # against an explicit scan of the same scored grid.
        utilizations = plan.utilizations
        fastest = min(
            (
                (
                    performance.predict_runtime(kernel.name, config),
                    model.predict_power(utilizations, config),
                    config,
                )
                for config in session.gpu.spec.all_configurations()
                if model.predict_power(utilizations, config) <= cap
            ),
        )
        assert plan.config == fastest[2]

    def test_impossible_cap_falls_back_to_lowest_power(self, setup, lab):
        model, session, performance = setup
        kernel = lab.suite[20]
        manager = OnlineDVFSManager(
            model,
            session,
            PowerCapPolicy(cap_watts=1.0),
            performance=performance,
        )
        plan = manager.plan_for(kernel)
        utilizations = plan.utilizations
        lowest = min(
            session.gpu.spec.all_configurations(),
            key=lambda config: model.predict_power(utilizations, config),
        )
        assert plan.config == lowest

    def test_static_policy_pins_and_validates(self, setup, lab):
        model, session, performance = setup
        kernel = lab.suite[20]
        target = session.gpu.spec.all_configurations()[2]
        manager = OnlineDVFSManager(
            model,
            session,
            StaticPolicy(config=target),
            performance=performance,
        )
        assert manager.plan_for(kernel).config == target

    def test_static_policy_outside_candidates_raises(self, setup, lab):
        model, session, performance = setup
        spec = session.gpu.spec
        candidates = spec.all_configurations()[:3]
        pinned = spec.all_configurations()[-1]
        assert pinned not in candidates
        manager = OnlineDVFSManager(
            model,
            session,
            StaticPolicy(config=pinned),
            candidate_configs=candidates,
            performance=performance,
        )
        with pytest.raises(ValidationError):
            manager.plan_for(lab.suite[21])
