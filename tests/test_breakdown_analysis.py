"""Unit tests for the per-component breakdown reports
(:mod:`repro.analysis.breakdown`)."""

from __future__ import annotations

import pytest

from repro.analysis.breakdown import (
    BreakdownReport,
    WorkloadBreakdown,
    breakdown_report,
)
from repro.core.metrics import UtilizationVector
from repro.errors import ValidationError
from repro.hardware.components import ALL_COMPONENTS, Component
from repro.hardware.specs import FrequencyConfig


def make_utilizations() -> UtilizationVector:
    return UtilizationVector(
        values={component: 0.0 for component in ALL_COMPONENTS}
    )


def entry(workload, measured, constant, sp, dram) -> WorkloadBreakdown:
    component_watts = {component: 0.0 for component in ALL_COMPONENTS}
    component_watts[Component.SP] = sp
    component_watts[Component.DRAM] = dram
    return WorkloadBreakdown(
        workload=workload,
        config=FrequencyConfig(975, 3505),
        measured_watts=measured,
        constant_watts=constant,
        component_watts=component_watts,
        utilizations=make_utilizations(),
    )


@pytest.fixture()
def report() -> BreakdownReport:
    return BreakdownReport(
        device_name="GTX Titan X",
        config=FrequencyConfig(975, 3505),
        entries=(
            entry("a", measured=150.0, constant=84.0, sp=30.0, dram=40.0),
            entry("b", measured=100.0, constant=84.0, sp=10.0, dram=0.0),
        ),
    )


class TestWorkloadBreakdown:
    def test_predicted_total(self, report):
        assert report.entry("a").predicted_watts == pytest.approx(154.0)

    def test_dynamic_share(self, report):
        assert report.entry("a").dynamic_share == pytest.approx(70.0 / 154.0)

    def test_absolute_error(self, report):
        assert report.entry("a").absolute_error_percent == pytest.approx(
            100 * 4.0 / 150.0
        )


class TestBreakdownReport:
    def test_mean_error(self, report):
        a = 100 * 4.0 / 150.0
        b = 100 * 6.0 / 100.0
        assert report.mean_absolute_error_percent == pytest.approx((a + b) / 2)

    def test_mean_constant(self, report):
        assert report.mean_constant_watts == pytest.approx(84.0)

    def test_max_dynamic_share(self, report):
        assert report.max_dynamic_share == pytest.approx(70.0 / 154.0)

    def test_component_means(self, report):
        means = report.component_means()
        assert means[Component.SP] == pytest.approx(20.0)
        assert means[Component.DRAM] == pytest.approx(20.0)

    def test_entry_lookup_unknown(self, report):
        with pytest.raises(ValidationError):
            report.entry("zzz")

    def test_empty_report_rejected(self):
        with pytest.raises(ValidationError):
            BreakdownReport(
                device_name="x", config=FrequencyConfig(975, 3505), entries=()
            )


class TestBreakdownReportEndToEnd:
    def test_report_over_real_model(self, lab):
        from repro.workloads import workload_by_name

        device = "GTX Titan X"
        report = breakdown_report(
            lab.model(device),
            lab.session(device),
            [workload_by_name("gemm"), workload_by_name("lbm")],
        )
        assert len(report.entries) == 2
        assert report.mean_absolute_error_percent < 20.0
        # LBM is the DRAM-heavy one of the pair.
        lbm = report.entry("lbm")
        gemm = report.entry("gemm")
        assert (
            lbm.component_watts[Component.DRAM]
            > gemm.component_watts[Component.DRAM]
        )

    def test_rejects_empty_workloads(self, lab):
        with pytest.raises(ValidationError):
            breakdown_report(
                lab.model("GTX Titan X"), lab.session("GTX Titan X"), []
            )
