"""Tenant router + traffic-shape tests (:mod:`repro.serving.router`,
:mod:`repro.serving.traffic`).

The router's admission log must be a pure function of the virtual arrival
timeline — no wall clock anywhere — and each stock traffic shape must
exercise its designed regime: diurnal admits cleanly, a paid flash crowd
sheds on global backlog, and the mixed shape's free tenant sheds on quota
while the paid majority is untouched.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import (
    RoutingError,
    ServerOverloadedError,
    ServingError,
    ValidationError,
)
from repro.serving.router import (
    DEFAULT_TIERS,
    AdmissionDecision,
    FleetRouter,
    RouterConfig,
    TenantTier,
)
from repro.serving.traffic import (
    SHAPE_NAMES,
    TrafficShape,
    sample_arrivals,
    shape_by_name,
)
from repro.telemetry import TraceRecorder


class TestTokenBuckets:
    def test_burst_depth_then_quota_shedding(self):
        router = FleetRouter(
            tiers=[TenantTier(name="t", rate_rps=10.0, burst=3)]
        )
        # Three instantaneous arrivals drain the bucket; the fourth sheds.
        decisions = [router.admit("t", 0.0) for _ in range(4)]
        assert [d.admitted for d in decisions] == [True, True, True, False]
        assert decisions[-1].reason == "quota"

    def test_bucket_refills_at_the_tier_rate(self):
        router = FleetRouter(
            tiers=[TenantTier(name="t", rate_rps=10.0, burst=1)]
        )
        assert router.admit("t", 0.0).admitted
        assert not router.admit("t", 0.05).admitted  # 0.5 tokens back
        assert router.admit("t", 0.15).admitted  # >= 1 token again

    def test_tenants_are_isolated(self):
        router = FleetRouter(
            tiers=[
                TenantTier(name="noisy", rate_rps=10.0, burst=1),
                TenantTier(name="calm", rate_rps=10.0, burst=1),
            ]
        )
        assert router.admit("noisy", 0.0).admitted
        assert not router.admit("noisy", 0.0).admitted
        # The noisy tenant's empty bucket never touches the calm one.
        assert router.admit("calm", 0.0).admitted

    def test_backlog_sheds_under_aggregate_overload(self):
        router = FleetRouter(
            tiers=[TenantTier(name="t", rate_rps=1e6, burst=10**6)],
            config=RouterConfig(service_rate_rps=100.0, max_backlog=5),
        )
        decisions = [router.admit("t", 0.0) for _ in range(8)]
        assert sum(d.admitted for d in decisions) == 5
        assert {d.reason for d in decisions if not d.admitted} == {"backlog"}
        # Virtual time passing drains the modelled backlog again.
        assert router.admit("t", 1.0).admitted

    def test_counts_match_decisions(self):
        router = FleetRouter(
            tiers=[TenantTier(name="t", rate_rps=10.0, burst=2)]
        )
        router.admit_stream(["t"] * 5, [0.0, 0.0, 0.0, 0.0, 10.0])
        assert router.counts() == {
            "admitted": 3,
            "shed_quota": 2,
            "shed_backlog": 0,
        }

    def test_telemetry_labels_per_tenant(self):
        recorder = TraceRecorder()
        router = FleetRouter(recorder=recorder)
        router.admit("paid", 0.0)
        router.admit("free", 0.0)
        assert recorder.counter("router.admitted", tenant="paid") == 1
        assert recorder.counter("router.admitted", tenant="free") == 1


class TestRoutingErrors:
    def test_unknown_tenant_rejected(self):
        router = FleetRouter()
        with pytest.raises(RoutingError, match="unknown tenant"):
            router.admit("stranger", 0.0)

    def test_non_monotonic_virtual_time_rejected(self):
        router = FleetRouter()
        router.admit("paid", 1.0)
        with pytest.raises(RoutingError, match="non-monotonic"):
            router.admit("paid", 0.5)

    def test_admit_or_raise_is_a_fast_503(self):
        router = FleetRouter(
            tiers=[TenantTier(name="t", rate_rps=10.0, burst=1)]
        )
        router.admit_or_raise("t", 0.0)
        with pytest.raises(ServerOverloadedError, match="shed on quota"):
            router.admit_or_raise("t", 0.0)

    @pytest.mark.parametrize(
        "build, match",
        [
            (lambda: TenantTier(name="t", rate_rps=0.0, burst=1), "rate"),
            (lambda: TenantTier(name="t", rate_rps=1.0, burst=0), "burst"),
            (lambda: RouterConfig(service_rate_rps=0.0), "service rate"),
            (lambda: RouterConfig(max_backlog=0), "max_backlog"),
            (lambda: FleetRouter(tiers=[]), "at least one"),
            (
                lambda: FleetRouter(tiers=list(DEFAULT_TIERS) * 2),
                "duplicate",
            ),
        ],
    )
    def test_config_validation(self, build, match):
        with pytest.raises(ServingError, match=match):
            build()


class TestTrafficShapes:
    @pytest.mark.parametrize("name", SHAPE_NAMES)
    def test_same_seed_same_timeline_bitwise(self, name):
        shape = shape_by_name(name)
        first = sample_arrivals(shape, 500, seed=42)
        second = sample_arrivals(shape, 500, seed=42)
        assert first.times_s.tobytes() == second.times_s.tobytes()
        assert first.tenants == second.tenants
        different = sample_arrivals(shape, 500, seed=43)
        assert first.times_s.tobytes() != different.times_s.tobytes()

    @pytest.mark.parametrize("name", SHAPE_NAMES)
    def test_timelines_are_sorted_and_in_horizon(self, name):
        timeline = sample_arrivals(shape_by_name(name), 500, seed=7)
        times = timeline.times_s
        assert len(timeline) == 500
        assert (np.diff(times) >= 0).all()
        assert times[0] >= 0.0
        assert times[-1] <= timeline.shape.duration_s
        assert sum(timeline.tenant_counts().values()) == 500

    def test_diurnal_concentrates_arrivals_at_midday(self):
        shape = shape_by_name("diurnal")
        times = sample_arrivals(shape, 4000, seed=3).times_s
        midday = ((times > 0.25) & (times < 0.75)).mean()
        assert midday > 0.6  # crest carries well over half the traffic

    def test_burst_concentrates_arrivals_in_the_window(self):
        shape = shape_by_name("burst")
        times = sample_arrivals(shape, 4000, seed=3).times_s
        lo, hi = shape.burst_window
        in_window = (
            (times >= lo * shape.duration_s) & (times < hi * shape.duration_s)
        ).mean()
        # The 10% window at 25x the base rate holds most of the arrivals.
        assert in_window > 0.5

    def test_mixed_shape_carries_both_tenants(self):
        counts = sample_arrivals(
            shape_by_name("mixed"), 2000, seed=9
        ).tenant_counts()
        assert set(counts) == {"paid", "free"}
        assert counts["paid"] > counts["free"] > 0

    def test_designed_shed_regimes(self):
        """Each stock shape exercises its own admission regime."""
        outcomes = {}
        for index, name in enumerate(SHAPE_NAMES):
            timeline = sample_arrivals(shape_by_name(name), 2000, seed=index)
            router = FleetRouter()
            router.admit_stream(timeline.tenants, timeline.times_s)
            outcomes[name] = router.counts()
        assert outcomes["diurnal"]["shed_quota"] == 0
        assert outcomes["diurnal"]["shed_backlog"] == 0
        assert outcomes["burst"]["shed_backlog"] > 0
        assert outcomes["burst"]["shed_quota"] == 0
        assert outcomes["mixed"]["shed_quota"] > 0
        assert outcomes["mixed"]["shed_backlog"] == 0

    def test_unknown_shape_rejected(self):
        with pytest.raises(ValidationError, match="unknown traffic shape"):
            shape_by_name("tsunami")

    @pytest.mark.parametrize(
        "overrides, match",
        [
            (dict(kind="square"), "envelope"),
            (dict(duration_s=0.0), "duration"),
            (dict(base_rps=0.0), "base_rps"),
            (dict(peak_rps=0.5), "base_rps"),
            (dict(burst_window=(0.9, 0.1)), "burst window"),
            (dict(tenants=()), "tenant"),
        ],
    )
    def test_shape_validation(self, overrides, match):
        fields = dict(
            name="x", kind="flat", duration_s=1.0, base_rps=1.0, peak_rps=1.0
        )
        fields.update(overrides)
        with pytest.raises(ValidationError, match=match):
            TrafficShape(**fields)

    def test_empty_timeline_rejected(self):
        with pytest.raises(ValidationError, match="at least one"):
            sample_arrivals(shape_by_name("burst"), 0, seed=1)

    def test_decisions_expose_their_inputs(self):
        router = FleetRouter()
        decision = router.admit("paid", 0.25)
        assert decision == AdmissionDecision("paid", 0.25, True, "ok")
