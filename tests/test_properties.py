"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.voltage import fit_voltage_regions
from repro.core.regression import isotonic_regression, minimize_voltage_1d
from repro.hardware.components import ALL_COMPONENTS, Component
from repro.hardware.performance import PerformanceModel
from repro.hardware.specs import FrequencyConfig, GTX_TITAN_X
from repro.kernels.kernel import KernelDescriptor
from repro.units import mean_absolute_percentage_error

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestIsotonicRegressionProperties:
    @given(st.lists(finite_floats, min_size=1, max_size=60))
    def test_output_monotone(self, values):
        result = isotonic_regression(values)
        assert np.all(np.diff(result) >= -1e-9 * (1 + np.abs(result[:-1])))

    @given(st.lists(finite_floats, min_size=1, max_size=60))
    def test_mean_preserved(self, values):
        result = isotonic_regression(values)
        scale = max(1.0, float(np.max(np.abs(values))))
        assert float(result.mean()) == pytest.approx(
            float(np.mean(values)), abs=1e-9 * scale
        )

    @given(st.lists(finite_floats, min_size=1, max_size=60))
    def test_idempotent(self, values):
        once = isotonic_regression(values)
        twice = isotonic_regression(once)
        assert np.allclose(once, twice)

    @given(st.lists(finite_floats, min_size=1, max_size=60))
    def test_within_input_range(self, values):
        result = isotonic_regression(values)
        assert result.min() >= min(values) - 1e-9
        assert result.max() <= max(values) + 1e-9

    @given(
        st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=2,
            max_size=40,
        )
    )
    def test_projection_optimality_vs_naive_candidates(self, values):
        """The PAVA result is at least as close (in L2) as two trivial
        monotone candidates: the running maximum and the constant mean."""
        result = isotonic_regression(values)
        y = np.asarray(values)

        def loss(candidate):
            return float(np.sum((candidate - y) ** 2))

        running_max = np.maximum.accumulate(y)
        constant = np.full_like(y, y.mean())
        assert loss(result) <= loss(running_max) + 1e-6
        assert loss(result) <= loss(constant) + 1e-6


class TestVoltageSolverProperties:
    @given(
        beta=st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
        v_true=st.floats(min_value=0.65, max_value=1.55, allow_nan=False),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_recovers_generator_within_bounds(self, beta, v_true, seed):
        rng = np.random.default_rng(seed)
        quadratic = rng.uniform(5.0, 60.0, 30)
        target = beta * v_true + quadratic * v_true**2
        solution = minimize_voltage_1d(beta, quadratic, target, (0.6, 1.6))
        assert solution == pytest.approx(v_true, abs=1e-4)

    @given(
        beta=st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_solution_always_within_bounds(self, beta, seed):
        rng = np.random.default_rng(seed)
        quadratic = rng.uniform(0.0, 60.0, 20)
        target = rng.uniform(-50.0, 400.0, 20)
        solution = minimize_voltage_1d(beta, quadratic, target, (0.6, 1.6))
        assert 0.6 <= solution <= 1.6


class TestMAPEProperties:
    @given(
        st.lists(
            st.floats(min_value=1.0, max_value=1e4, allow_nan=False),
            min_size=1,
            max_size=30,
        )
    )
    def test_zero_for_perfect_prediction(self, measured):
        assert mean_absolute_percentage_error(measured, measured) == 0.0

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=1.0, max_value=1e4, allow_nan=False),
                st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_nonnegative(self, pairs):
        measured = [m for m, _ in pairs]
        predicted = [p for _, p in pairs]
        assert mean_absolute_percentage_error(measured, predicted) >= 0.0


class TestPerformanceModelProperties:
    model = PerformanceModel(GTX_TITAN_X)

    @st.composite
    def kernels(draw):
        work = st.floats(min_value=0.0, max_value=512.0, allow_nan=False)
        kernel = KernelDescriptor(
            name="hyp",
            threads=draw(st.integers(min_value=1024, max_value=8_000_000)),
            int_ops=draw(work),
            sp_ops=draw(work),
            dp_ops=draw(st.floats(min_value=0.0, max_value=16.0)),
            sf_ops=draw(st.floats(min_value=0.0, max_value=64.0)),
            shared_bytes=draw(st.floats(min_value=0.0, max_value=512.0)),
            l2_bytes=draw(st.floats(min_value=0.0, max_value=256.0)),
            dram_bytes=draw(st.floats(min_value=0.0, max_value=64.0)),
            min_cycles=draw(st.floats(min_value=0.0, max_value=1e7)),
        )
        return kernel

    @given(kernel=kernels())
    @settings(max_examples=60, deadline=None)
    def test_utilizations_in_unit_interval(self, kernel):
        if kernel.is_idle and kernel.min_cycles == 0.0:
            return  # no work, no floor: undefined elapsed time
        profile = self.model.profile(kernel, GTX_TITAN_X.reference)
        for component in ALL_COMPONENTS:
            assert 0.0 <= profile.utilizations[component] <= 1.0
        assert 0.0 <= profile.issue_activity <= 1.0

    @given(kernel=kernels())
    @settings(max_examples=60, deadline=None)
    def test_time_never_improves_when_both_clocks_drop(self, kernel):
        if kernel.is_idle and kernel.min_cycles == 0.0:
            return
        fast = self.model.elapsed_seconds(kernel, FrequencyConfig(1164, 4005))
        slow = self.model.elapsed_seconds(kernel, FrequencyConfig(595, 810))
        assert slow >= fast * (1 - 1e-12)

    @given(
        kernel=kernels(),
        scale=st.floats(min_value=1.5, max_value=8.0, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_scaling_work_scales_time(self, kernel, scale):
        if kernel.is_idle and kernel.min_cycles == 0.0:
            return
        base = self.model.elapsed_seconds(kernel, GTX_TITAN_X.reference)
        scaled = self.model.elapsed_seconds(
            kernel.scaled(scale), GTX_TITAN_X.reference
        )
        assert scaled == pytest.approx(base * scale, rel=1e-6)


class TestVoltageRegionFitProperties:
    @given(
        flat=st.floats(min_value=0.7, max_value=1.0, allow_nan=False),
        slope=st.floats(min_value=1e-5, max_value=1e-3, allow_nan=False),
        breakpoint=st.sampled_from([595, 709, 823, 937, 1050]),
    )
    @settings(max_examples=40, deadline=None)
    def test_exact_recovery_of_synthetic_curves(self, flat, slope, breakpoint):
        frequencies = sorted(GTX_TITAN_X.core_frequencies_mhz)
        curve = {
            f: flat if f <= breakpoint else flat + slope * (f - breakpoint)
            for f in frequencies
        }
        fit = fit_voltage_regions(curve)
        assert fit.rmse < 1e-9
        assert fit.breakpoint_mhz == breakpoint
        assert fit.flat_level == pytest.approx(flat)
