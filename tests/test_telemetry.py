"""Unit tests for the telemetry subsystem (recorder, spans, exporters).

The contracts under test:

* the no-op recorder records nothing and allocates nothing per call;
* the trace recorder builds a correct span tree on the virtual clock;
* counters are monotonic, gauges last-write-wins, labels normalized;
* both exporters are deterministic (byte-identical across identical runs)
  and the JSONL exporter round-trips through ``json.loads``;
* instrumented pipeline outputs are bitwise identical with telemetry on
  and off — the recorder only ever observes.
"""

from __future__ import annotations

import json

import pytest

from repro.core.dataset import collect_campaign
from repro.core.estimation import ModelEstimator
from repro.driver.session import ProfilingSession
from repro.errors import ValidationError
from repro.hardware.gpu import SimulatedGPU
from repro.hardware.specs import TESLA_K40C
from repro.microbench import build_suite
from repro.telemetry import (
    JSONL_SCHEMA,
    NULL_RECORDER,
    TelemetryRecorder,
    TraceRecorder,
    VirtualClock,
    to_jsonl,
    to_prometheus,
    write_trace,
)
from repro.telemetry.recorder import _NULL_SPAN


class TestNullRecorder:
    def test_disabled_and_empty(self):
        assert NULL_RECORDER.enabled is False
        assert NULL_RECORDER.counters() == {}
        assert NULL_RECORDER.gauges() == {}
        assert NULL_RECORDER.finished_spans() == []

    def test_span_returns_shared_inert_handle(self):
        handle = NULL_RECORDER.span("anything", device="x")
        assert handle is _NULL_SPAN
        with handle as entered:
            entered.set(attr=1)  # must be a silent no-op
        assert NULL_RECORDER.finished_spans() == []

    def test_null_span_does_not_swallow_exceptions(self):
        with pytest.raises(RuntimeError):
            with NULL_RECORDER.span("x"):
                raise RuntimeError("boom")

    def test_add_and_gauge_are_noops(self):
        NULL_RECORDER.add("faults.injected", 3)
        NULL_RECORDER.set_gauge("estimator.rmse", 1.5)
        assert NULL_RECORDER.counters() == {}
        assert NULL_RECORDER.gauges() == {}


class TestVirtualClock:
    def test_monotonic_ticks(self):
        clock = VirtualClock()
        assert clock.ticks == 0
        assert [clock.tick() for _ in range(3)] == [1, 2, 3]
        assert clock.ticks == 3


class TestSpans:
    def test_span_tree_nesting(self):
        recorder = TraceRecorder()
        with recorder.span("campaign", device="d"):
            with recorder.span("profile", kernel="k1"):
                pass
            with recorder.span("measure", kernel="k1"):
                with recorder.span("cell", core=1000, memory=3000):
                    pass
        tree = recorder.span_tree()
        assert tree == [  # start order
            ("campaign",),
            ("campaign", "profile"),
            ("campaign", "measure"),
            ("campaign", "measure", "cell"),
        ]
        assert recorder.open_spans == 0

    def test_ticks_encode_event_order(self):
        recorder = TraceRecorder()
        with recorder.span("outer"):
            with recorder.span("inner"):
                pass
        spans = {s.name: s for s in recorder.finished_spans()}
        assert spans["outer"].start_tick == 1
        assert spans["inner"].start_tick == 2
        assert spans["inner"].end_tick == 3
        assert spans["outer"].end_tick == 4

    def test_set_attaches_attributes(self):
        recorder = TraceRecorder()
        with recorder.span("estimate", rows=10) as span:
            span.set(converged=True, rmse=1.25)
        (span,) = recorder.finished_spans()
        assert span.attributes == {
            "rows": 10,
            "converged": True,
            "rmse": 1.25,
        }

    def test_exception_annotates_and_propagates(self):
        recorder = TraceRecorder()
        with pytest.raises(ValidationError):
            with recorder.span("campaign"):
                raise ValidationError("empty")
        (span,) = recorder.finished_spans()
        assert span.attributes["error"] == "ValidationError"
        assert not span.open

    def test_out_of_order_close_is_an_error(self):
        recorder = TraceRecorder()
        outer = recorder.span("outer")
        recorder.span("inner")
        with pytest.raises(RuntimeError, match="out of order"):
            outer.__exit__(None, None, None)

    def test_open_spans_excluded_from_finished(self):
        recorder = TraceRecorder()
        recorder.span("left-open")
        assert recorder.finished_spans() == []
        assert recorder.open_spans == 1


class TestCountersAndGauges:
    def test_counter_accumulates(self):
        recorder = TraceRecorder()
        recorder.add("nvml.retries")
        recorder.add("nvml.retries", 2.0)
        assert recorder.counter("nvml.retries") == 3.0
        assert recorder.counters() == {"nvml.retries": 3.0}

    def test_negative_increment_rejected(self):
        recorder = TraceRecorder()
        with pytest.raises(ValueError, match="monotonic"):
            recorder.add("faults.injected", -1.0)

    def test_labels_normalize_to_one_series(self):
        recorder = TraceRecorder()
        recorder.add("rows.collected", device="a", kernel="k")
        recorder.add("rows.collected", kernel="k", device="a")
        assert recorder.counter("rows.collected", device="a", kernel="k") == 2.0
        assert recorder.counters() == {
            "rows.collected{device=a,kernel=k}": 2.0
        }

    def test_gauge_last_write_wins(self):
        recorder = TraceRecorder()
        recorder.set_gauge("estimator.rmse", 5.0)
        recorder.set_gauge("estimator.rmse", 2.5)
        assert recorder.gauge("estimator.rmse") == 2.5
        assert recorder.gauge("missing") is None


def _small_trace() -> TraceRecorder:
    recorder = TraceRecorder()
    with recorder.span("campaign", device="Tesla K40c"):
        with recorder.span("cell", core=745, memory=3004) as cell:
            cell.set(quality=["retried"])
        recorder.add("rows.collected")
        recorder.add("faults.injected", 2.0, device="Tesla K40c")
    recorder.set_gauge("estimator.rmse", 1.25)
    return recorder


class TestJsonlExport:
    def test_schema_and_roundtrip(self):
        text = to_jsonl(_small_trace())
        assert text.endswith("\n")
        lines = [json.loads(line) for line in text.splitlines()]
        meta = lines[0]
        assert meta["kind"] == "meta"
        assert meta["schema"] == JSONL_SCHEMA
        assert meta["spans"] == 2
        kinds = [line["kind"] for line in lines]
        assert kinds == ["meta", "span", "span", "counter", "counter", "gauge"]
        spans = [line for line in lines if line["kind"] == "span"]
        # Start order: cell finished first but campaign started first.
        assert spans[0]["name"] == "campaign"
        assert spans[0]["parent"] is None
        assert spans[1]["name"] == "cell"
        assert spans[1]["parent"] == spans[0]["id"]
        assert spans[1]["attrs"]["quality"] == ["retried"]

    def test_byte_identical_across_identical_runs(self):
        assert to_jsonl(_small_trace()) == to_jsonl(_small_trace())

    def test_counter_lines_sorted_with_labels(self):
        lines = [
            json.loads(line)
            for line in to_jsonl(_small_trace()).splitlines()
        ]
        counters = [line for line in lines if line["kind"] == "counter"]
        assert [c["name"] for c in counters] == [
            "faults.injected",
            "rows.collected",
        ]
        assert counters[0]["labels"] == {"device": "Tesla K40c"}


class TestPrometheusExport:
    def test_format(self):
        text = to_prometheus(_small_trace())
        lines = text.splitlines()
        assert lines[0] == "# TYPE repro_spans_total counter"
        assert lines[1] == "repro_spans_total 2"
        assert "# TYPE repro_faults_injected counter" in lines
        assert 'repro_faults_injected{device="Tesla K40c"} 2' in lines
        assert "# TYPE repro_estimator_rmse gauge" in lines
        assert "repro_estimator_rmse 1.25" in lines

    def test_byte_identical_across_identical_runs(self):
        assert to_prometheus(_small_trace()) == to_prometheus(_small_trace())

    def test_label_values_escaped(self):
        recorder = TraceRecorder()
        recorder.add("x", kernel='with"quote\\slash')
        assert 'kernel="with\\"quote\\\\slash"' in to_prometheus(recorder)


class TestWriteTrace:
    def test_writes_jsonl_and_prom(self, tmp_path):
        recorder = _small_trace()
        jsonl = write_trace(recorder, tmp_path / "trace.jsonl")
        prom = write_trace(recorder, tmp_path / "trace.prom", format="prom")
        assert jsonl.read_text() == to_jsonl(recorder)
        assert prom.read_text() == to_prometheus(recorder)

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown telemetry format"):
            write_trace(_small_trace(), tmp_path / "t", format="xml")


class TestTelemetryIsPureObservation:
    """Telemetry on vs off: pipeline outputs stay bitwise identical."""

    def test_campaign_and_fit_bitwise_identical(self):
        kernels = build_suite()[:4]
        configs = TESLA_K40C.all_configurations()[:5]

        plain = ProfilingSession(SimulatedGPU(TESLA_K40C))
        recorder = TraceRecorder()
        traced = ProfilingSession(
            SimulatedGPU(TESLA_K40C, recorder=recorder)
        )

        dataset_off, report_off = collect_campaign(plain, kernels, configs)
        dataset_on, report_on = collect_campaign(traced, kernels, configs)
        assert dataset_off.rows == dataset_on.rows
        assert report_off == report_on

        _, fit_off = ModelEstimator(dataset_off).estimate()
        _, fit_on = ModelEstimator(
            dataset_on, recorder=recorder
        ).estimate()
        assert fit_off.rmse_history == fit_on.rmse_history

        # ... and the trace actually captured the run.
        assert recorder.counter("rows.collected") == len(dataset_on.rows)
        assert recorder.counter("estimator.iterations") == fit_on.iterations
        assert ("campaign",) in recorder.span_tree()
        assert ("estimate", "iteration") in recorder.span_tree()
