"""Tests for the energy-aware trace simulator and frequency plans
(:mod:`repro.simulator.energy` / :mod:`repro.simulator.plans`)."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.hardware.specs import FrequencyConfig, GTX_TITAN_X
from repro.runtime.policies import EnergyPolicy
from repro.runtime.trace import ApplicationTrace
from repro.simulator.energy import EnergyAwareSimulator
from repro.simulator.plans import PerKernelPlan, StaticPlan
from repro.workloads import workload_by_name


@pytest.fixture(scope="module")
def simulator(lab) -> EnergyAwareSimulator:
    device = "GTX Titan X"
    return EnergyAwareSimulator(lab.model(device), lab.session(device))


@pytest.fixture(scope="module")
def trace() -> ApplicationTrace:
    return ApplicationTrace.from_pairs(
        "pipeline",
        [
            (workload_by_name("gemm"), 30),
            (workload_by_name("blackscholes"), 10),
            (workload_by_name("cutcp"), 20),
        ],
    )


class TestPlans:
    def test_static_plan(self):
        plan = StaticPlan(FrequencyConfig(785, 3505))
        assert plan.config_for(workload_by_name("gemm")) == FrequencyConfig(
            785, 3505
        )

    def test_per_kernel_plan_with_default(self):
        plan = PerKernelPlan(
            {"gemm": FrequencyConfig(785, 3505)},
            default=FrequencyConfig(975, 3505),
        )
        assert plan.config_for(workload_by_name("gemm")) == FrequencyConfig(
            785, 3505
        )
        assert plan.config_for(workload_by_name("lbm")) == FrequencyConfig(
            975, 3505
        )

    def test_per_kernel_plan_without_default_rejects_unknown(self):
        plan = PerKernelPlan({"gemm": FrequencyConfig(785, 3505)})
        with pytest.raises(ValidationError):
            plan.config_for(workload_by_name("lbm"))

    def test_empty_per_kernel_plan_rejected(self):
        with pytest.raises(ValidationError):
            PerKernelPlan({})

    def test_policy_plan_caches_decisions(self, simulator):
        plan = simulator.policy_plan(EnergyPolicy(max_slowdown=1.10))
        first = plan.config_for(workload_by_name("gemm"))
        second = plan.config_for(workload_by_name("gemm"))
        assert first == second


class TestSimulation:
    def test_phase_accounting(self, simulator, trace):
        result = simulator.simulate(trace, StaticPlan(GTX_TITAN_X.reference))
        assert len(result.phases) == 3
        assert result.total_energy_joules == pytest.approx(
            sum(p.energy_joules for p in result.phases)
        )
        assert result.average_power_watts > 0

    def test_invocations_multiply_time(self, simulator):
        single = ApplicationTrace.from_pairs(
            "one", [(workload_by_name("gemm"), 1)]
        )
        many = ApplicationTrace.from_pairs(
            "many", [(workload_by_name("gemm"), 10)]
        )
        plan = StaticPlan(GTX_TITAN_X.reference)
        t1 = simulator.simulate(single, plan).total_time_seconds
        t10 = simulator.simulate(many, plan).total_time_seconds
        assert t10 == pytest.approx(10 * t1)

    def test_compare_plans_sorted_by_energy(self, simulator, trace):
        plans = [
            StaticPlan(GTX_TITAN_X.reference, "reference"),
            StaticPlan(FrequencyConfig(785, 810), "low"),
            simulator.policy_plan(EnergyPolicy(max_slowdown=1.10), "policy"),
        ]
        results = simulator.compare_plans(trace, plans)
        energies = [r.total_energy_joules for r in results]
        assert energies == sorted(energies)

    def test_policy_plan_never_worse_than_reference(self, simulator, trace):
        results = simulator.compare_plans(
            trace,
            [
                StaticPlan(GTX_TITAN_X.reference, "reference"),
                simulator.policy_plan(EnergyPolicy(max_slowdown=1.10), "policy"),
            ],
        )
        by_name = {r.plan_name: r for r in results}
        assert (
            by_name["policy"].total_energy_joules
            <= by_name["reference"].total_energy_joules + 1e-9
        )

    def test_empty_plan_list_rejected(self, simulator, trace):
        with pytest.raises(ValidationError):
            simulator.compare_plans(trace, [])


class TestGrading:
    @pytest.mark.parametrize(
        "config",
        [FrequencyConfig(975, 3505), FrequencyConfig(785, 810)],
    )
    def test_energy_prediction_within_fifteen_percent(
        self, simulator, trace, config
    ):
        grade = simulator.grade_against_device(trace, StaticPlan(config))
        assert abs(grade["energy_error_fraction"]) < 0.15
        assert abs(grade["time_error_fraction"]) < 0.15

    def test_grade_reports_both_sides(self, simulator, trace):
        grade = simulator.grade_against_device(
            trace, StaticPlan(GTX_TITAN_X.reference)
        )
        assert grade["predicted_energy_joules"] > 0
        assert grade["measured_energy_joules"] > 0
