"""Unit tests for the measurement-chain noise models
(:mod:`repro.hardware.noise`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import DEFAULT_SETTINGS, NOISELESS_SETTINGS
from repro.hardware.noise import (
    NOISE_PROFILES,
    counter_noise_factor,
    kernel_residual_factor,
    noise_profile_for,
    sensor_noise_matrix,
    sensor_sample_noise,
)


class TestProfiles:
    def test_profiles_for_paper_architectures(self):
        assert set(NOISE_PROFILES) == {"Pascal", "Maxwell", "Kepler"}

    def test_kepler_counters_least_accurate(self):
        # Sec. V-B attributes the K40c's higher error to event inaccuracy.
        kepler = NOISE_PROFILES["Kepler"].counter_sigma
        assert kepler > NOISE_PROFILES["Pascal"].counter_sigma
        assert kepler > NOISE_PROFILES["Maxwell"].counter_sigma

    def test_pascal_noisier_than_maxwell(self):
        # Matches the 6.9% vs 6.0% validation-error ordering.
        assert (
            NOISE_PROFILES["Pascal"].residual_sigma
            > NOISE_PROFILES["Maxwell"].residual_sigma
        )

    def test_unknown_architecture_falls_back(self):
        assert noise_profile_for("Volta") is not None


class TestDeterminism:
    def test_residual_is_stable(self):
        a = kernel_residual_factor("Maxwell", "gemm", DEFAULT_SETTINGS)
        b = kernel_residual_factor("Maxwell", "gemm", DEFAULT_SETTINGS)
        assert a == b

    def test_residual_differs_per_kernel(self):
        a = kernel_residual_factor("Maxwell", "gemm", DEFAULT_SETTINGS)
        b = kernel_residual_factor("Maxwell", "lbm", DEFAULT_SETTINGS)
        assert a != b

    def test_residual_differs_per_architecture(self):
        a = kernel_residual_factor("Maxwell", "gemm", DEFAULT_SETTINGS)
        b = kernel_residual_factor("Kepler", "gemm", DEFAULT_SETTINGS)
        assert a != b

    def test_counter_noise_is_stable_per_event(self):
        a = counter_noise_factor("Kepler", "gemm", "active_cycles", DEFAULT_SETTINGS)
        b = counter_noise_factor("Kepler", "gemm", "active_cycles", DEFAULT_SETTINGS)
        assert a == b

    def test_counter_noise_differs_per_event(self):
        a = counter_noise_factor("Kepler", "gemm", "event_a", DEFAULT_SETTINGS)
        b = counter_noise_factor("Kepler", "gemm", "event_b", DEFAULT_SETTINGS)
        assert a != b

    def test_counter_noise_nonnegative(self):
        for i in range(50):
            factor = counter_noise_factor(
                "Kepler", f"kernel-{i}", "event", DEFAULT_SETTINGS
            )
            assert factor >= 0.0


class TestNoiselessMode:
    def test_residual_is_one(self):
        assert kernel_residual_factor("Kepler", "gemm", NOISELESS_SETTINGS) == 1.0

    def test_counter_factor_is_one(self):
        assert (
            counter_noise_factor("Kepler", "gemm", "e", NOISELESS_SETTINGS)
            == 1.0
        )

    def test_sensor_noise_is_ones(self):
        noise = sensor_sample_noise("Maxwell", "gemm", "cfg", 10, NOISELESS_SETTINGS)
        assert np.all(noise == 1.0)


class TestSensorNoise:
    def test_matrix_shape(self):
        matrix = sensor_noise_matrix(
            "Maxwell", "gemm", "cfg", 10, 7, DEFAULT_SETTINGS
        )
        assert matrix.shape == (10, 7)

    def test_rows_are_independent_draws(self):
        matrix = sensor_noise_matrix(
            "Maxwell", "gemm", "cfg", 2, 16, DEFAULT_SETTINGS
        )
        assert not np.allclose(matrix[0], matrix[1])

    def test_mean_close_to_one(self):
        matrix = sensor_noise_matrix(
            "Maxwell", "gemm", "cfg", 20, 50, DEFAULT_SETTINGS
        )
        assert float(matrix.mean()) == pytest.approx(1.0, abs=0.01)

    def test_zero_samples(self):
        assert sensor_sample_noise(
            "Maxwell", "gemm", "cfg", 0, DEFAULT_SETTINGS
        ).size == 0
