"""Recovery tests for the Sec. III-D estimator on synthetic data.

The integration tests grade the estimator against the simulated GPU, where
structural error is expected. Here the data is generated from the *model's
own functional form* (Eq. 6/7) with known parameters and monotone voltage
curves, isolating the optimizer from the substrate.

What "correct" means here is subtle and worth stating: the alternating
problem has **flat directions** — only one configuration (the reference) is
pinned at V = 1, so a per-configuration voltage can trade scale against the
coefficients of its domain without changing any prediction. The paper's
algorithm (and ours) therefore guarantees *predictive* recovery, not
parameter-wise uniqueness. The tests encode exactly that: predictions on
unseen kernels recover almost exactly; individual coefficients and voltage
levels recover up to the flat-direction smear.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dataset import TrainingDataset, TrainingRow
from repro.core.estimation import ModelEstimator
from repro.core.metrics import UtilizationVector
from repro.core.model import ModelParameters
from repro.hardware.components import ALL_COMPONENTS, CORE_COMPONENTS, Component
from repro.hardware.specs import FrequencyConfig, GTX_TITAN_X

#: Grid used by the synthetic campaigns: every core level at two memory
#: levels — enough to expose the full voltage curve at a third of the cost
#: of the full 64-configuration grid.
SYNTHETIC_CONFIGS = tuple(
    FrequencyConfig(core, memory)
    for memory in (3505, 810)
    for core in GTX_TITAN_X.core_frequencies_mhz
)


def synthetic_dataset(
    parameters: ModelParameters,
    flat_level: float,
    breakpoint_mhz: float,
    kernels: int = 25,
    seed: int = 0,
) -> TrainingDataset:
    """Rows generated exactly from Eq. 6/7 with a flat+linear core-voltage
    curve anchored at V(reference) = 1 and V_mem = 1."""
    spec = GTX_TITAN_X
    rng = np.random.default_rng(seed)
    reference = spec.reference

    def v_core(frequency: float) -> float:
        if frequency <= breakpoint_mhz:
            return flat_level
        slope = (1.0 - flat_level) / (reference.core_mhz - breakpoint_mhz)
        return flat_level + slope * (frequency - breakpoint_mhz)

    utilization_vectors = []
    for _ in range(kernels):
        values = {
            component: float(rng.uniform(0.0, 0.9))
            for component in ALL_COMPONENTS
        }
        utilization_vectors.append(UtilizationVector(values=values))

    rows = []
    for index, utilization in enumerate(utilization_vectors):
        for config in SYNTHETIC_CONFIGS:
            vc = v_core(config.core_mhz)
            vm = 1.0
            watts = (
                parameters.beta0 * vc
                + vc**2
                * config.core_mhz
                * (
                    parameters.beta1
                    + sum(
                        parameters.omega_core[c] * utilization[c]
                        for c in CORE_COMPONENTS
                    )
                )
                + parameters.beta2 * vm
                + vm**2
                * config.memory_mhz
                * (
                    parameters.beta3
                    + parameters.omega_mem * utilization[Component.DRAM]
                )
            )
            rows.append(
                TrainingRow(
                    kernel_name=f"synthetic_{index}",
                    config=config,
                    measured_watts=watts,
                    utilizations=utilization,
                )
            )
    return TrainingDataset(spec=spec, rows=tuple(rows))


def reference_parameters() -> ModelParameters:
    return ModelParameters(
        beta0=22.0,
        beta1=0.030,
        beta2=8.0,
        beta3=0.010,
        omega_core={
            Component.INT: 0.035, Component.SP: 0.050, Component.DP: 0.018,
            Component.SF: 0.028, Component.SHARED: 0.040, Component.L2: 0.024,
        },
        omega_mem=0.024,
    )


@pytest.fixture(scope="module")
def fitted():
    """A long-budget fit: the alternation converges *linearly*, so exact
    recovery on noiseless synthetic data needs more iterations than the
    paper's 50-iteration budget (which suffices at realistic noise levels,
    where the remaining alternation residual is far below the noise floor).
    """
    truth = reference_parameters()
    dataset = synthetic_dataset(truth, flat_level=0.86, breakpoint_mhz=700)
    model, report = ModelEstimator(
        dataset, max_iterations=300, tolerance=1e-8
    ).estimate()
    return truth, model, report


class TestPredictiveRecovery:
    """The strong guarantee: predictions are recovered almost exactly."""

    def test_training_error_collapses(self, fitted):
        _, _, report = fitted
        assert report.train_mae_percent < 0.25

    def test_prediction_transfers_to_unseen_kernels(self, fitted):
        truth, model, _ = fitted
        test = synthetic_dataset(truth, 0.86, 700, kernels=10, seed=2)
        errors = [
            abs(
                model.predict_power(row.utilizations, row.config)
                - row.measured_watts
            )
            / row.measured_watts
            for row in test.rows
        ]
        assert 100 * float(np.mean(errors)) < 0.8


class TestParameterRecoveryUpToFlatDirections:
    """The weaker guarantee: parameters recover up to the scale smear the
    free per-configuration voltages allow."""

    def test_core_omegas_recovered(self, fitted):
        truth, model, _ = fitted
        for component in CORE_COMPONENTS:
            assert model.parameters.omega_core[component] == pytest.approx(
                truth.omega_core[component], rel=0.15
            ), component

    def test_memory_omega_recovered(self, fitted):
        truth, model, _ = fitted
        assert model.parameters.omega_mem == pytest.approx(
            truth.omega_mem, rel=0.10
        )

    def test_core_voltage_curve_recovered(self, fitted):
        _, model, _ = fitted
        flat, breakpoint = 0.86, 700.0
        reference = GTX_TITAN_X.reference

        def v_true(frequency: float) -> float:
            if frequency <= breakpoint:
                return flat
            slope = (1.0 - flat) / (reference.core_mhz - breakpoint)
            return flat + slope * (frequency - breakpoint)

        for frequency, estimated in model.core_voltage_curve(3505).items():
            assert estimated == pytest.approx(
                v_true(frequency), abs=0.03
            ), frequency

    def test_memory_voltage_near_flat(self, fitted):
        _, model, _ = fitted
        for config in model.known_configurations():
            assert model.voltage_at(config).v_mem == pytest.approx(
                1.0, abs=0.06
            )

    @given(
        flat=st.floats(min_value=0.80, max_value=0.94, allow_nan=False),
        breakpoint=st.sampled_from([709.0, 785.0, 861.0]),
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=4, deadline=None, derandomize=True)
    def test_recovery_across_random_curves(self, flat, breakpoint, seed):
        """Property: for any flat/linear curve in the physical range, the
        alternation lands within ~1 % training error and recovers the flat
        level within the smear.

        The bound is not tighter because the alternation is — as the paper
        itself calls it — a *heuristic*: on some synthetic populations it
        settles at non-global fixed points with ~1 % residual (verified to
        be initialization-independent). That residual is an order of
        magnitude below the measurement-noise floor of any real campaign,
        which is why the paper's 50-iteration budget is adequate in
        practice.
        """
        dataset = synthetic_dataset(
            reference_parameters(), flat, breakpoint, kernels=15, seed=seed
        )
        model, report = ModelEstimator(
            dataset, max_iterations=200, tolerance=1e-8
        ).estimate()
        assert report.train_mae_percent < 1.5
        curve = model.core_voltage_curve(3505)
        lowest = min(curve)
        assert curve[lowest] == pytest.approx(flat, abs=0.08)
