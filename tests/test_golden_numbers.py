"""Golden-number regression tests.

EXPERIMENTS.md records the exact values of the reference run; these tests
pin the headline ones so any change that silently shifts the recorded
numbers fails loudly (the file and the code must move together). Bands are
tight (±0.5 pp) but not exact, so harmless numerical-library differences
don't trip them; a genuinely shifted result will.
"""

from __future__ import annotations

import pytest

from repro.config import MASTER_SEED


GOLDEN_MAE = {
    "Titan Xp": 6.14,
    "GTX Titan X": 5.84,
    "Tesla K40c": 12.25,
}

GOLDEN_FIG8 = {4005.0: 5.27, 3505.0: 4.48, 3300.0: 4.45, 810.0: 9.14}


class TestHeadlineNumbers:
    @pytest.mark.parametrize("device", sorted(GOLDEN_MAE))
    def test_fig7_mae(self, lab, device):
        mae = lab.validation(device).mean_absolute_error_percent
        assert mae == pytest.approx(GOLDEN_MAE[device], abs=0.5), (
            f"{device} validation MAE moved from the EXPERIMENTS.md record; "
            "update the file if the shift is intentional"
        )

    def test_fig8_per_memory_mae(self, lab):
        errors = lab.validation("GTX Titan X").error_by_memory_frequency()
        for memory, golden in GOLDEN_FIG8.items():
            assert errors[memory] == pytest.approx(golden, abs=0.6), memory

    def test_estimator_iteration_counts(self, lab):
        # EXPERIMENTS.md: 44 / 29 / 2 iterations.
        assert lab.report("Titan Xp").iterations == pytest.approx(44, abs=6)
        assert lab.report("GTX Titan X").iterations == pytest.approx(29, abs=6)
        assert lab.report("Tesla K40c").iterations <= 10

    def test_training_mae(self, lab):
        # EXPERIMENTS.md: 6.13 / 5.55 / 9.13 %.
        assert lab.report("Titan Xp").train_mae_percent == pytest.approx(
            6.13, abs=0.5
        )
        assert lab.report("GTX Titan X").train_mae_percent == pytest.approx(
            5.55, abs=0.5
        )
        assert lab.report("Tesla K40c").train_mae_percent == pytest.approx(
            9.13, abs=0.7
        )


#: Timing-probe counts of the suite-wide performance fit. Deterministic:
#: the probe schedule is fixed and the boards throttle reproducibly (the
#: Tesla K40c's lower count is its TDP limiter collapsing probe requests
#: onto fewer applied configurations).
GOLDEN_PERF_PROBES = {
    "Titan Xp": 249,
    "GTX Titan X": 249,
    "Tesla K40c": 245,
}


class TestPerformanceFitNumbers:
    """Pins of the runtime-model fit riding the same Lab artefacts."""

    @pytest.mark.parametrize("device", sorted(GOLDEN_PERF_PROBES))
    def test_probe_counts_pinned(self, lab, device):
        report = lab.performance_report(device)
        assert report.kernels == len(lab.suite)
        assert report.probes == GOLDEN_PERF_PROBES[device], (
            f"{device}: probe schedule drifted; observed {report.probes}"
        )

    @pytest.mark.parametrize("device", sorted(GOLDEN_PERF_PROBES))
    def test_probe_fit_mae_is_zero(self, lab, device):
        # The fitted law matches the probe timings to float precision
        # (observed ~4e-14 %); drift here means the fit math changed.
        report = lab.performance_report(device)
        assert report.train_mae_percent <= 1e-10, device
        assert report.worst_rmse <= 1e-12, device


#: One small single-device cluster scenario per device (4 nodes, 40 burst
#: jobs, 5-kernel pool, edf scheduler, MASTER_SEED): fleet energy in
#: joules and the saving against the max-clocks FIFO baseline. The Tesla
#: K40c's ~0 saving is real — its TDP limiter throttles the max clocks to
#: the reference, so there is almost no grid to exploit.
GOLDEN_CLUSTER = {
    "Titan Xp": (206.58, 0.1026),
    "GTX Titan X": (286.28, 0.2496),
    "Tesla K40c": (353.87, 0.0000),
}


class TestClusterScenarioNumbers:
    """Pins of the fleet-scheduling simulator riding the same Lab."""

    @pytest.mark.parametrize("device", sorted(GOLDEN_CLUSTER))
    def test_edf_energy_and_savings_pinned(self, lab, device):
        from repro.cluster import (
            ClusterSimulator,
            DeviceOracle,
            build_fleet,
            fleet_reference_seconds,
            generate_job_trace,
            scheduler_by_name,
        )

        kernels = tuple(lab.workloads(device))[:5]
        oracle = DeviceOracle.fit(device, kernels, lab=lab)
        references = fleet_reference_seconds([oracle], kernels)
        trace = generate_job_trace(
            "burst", 40, MASTER_SEED, kernels, references, horizon_s=1.0
        )
        nodes = build_fleet({device: oracle}, {device: 4})
        edf = ClusterSimulator(nodes, scheduler_by_name("edf")).run(trace)
        baseline = ClusterSimulator(
            nodes, scheduler_by_name("max-clocks")
        ).run(trace)
        golden_energy, golden_savings = GOLDEN_CLUSTER[device]
        assert edf.fleet_energy_joules == pytest.approx(
            golden_energy, rel=0.01
        ), (
            f"{device}: edf fleet energy moved from the recorded scenario; "
            "update the pin if the shift is intentional"
        )
        savings = 1.0 - edf.fleet_energy_joules / baseline.fleet_energy_joules
        assert savings == pytest.approx(golden_savings, abs=0.01), device


#: Pins of the power-capped synthetic family member (Tesla K40c seed,
#: conservative table, 16 nm, single memory domain, TDP at 0.42x the
#: saturated draw). Generation is seeded, so these are as stable as the
#: Table-II device numbers: the probe counts are exact (the TDP limiter
#: collapses 39 of the 83 kernels onto a single applied configuration),
#: the MAE carries the usual ±0.5 pp band.
GOLDEN_SYNTHETIC = {
    "device": "Tesla K40c conservative-16nm-15sm-1m-capped",
    "power_mae_percent": 2.53,
    "perf_probes": 169,
    "single_probe_kernels": 39,
}


class TestSyntheticMemberNumbers:
    """Pins of the generated power-capped device riding the same Lab."""

    @pytest.fixture(scope="class")
    def capped_name(self, lab):
        from repro.hardware.families import standard_members

        member = standard_members()[-1]
        name = lab.register_member(member)
        assert name == GOLDEN_SYNTHETIC["device"], (
            "the standard fleet's capped member moved; regenerate the pins"
        )
        return name

    def test_power_mae_pinned(self, lab, capped_name):
        mae = lab.validation(capped_name).mean_absolute_error_percent
        assert mae == pytest.approx(
            GOLDEN_SYNTHETIC["power_mae_percent"], abs=0.5
        ), "capped-member validation MAE moved; update the pin if intended"

    def test_perf_probe_counts_pinned(self, lab, capped_name):
        from repro.core.perf_estimation import PerformanceEstimator
        from repro.telemetry import TraceRecorder

        recorder = TraceRecorder()
        _, report = PerformanceEstimator(
            lab.dataset(capped_name),
            lab.session(capped_name),
            lab.suite,
            recorder=recorder,
        ).estimate()
        assert report.kernels == len(lab.suite)
        assert report.probes == GOLDEN_SYNTHETIC["perf_probes"], (
            f"probe schedule drifted; observed {report.probes}"
        )
        single = sum(
            1
            for span in recorder.finished_spans()
            if span.name == "perf_fit" and span.attributes["probes"] == 1
        )
        assert single == GOLDEN_SYNTHETIC["single_probe_kernels"], (
            f"throttle-collapse count drifted; observed {single}"
        )
