"""Unit tests for the frequency-selection policies
(:mod:`repro.runtime.policies`)."""

from __future__ import annotations

import pytest

from repro.analysis.dvfs import ConfigurationScore
from repro.errors import ValidationError
from repro.hardware.specs import FrequencyConfig
from repro.runtime.policies import (
    EdpPolicy,
    EnergyPolicy,
    PerformanceConstrainedEnergyPolicy,
    PowerCapPolicy,
    StaticPolicy,
)


def score(core, memory, watts, seconds) -> ConfigurationScore:
    return ConfigurationScore(
        config=FrequencyConfig(core, memory),
        predicted_power_watts=watts,
        time_seconds=seconds,
    )


@pytest.fixture()
def scores():
    return [
        score(1164, 3505, 220.0, 1.00),   # fast, hot      -> E=220, EDP=220
        score(975, 3505, 170.0, 1.10),    # reference      -> E=187, EDP=205.7
        score(785, 3505, 130.0, 1.30),    # slower, cooler -> E=169, EDP=219.7
        score(595, 810, 70.0, 3.00),      # slowest        -> E=210, EDP=630
    ]


@pytest.fixture()
def reference(scores):
    return scores[1]


class TestStaticPolicy:
    def test_picks_requested_config(self, scores, reference):
        policy = StaticPolicy(FrequencyConfig(785, 3505))
        assert policy.choose(scores, reference).config == FrequencyConfig(
            785, 3505
        )

    def test_missing_config_rejected(self, scores, reference):
        policy = StaticPolicy(FrequencyConfig(595, 3505))
        with pytest.raises(ValidationError):
            policy.choose(scores, reference)


class TestEnergyPolicy:
    def test_unbounded_minimum_energy(self, scores, reference):
        chosen = EnergyPolicy().choose(scores, reference)
        assert chosen.config == FrequencyConfig(785, 3505)

    def test_slowdown_bound_excludes_slow_configs(self, scores, reference):
        # Budget: 1.10 * 1.10 = 1.21 s -> the 1.30 s and 3.0 s configs drop.
        chosen = EnergyPolicy(max_slowdown=1.10).choose(scores, reference)
        assert chosen.config == FrequencyConfig(975, 3505)

    def test_infeasible_bound_falls_back_to_all(self, reference):
        only_slow = [score(595, 810, 70.0, 5.0)]
        chosen = EnergyPolicy(max_slowdown=1.01).choose(only_slow, reference)
        assert chosen.config == FrequencyConfig(595, 810)

    def test_invalid_bound_rejected(self, scores, reference):
        with pytest.raises(ValidationError):
            EnergyPolicy(max_slowdown=0.9).choose(scores, reference)

    def test_empty_scores_rejected(self, reference):
        with pytest.raises(ValidationError):
            EnergyPolicy().choose([], reference)


class TestEdpPolicy:
    def test_minimum_edp(self, scores, reference):
        chosen = EdpPolicy().choose(scores, reference)
        assert chosen.config == FrequencyConfig(975, 3505)


class TestPerformanceConstrainedEnergyPolicy:
    def test_strict_constraint_keeps_fast_configs(self, scores, reference):
        policy = PerformanceConstrainedEnergyPolicy(min_speed_fraction=1.0)
        chosen = policy.choose(scores, reference)
        # Budget = reference time exactly: only the two fastest qualify;
        # of those, the reference itself has lower energy (187 < 220).
        assert chosen.config == FrequencyConfig(975, 3505)

    def test_loose_constraint_finds_cheaper_config(self, scores, reference):
        policy = PerformanceConstrainedEnergyPolicy(min_speed_fraction=0.8)
        chosen = policy.choose(scores, reference)
        assert chosen.config == FrequencyConfig(785, 3505)

    def test_invalid_fraction_rejected(self, scores, reference):
        policy = PerformanceConstrainedEnergyPolicy(min_speed_fraction=1.5)
        with pytest.raises(ValidationError):
            policy.choose(scores, reference)


class TestPowerCapPolicy:
    def test_fastest_under_cap(self, scores, reference):
        chosen = PowerCapPolicy(cap_watts=180.0).choose(scores, reference)
        assert chosen.config == FrequencyConfig(975, 3505)

    def test_cap_below_everything_falls_back_to_min_power(
        self, scores, reference
    ):
        chosen = PowerCapPolicy(cap_watts=50.0).choose(scores, reference)
        assert chosen.config == FrequencyConfig(595, 810)

    def test_generous_cap_picks_fastest(self, scores, reference):
        chosen = PowerCapPolicy(cap_watts=500.0).choose(scores, reference)
        assert chosen.config == FrequencyConfig(1164, 3505)

    def test_invalid_cap_rejected(self, scores, reference):
        with pytest.raises(ValidationError):
            PowerCapPolicy(cap_watts=0.0).choose(scores, reference)
