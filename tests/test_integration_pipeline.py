"""End-to-end integration tests of the full paper pipeline.

These exercise the whole chain — microbenchmark suite, driver layer, metric
computation, iterative estimation, validation on the unseen Table-III
workloads — under the default (noisy) measurement chain, asserting the
paper-level accuracy claims. Heavy artefacts come from the session-scoped
``lab`` fixture, so each device is fitted at most once per test run.
"""

from __future__ import annotations

import pytest

from repro.hardware.components import Component, Domain
from repro.hardware.specs import FrequencyConfig


class TestHeadlineAccuracy:
    """Fig. 7: 6.9 % / 6.0 % / 12.4 % mean absolute error."""

    @pytest.mark.parametrize(
        "device, paper_mae, band",
        [
            ("Titan Xp", 6.9, 3.0),
            ("GTX Titan X", 6.0, 3.0),
            ("Tesla K40c", 12.4, 4.0),
        ],
    )
    def test_validation_mae_matches_paper_band(
        self, lab, device, paper_mae, band
    ):
        mae = lab.validation(device).mean_absolute_error_percent
        assert abs(mae - paper_mae) <= band

    def test_kepler_is_the_least_accurate(self, lab):
        kepler = lab.validation("Tesla K40c").mean_absolute_error_percent
        assert kepler > lab.validation("Titan Xp").mean_absolute_error_percent
        assert kepler > lab.validation(
            "GTX Titan X"
        ).mean_absolute_error_percent

    def test_training_error_below_validation_error(self, lab):
        device = "GTX Titan X"
        assert (
            lab.report(device).train_mae_percent
            <= lab.validation(device).mean_absolute_error_percent + 1.0
        )

    def test_estimator_converges_within_paper_budget(self, lab):
        # Sec. V-A: "converged in less than 50 iterations".
        for device in ("GTX Titan X", "Tesla K40c"):
            assert lab.report(device).iterations <= 50


class TestVoltageRecovery:
    """Fig. 6: the estimated core-voltage curve matches the hidden truth."""

    @pytest.mark.parametrize("device", ["GTX Titan X", "Titan Xp"])
    def test_core_voltage_error_small(self, lab, device):
        spec = lab.spec(device)
        gpu = lab.gpu(device)
        model = lab.model(device)
        for core, estimated in model.core_voltage_curve(
            spec.default_memory_mhz
        ).items():
            truth = gpu.debug_true_voltage(
                Domain.CORE, FrequencyConfig(core, spec.default_memory_mhz)
            )
            assert abs(estimated - truth) < 0.07, core

    def test_voltage_curve_monotone(self, lab):
        curve = lab.model("GTX Titan X").core_voltage_curve(3505)
        values = list(curve.values())
        assert all(b >= a - 1e-6 for a, b in zip(values, values[1:]))


class TestErrorStructure:
    """Fig. 8: error grows with distance from the reference configuration."""

    def test_low_memory_frequency_hardest(self, lab):
        errors = lab.validation("GTX Titan X").error_by_memory_frequency()
        assert errors[810.0] > errors[3505.0]

    def test_reference_memory_frequency_error_near_paper(self, lab):
        errors = lab.validation("GTX Titan X").error_by_memory_frequency()
        # Paper: 4.9 % at 3505 MHz, 8.7 % at 810 MHz.
        assert errors[3505.0] == pytest.approx(4.9, abs=2.0)
        assert errors[810.0] == pytest.approx(8.7, abs=3.0)


class TestPowerSpan:
    def test_titan_x_power_span(self, lab):
        # Fig. 7: measured powers span roughly 40-248 W on the GTX Titan X.
        low, high = lab.validation("GTX Titan X").power_range_watts()
        assert low < 80.0
        assert high > 200.0
        assert high <= 250.0  # TDP is never exceeded


class TestPerComponentConsistency:
    def test_predicted_breakdown_tracks_utilization(self, lab):
        """A workload's biggest predicted component should be one it
        actually utilizes heavily."""
        from repro.analysis.breakdown import breakdown_report
        from repro.workloads import workload_by_name

        device = "GTX Titan X"
        report = breakdown_report(
            lab.model(device),
            lab.session(device),
            [workload_by_name("blackscholes")],
        )
        entry = report.entries[0]
        top = max(entry.component_watts, key=entry.component_watts.get)
        assert top is Component.DRAM  # Fig. 2A: DRAM-dominated workload
