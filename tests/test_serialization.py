"""Unit tests for model serialization (:mod:`repro.serialization`)."""

from __future__ import annotations

import json

import pytest

from repro.core.metrics import UtilizationVector
from repro.errors import ValidationError
from repro.hardware.components import ALL_COMPONENTS, Component
from repro.hardware.specs import FrequencyConfig, GTX_TITAN_X
from repro.serialization import (
    FORMAT,
    load_model,
    model_from_dict,
    model_to_dict,
    save_model,
)


@pytest.fixture(scope="module")
def fitted_model(lab):
    return lab.model("GTX Titan X")


def sample_utilizations() -> UtilizationVector:
    values = {component: 0.0 for component in ALL_COMPONENTS}
    values[Component.SP] = 0.5
    values[Component.DRAM] = 0.7
    return UtilizationVector(values=values)


class TestRoundTrip:
    def test_dict_roundtrip_preserves_predictions(self, fitted_model):
        clone = model_from_dict(model_to_dict(fitted_model))
        utilizations = sample_utilizations()
        for config in (
            FrequencyConfig(975, 3505),
            FrequencyConfig(595, 810),
            FrequencyConfig(1164, 4005),
        ):
            assert clone.predict_power(utilizations, config) == pytest.approx(
                fitted_model.predict_power(utilizations, config)
            )

    def test_dict_roundtrip_preserves_voltages(self, fitted_model):
        clone = model_from_dict(model_to_dict(fitted_model))
        for config in fitted_model.known_configurations():
            assert clone.voltage_at(config).v_core == pytest.approx(
                fitted_model.voltage_at(config).v_core
            )

    def test_file_roundtrip(self, fitted_model, tmp_path):
        path = save_model(fitted_model, tmp_path / "model.json")
        clone = load_model(path)
        assert clone.spec.name == "GTX Titan X"
        assert clone.parameters == fitted_model.parameters

    def test_serialized_form_is_plain_json(self, fitted_model, tmp_path):
        path = save_model(fitted_model, tmp_path / "model.json")
        data = json.loads(path.read_text())
        assert data["format"] == FORMAT
        assert data["device"] == "GTX Titan X"
        assert len(data["voltages"]) == 64

    def test_explicit_spec_override(self, fitted_model):
        clone = model_from_dict(
            model_to_dict(fitted_model), spec=GTX_TITAN_X
        )
        assert clone.spec is GTX_TITAN_X


class TestValidationErrors:
    def test_rejects_wrong_format(self):
        with pytest.raises(ValidationError):
            model_from_dict({"format": "something-else"})

    def test_rejects_wrong_version(self, fitted_model):
        data = model_to_dict(fitted_model)
        data["version"] = 99
        with pytest.raises(ValidationError):
            model_from_dict(data)

    def test_rejects_empty_voltages(self, fitted_model):
        data = model_to_dict(fitted_model)
        data["voltages"] = []
        with pytest.raises(ValidationError):
            model_from_dict(data)
