"""Unit tests for model serialization (:mod:`repro.serialization`)."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import UtilizationVector
from repro.core.model import DVFSPowerModel, ModelParameters, VoltageEstimate
from repro.errors import ReproError, SerializationError, ValidationError
from repro.hardware.components import (
    ALL_COMPONENTS,
    CORE_COMPONENTS,
    Component,
)
from repro.hardware.specs import FrequencyConfig, GTX_TITAN_X
from repro.serialization import (
    FORMAT,
    FORMAT_VERSION,
    load_model,
    model_from_dict,
    model_to_dict,
    save_model,
)


@pytest.fixture(scope="module")
def fitted_model(lab):
    return lab.model("GTX Titan X")


def sample_utilizations() -> UtilizationVector:
    values = {component: 0.0 for component in ALL_COMPONENTS}
    values[Component.SP] = 0.5
    values[Component.DRAM] = 0.7
    return UtilizationVector(values=values)


class TestRoundTrip:
    def test_dict_roundtrip_preserves_predictions(self, fitted_model):
        clone = model_from_dict(model_to_dict(fitted_model))
        utilizations = sample_utilizations()
        for config in (
            FrequencyConfig(975, 3505),
            FrequencyConfig(595, 810),
            FrequencyConfig(1164, 4005),
        ):
            assert clone.predict_power(utilizations, config) == pytest.approx(
                fitted_model.predict_power(utilizations, config)
            )

    def test_dict_roundtrip_preserves_voltages(self, fitted_model):
        clone = model_from_dict(model_to_dict(fitted_model))
        for config in fitted_model.known_configurations():
            assert clone.voltage_at(config).v_core == pytest.approx(
                fitted_model.voltage_at(config).v_core
            )

    def test_file_roundtrip(self, fitted_model, tmp_path):
        path = save_model(fitted_model, tmp_path / "model.json")
        clone = load_model(path)
        assert clone.spec.name == "GTX Titan X"
        assert clone.parameters == fitted_model.parameters

    def test_serialized_form_is_plain_json(self, fitted_model, tmp_path):
        path = save_model(fitted_model, tmp_path / "model.json")
        data = json.loads(path.read_text())
        assert data["format"] == FORMAT
        assert data["device"] == "GTX Titan X"
        assert len(data["voltages"]) == 64

    def test_explicit_spec_override(self, fitted_model):
        clone = model_from_dict(
            model_to_dict(fitted_model), spec=GTX_TITAN_X
        )
        assert clone.spec is GTX_TITAN_X


class TestValidationErrors:
    def test_rejects_wrong_format(self):
        with pytest.raises(ValidationError):
            model_from_dict({"format": "something-else"})

    def test_rejects_wrong_version(self, fitted_model):
        data = model_to_dict(fitted_model)
        data["version"] = 99
        with pytest.raises(ValidationError):
            model_from_dict(data)

    def test_rejects_empty_voltages(self, fitted_model):
        data = model_to_dict(fitted_model)
        data["voltages"] = []
        with pytest.raises(ValidationError):
            model_from_dict(data)


class TestHardening:
    """Explicit failure modes: every one a SerializationError (and through
    it a ReproError), never a bare KeyError/TypeError/JSONDecodeError."""

    def test_non_dict_payload_rejected(self):
        with pytest.raises(SerializationError, match="JSON object"):
            model_from_dict(["not", "a", "model"])

    def test_missing_version_named_explicitly(self, fitted_model):
        data = model_to_dict(fitted_model)
        del data["version"]
        with pytest.raises(SerializationError, match="no format version"):
            model_from_dict(data)

    def test_unknown_version_named_explicitly(self, fitted_model):
        data = model_to_dict(fitted_model)
        data["version"] = FORMAT_VERSION + 1
        with pytest.raises(
            SerializationError, match="unsupported model format version"
        ):
            model_from_dict(data)

    def test_missing_parameter_field_wrapped(self, fitted_model):
        data = model_to_dict(fitted_model)
        del data["parameters"]["beta2"]
        with pytest.raises(
            SerializationError, match="missing required field"
        ):
            model_from_dict(data)

    def test_malformed_field_wrapped(self, fitted_model):
        data = model_to_dict(fitted_model)
        data["parameters"]["beta0"] = "not-a-number"
        with pytest.raises(SerializationError, match="malformed field"):
            model_from_dict(data)

    def test_truncated_file_wrapped(self, fitted_model, tmp_path):
        path = save_model(fitted_model, tmp_path / "model.json")
        path.write_text(path.read_text()[:80])
        with pytest.raises(SerializationError, match="not valid JSON"):
            load_model(path)

    def test_hardening_errors_are_repro_errors(self, fitted_model, tmp_path):
        path = tmp_path / "model.json"
        path.write_text("{")
        with pytest.raises(ReproError):
            load_model(path)
        with pytest.raises(ReproError):
            model_from_dict(42)


# ModelParameters enforces non-negative betas and omegas.
finite = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)
voltage = st.floats(
    min_value=0.1, max_value=2.0, allow_nan=False, allow_infinity=False
)

_GRID = [
    FrequencyConfig(core, memory)
    for memory in GTX_TITAN_X.memory_frequencies_mhz
    for core in GTX_TITAN_X.core_frequencies_mhz
]


@st.composite
def models(draw) -> DVFSPowerModel:
    parameters = ModelParameters(
        beta0=draw(finite),
        beta1=draw(finite),
        beta2=draw(finite),
        beta3=draw(finite),
        omega_mem=draw(finite),
        omega_core={c: draw(finite) for c in CORE_COMPONENTS},
    )
    configs = draw(
        st.lists(
            st.sampled_from(_GRID), min_size=1, max_size=8, unique=True
        )
    )
    voltages = {
        config: VoltageEstimate(draw(voltage), draw(voltage))
        for config in configs
    }
    return DVFSPowerModel(
        spec=GTX_TITAN_X, parameters=parameters, voltages=voltages
    )


class TestRoundTripProperty:
    @settings(max_examples=50, deadline=None)
    @given(model=models())
    def test_dict_round_trip_is_exact(self, model):
        """model_from_dict(model_to_dict(m)) preserves every fitted
        artefact bit for bit, even through a JSON text round-trip."""
        clone = model_from_dict(
            json.loads(json.dumps(model_to_dict(model)))
        )
        assert clone.spec is GTX_TITAN_X
        assert clone.parameters == model.parameters
        assert set(clone.known_configurations()) == set(
            model.known_configurations()
        )
        for config in model.known_configurations():
            assert clone.voltage_at(config) == model.voltage_at(config)

    @settings(max_examples=25, deadline=None)
    @given(model=models())
    def test_to_dict_is_json_stable(self, model):
        """Serializing twice yields identical bytes — the registry's
        content-hash idempotence depends on this."""
        first = json.dumps(model_to_dict(model), indent=2)
        second = json.dumps(model_to_dict(model), indent=2)
        assert first == second
