"""Async prediction-server tests (:mod:`repro.serving.server`).

Covers the request path end to end: cache hits, coalescing determinism
under a seeded request stream, backpressure rejection, deadlines
(through the ``workers=0`` hook), stale-model fallback after a corrupted
rollout, and the JSON-lines TCP front-end.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.errors import (
    RequestTimeoutError,
    ServerClosedError,
    ServerOverloadedError,
    ServingError,
)
from repro.hardware.components import ALL_COMPONENTS, Component
from repro.serving.cache import PredictionCache
from repro.serving.registry import ModelRegistry
from repro.serving.server import PredictionServer, ServerConfig, serve_tcp
from repro.telemetry import TraceRecorder

_NAMES = tuple(component.value for component in ALL_COMPONENTS)


def run(coroutine):
    return asyncio.run(coroutine)


@pytest.fixture(scope="module")
def k40c_model(lab):
    return lab.model("Tesla K40c")


@pytest.fixture()
def registry(tmp_path, k40c_model):
    registry = ModelRegistry(tmp_path / "registry")
    registry.publish(k40c_model)
    return registry


def make_server(registry, recorder=None, **overrides):
    config = ServerConfig(**overrides)
    return PredictionServer(
        registry,
        "tesla-k40c",
        config=config,
        recorder=recorder if recorder is not None else TraceRecorder(),
    )


def request_rows(count: int, seed: int = 11):
    """A seeded stream of component-name request dicts, with repeats."""
    rng = np.random.default_rng(seed)
    base = [rng.uniform(0.0, 1.0, size=len(_NAMES)) for _ in range(5)]
    rows = []
    for _ in range(count):
        row = base[int(rng.integers(len(base)))]
        rows.append({name: float(u) for name, u in zip(_NAMES, row)})
    return rows


class TestRequestPath:
    def test_answers_match_the_scalar_model(self, registry, k40c_model):
        async def scenario():
            server = make_server(registry)
            await server.start()
            try:
                request = {name: 0.5 for name in _NAMES}
                response = await server.predict(request)
            finally:
                await server.stop()
            return response

        response = run(scenario())
        # The server predicts the quantized (canonical) vector; reconstruct
        # it the same way and compare bitwise against the scalar model.
        cache = PredictionCache()
        canonical = cache.dequantize(cache.quantize([0.5] * len(_NAMES)))
        from repro.core.metrics import UtilizationVector

        vector = UtilizationVector(
            values=dict(zip(ALL_COMPONENTS, (float(u) for u in canonical)))
        )
        expected = k40c_model.predict_power(vector, k40c_model.spec.reference)
        assert response.watts == expected
        assert response.model == "tesla-k40c"
        assert response.version == 1
        assert response.cached is False

    def test_input_forms_are_equivalent(self, registry, k40c_model):
        async def scenario():
            server = make_server(registry)
            await server.start()
            try:
                by_name = await server.predict({"sp": 0.4, "dram": 0.6})
                by_component = await server.predict(
                    {
                        **{c: 0.0 for c in ALL_COMPONENTS},
                        Component.SP: 0.4,
                        Component.DRAM: 0.6,
                    }
                )
            finally:
                await server.stop()
            return by_name, by_component

        by_name, by_component = run(scenario())
        assert by_name.watts == by_component.watts
        assert by_component.cached is True  # same cache key

    def test_grid_query_matches_engine_columns(self, registry):
        async def scenario():
            server = make_server(registry)
            await server.start()
            try:
                request = {name: 0.3 for name in _NAMES}
                full = await server.predict(request, grid=True)
                picked = await server.predict(
                    request, config=server.engine.configs[-1]
                )
            finally:
                await server.stop()
            return full, picked

        full, picked = run(scenario())
        assert full.watts is None
        assert len(full.grid_watts) == len(full.configs)
        assert picked.watts == full.grid_mapping()[full.configs[-1]]
        assert picked.cached is True

    def test_repeat_requests_hit_the_cache(self, registry):
        recorder = TraceRecorder()

        async def scenario():
            server = make_server(registry, recorder=recorder)
            await server.start()
            try:
                request = {name: 0.7 for name in _NAMES}
                first = await server.predict(request)
                second = await server.predict(request)
            finally:
                await server.stop()
            return first, second

        first, second = run(scenario())
        assert first.cached is False
        assert second.cached is True
        assert second.watts == first.watts
        assert recorder.counter("serving.requests") == 2
        assert recorder.counter("serving.cache_hits") == 1
        assert recorder.counter("serving.cache_misses") == 1
        assert recorder.counter("serving.batches") == 1

    def test_predict_before_start_rejected(self, registry):
        server = make_server(registry)
        with pytest.raises(ServerClosedError):
            run(server.predict({name: 0.1 for name in _NAMES}))

    def test_double_start_rejected(self, registry):
        async def scenario():
            server = make_server(registry)
            await server.start()
            try:
                with pytest.raises(ServingError, match="already running"):
                    await server.start()
            finally:
                await server.stop()

        run(scenario())


class TestCoalescingDeterminism:
    @staticmethod
    async def _replay(registry, rows):
        recorder = TraceRecorder()
        server = make_server(registry, recorder=recorder, max_queue=1024)
        await server.start()
        try:
            responses = await asyncio.gather(
                *(server.predict(row) for row in rows)
            )
        finally:
            await server.stop()
        watts = [response.watts for response in responses]
        return watts, recorder.counters()

    def test_seeded_stream_replays_identically(self, registry):
        rows = request_rows(80, seed=23)
        first_watts, first_counters = run(self._replay(registry, rows))
        second_watts, second_counters = run(self._replay(registry, rows))
        assert first_watts == second_watts
        assert first_counters == second_counters
        # The stream has only 5 distinct vectors: everything beyond the
        # first occurrence of each was answered by the cache or coalesced
        # onto an in-flight computation — never recomputed.
        assert first_counters["serving.requests"] == 80
        assert first_counters["serving.batched_predictions"] == 5
        assert (
            first_counters.get("serving.cache_hits", 0)
            + first_counters.get("serving.coalesced", 0)
            == 75
        )

    def test_concurrent_identical_requests_compute_once(self, registry):
        recorder = TraceRecorder()

        async def scenario():
            server = make_server(registry, recorder=recorder)
            await server.start()
            try:
                request = {name: 0.9 for name in _NAMES}
                responses = await asyncio.gather(
                    *(server.predict(request) for _ in range(16))
                )
            finally:
                await server.stop()
            return responses

        responses = run(scenario())
        assert len({response.watts for response in responses}) == 1
        assert recorder.counter("serving.batched_predictions") == 1
        assert recorder.counter("serving.coalesced") == 15


class TestBackpressureAndDeadlines:
    def test_full_queue_rejects_fast(self, registry):
        recorder = TraceRecorder()
        rows = [
            {name: round(0.1 * (index + 1), 3) for name in _NAMES}
            for index in range(3)
        ]

        async def scenario():
            # No workers: nothing drains, so the third distinct vector
            # must be rejected at admission.
            server = make_server(
                registry, recorder=recorder, workers=0, max_queue=2
            )
            await server.start()
            try:
                outcomes = await asyncio.gather(
                    *(server.predict(row, timeout=0.05) for row in rows),
                    return_exceptions=True,
                )
            finally:
                await server.stop()
            return outcomes

        outcomes = run(scenario())
        rejected = [
            o for o in outcomes if isinstance(o, ServerOverloadedError)
        ]
        timed_out = [
            o for o in outcomes if isinstance(o, RequestTimeoutError)
        ]
        assert len(rejected) == 1
        assert len(timed_out) == 2
        assert recorder.counter("serving.rejections") == 1
        assert recorder.counter("serving.timeouts") == 2

    def test_deadline_raises_timeout(self, registry):
        async def scenario():
            server = make_server(registry, workers=0)
            await server.start()
            try:
                with pytest.raises(RequestTimeoutError, match="not ready"):
                    await server.predict(
                        {name: 0.2 for name in _NAMES}, timeout=0.01
                    )
            finally:
                await server.stop()

        run(scenario())

    def test_stop_fails_queued_requests(self, registry):
        async def scenario():
            server = make_server(registry, workers=0)
            await server.start()
            pending = asyncio.ensure_future(
                server.predict({name: 0.2 for name in _NAMES}, timeout=30.0)
            )
            await asyncio.sleep(0)  # let the request enqueue
            await server.stop()
            with pytest.raises(ServerClosedError):
                await pending

        run(scenario())


class TestDeadlineQueueRaces:
    """Deadline expiry vs. queue-full rejection (ISSUE 7 satellite).

    ``workers=0`` freezes the drain side, so each race interleaving can be
    staged deterministically and the queue resolved by hand. The shield in
    ``predict`` preserves the queued computation past its waiter's
    deadline — that must warm the cache, not leak cancelled futures or
    leave the queue counter skewed.
    """

    def test_expired_waiter_leaves_no_leaked_state(self, registry):
        async def scenario():
            server = make_server(registry, workers=0, max_queue=4)
            await server.start()
            try:
                row = {name: 0.3 for name in _NAMES}
                with pytest.raises(RequestTimeoutError):
                    await server.predict(row, timeout=0.01)
                # The waiter is gone but its shielded computation is not:
                # still one queued batch, one in-flight future — no skew.
                assert server.queue_depth == 1
                assert len(server._inflight) == 1
                (shared,) = server._inflight.values()
                assert not shared.cancelled()

                server._process_batch([server._queue.get_nowait()])
                assert server._inflight == {}
                assert server.queue_depth == 0
                # The expired waiter's work warmed the cache: the same
                # vector now answers instantly, even with no workers.
                response = await server.predict(row, timeout=0.01)
                assert response.cached is True
            finally:
                await server.stop()

        run(scenario())

    def test_late_waiter_coalesces_onto_expired_computation(self, registry):
        async def scenario():
            server = make_server(registry, workers=0, max_queue=2)
            await server.start()
            try:
                row = {name: 0.4 for name in _NAMES}
                with pytest.raises(RequestTimeoutError):
                    await server.predict(row, timeout=0.01)
                # A second waiter for the same vector must coalesce onto
                # the surviving future instead of enqueueing again.
                later = asyncio.ensure_future(
                    server.predict(row, timeout=5.0)
                )
                await asyncio.sleep(0)
                assert server.queue_depth == 1

                server._process_batch([server._queue.get_nowait()])
                response = await later
                assert response.cached is False
                assert response.watts is not None
                assert server.queue_depth == 0
                assert server._inflight == {}
            finally:
                await server.stop()

        run(scenario())

    def test_queue_full_rejection_leaves_no_trace(self, registry):
        async def scenario():
            server = make_server(registry, workers=0, max_queue=2)
            await server.start()
            rows = [
                {name: round(0.1 * (index + 1), 3) for name in _NAMES}
                for index in range(3)
            ]
            try:
                first = asyncio.ensure_future(
                    server.predict(rows[0], timeout=5.0)
                )
                second = asyncio.ensure_future(
                    server.predict(rows[1], timeout=5.0)
                )
                await asyncio.sleep(0)  # both enqueue; queue now full
                with pytest.raises(ServerOverloadedError):
                    await server.predict(rows[2], timeout=5.0)
                # The rejected vector never touched queue or in-flight
                # state — the counter is not skewed by the rejection.
                assert server.queue_depth == 2
                assert len(server._inflight) == 2
                rejected_key = (
                    server.record.version_key,
                    server.cache.quantize(
                        [rows[2][name] for name in _NAMES]
                    ),
                )
                assert rejected_key not in server._inflight

                batch = [server._queue.get_nowait() for _ in range(2)]
                server._process_batch(batch)
                answered = await asyncio.gather(first, second)
                assert all(r.watts is not None for r in answered)
                assert server._inflight == {}
                assert server.queue_depth == 0
            finally:
                await server.stop()

        run(scenario())


class TestRollout:
    def test_refresh_swaps_to_newer_version(
        self, registry, k40c_model, quiet_lab
    ):
        recorder = TraceRecorder()

        async def scenario():
            server = make_server(registry, recorder=recorder)
            await server.start()
            request = {name: 0.5 for name in _NAMES}
            try:
                before = await server.predict(request)
                registry.publish(
                    quiet_lab.model("Tesla K40c"), name="tesla-k40c"
                )
                assert await server.refresh() is True
                after = await server.predict(request)
            finally:
                await server.stop()
            return before, after, server.record.version

        before, after, version = run(scenario())
        assert version == 2
        assert after.version == 2
        # The new engine answered: the old cache entry keyed by v1 missed.
        assert after.cached is False
        assert after.watts != before.watts
        assert recorder.counter("serving.model_swaps") == 1

    def test_corrupt_rollout_degrades_to_stale_model(
        self, registry, quiet_lab
    ):
        recorder = TraceRecorder()

        async def scenario():
            server = make_server(registry, recorder=recorder)
            await server.start()
            request = {name: 0.5 for name in _NAMES}
            try:
                before = await server.predict(request)
                second = registry.publish(
                    quiet_lab.model("Tesla K40c"), name="tesla-k40c"
                )
                good_bytes = second.path.read_bytes()
                second.path.write_bytes(b"garbage")

                assert await server.refresh() is False
                assert server.stale is True
                assert server.record.version == 1
                during = await server.predict(request)

                second.path.write_bytes(good_bytes)
                assert await server.refresh() is True
                assert server.stale is False
            finally:
                await server.stop()
            return before, during, server.record.version

        before, during, version = run(scenario())
        # Degraded but live: the stale v1 model kept answering (cached).
        assert during.version == 1
        assert during.watts == before.watts
        assert during.cached is True
        assert version == 2
        assert recorder.counter("serving.stale_fallbacks") == 1
        assert recorder.counter("serving.model_swaps") == 1

    def test_refresh_requires_running_server(self, registry):
        server = make_server(registry)
        with pytest.raises(ServerClosedError):
            run(server.refresh())


class TestTelemetrySpans:
    def test_request_stages_appear_in_span_tree(self, registry):
        recorder = TraceRecorder()

        async def scenario():
            server = make_server(registry, recorder=recorder)
            await server.start()
            try:
                await server.predict({name: 0.4 for name in _NAMES})
            finally:
                await server.stop()

        run(scenario())
        paths = recorder.span_tree()
        assert ("serving.admit",) in paths
        assert ("serving.batch",) in paths
        assert ("serving.batch", "serving.predict") in paths


class TestTcpFrontend:
    def test_json_lines_round_trip(self, registry):
        async def scenario():
            server = make_server(registry)
            await server.start()
            tcp, finished = await serve_tcp(server, port=0, max_requests=4)
            port = tcp.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)

            async def ask(payload):
                writer.write(json.dumps(payload).encode() + b"\n")
                await writer.drain()
                return json.loads(await reader.readline())

            utilizations = {name: 0.5 for name in _NAMES}
            try:
                single = await ask({"utilizations": utilizations})
                grid = await ask(
                    {"utilizations": utilizations, "grid": True}
                )
                best = await ask(
                    {"utilizations": utilizations, "best": "energy"}
                )
                bad = await ask({"utilizations": {"tensor": 0.5}})
            finally:
                writer.close()
                await asyncio.wait_for(finished.wait(), timeout=5.0)
                tcp.close()
                await tcp.wait_closed()
                await server.stop()
            return single, grid, best, bad

        single, grid, best, bad = run(scenario())
        assert single["ok"] is True
        assert single["watts"] > 0
        assert single["model"] == "tesla-k40c"
        assert grid["ok"] is True
        assert len(grid["grid"]) == 4  # Tesla K40c grid size
        grid_watts = {
            (core, memory): watts for core, memory, watts in grid["grid"]
        }
        assert best["ok"] is True
        assert best["best"]["watts"] == min(grid_watts.values())
        assert bad["ok"] is False
        assert bad["code"] == 400
        assert "unknown utilization" in bad["error"]

    def test_malformed_json_gets_400(self, registry):
        async def scenario():
            server = make_server(registry)
            await server.start()
            tcp, _ = await serve_tcp(server, port=0)
            port = tcp.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                writer.write(b"this is not json\n")
                await writer.drain()
                payload = json.loads(await reader.readline())
            finally:
                writer.close()
                tcp.close()
                await tcp.wait_closed()
                await server.stop()
            return payload

        payload = run(scenario())
        assert payload["ok"] is False
        assert payload["code"] == 400
