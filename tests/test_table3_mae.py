"""End-to-end Table-III fidelity gate (ISSUE 5, satellite).

Runs the paper's whole pipeline from a cold start — fit the DVFS-aware
model on the 83 microbenchmarks, validate on the 26 unseen Table-III
workloads over the full V-F grid — and pins the resulting mean/max
absolute error per device inside explicit tolerance bands. Unlike the
unit suites (which exercise layers in isolation) and the golden-number
suite (which reads the shared session ``lab`` fixture), this file owns
its sessions, so an estimator regression cannot hide behind a cached
fixture or a unit-level pass.

The bands bracket the reference run (MAE 6.14 / 5.84 / 12.26 %, in line
with the paper's Fig. 7 range) with +-0.75 pp of slack for numerical-
library drift; the max-error ceilings are looser (outliers are noisy)
but still catch a broken fit, which typically blows MAE past 20 %.

One sharded variant re-runs the GTX Titan X pipeline through
``fit_power_model(..., workers=2)`` and must land on the *same* MAE to
the last bit — the tentpole's bitwise-equivalence contract observed from
the far end of the pipeline.
"""

from __future__ import annotations

import pytest

from repro.analysis.validation import validate_model
from repro.core.estimation import fit_power_model
from repro.driver.session import ProfilingSession
from repro.hardware.gpu import SimulatedGPU
from repro.hardware.specs import GTX_TITAN_X, TESLA_K40C, TITAN_XP
from repro.workloads import all_workloads

#: device -> (expected MAE %, MAE tolerance pp, max-error ceiling %).
TABLE3_BANDS = {
    "Titan Xp": (6.14, 0.75, 45.0),
    "GTX Titan X": (5.84, 0.75, 40.0),
    "Tesla K40c": (12.26, 1.0, 65.0),
}
SPECS = {
    "Titan Xp": TITAN_XP,
    "GTX Titan X": GTX_TITAN_X,
    "Tesla K40c": TESLA_K40C,
}


def _pipeline_mae(spec, workers: int = 0):
    session = ProfilingSession(SimulatedGPU(spec))
    model, _ = fit_power_model(session, workers=workers)
    return validate_model(model, session, all_workloads())


@pytest.mark.parametrize("device", sorted(TABLE3_BANDS))
def test_pipeline_mae_within_band(device):
    expected, tolerance, max_ceiling = TABLE3_BANDS[device]
    result = _pipeline_mae(SPECS[device])
    assert result.mean_absolute_error_percent == pytest.approx(
        expected, abs=tolerance
    ), (
        f"{device}: end-to-end Table-III MAE "
        f"{result.mean_absolute_error_percent:.2f}% left the "
        f"{expected:.2f}+-{tolerance:.2f} pp band — the estimator or the "
        "measurement chain regressed"
    )
    assert result.max_absolute_error_percent < max_ceiling
    assert result.records, "validation sweep produced no records"


def test_sharded_pipeline_hits_identical_mae():
    serial = _pipeline_mae(GTX_TITAN_X)
    sharded = _pipeline_mae(GTX_TITAN_X, workers=2)
    assert (
        sharded.mean_absolute_error_percent
        == serial.mean_absolute_error_percent
    )
    assert (
        sharded.max_absolute_error_percent
        == serial.max_absolute_error_percent
    )
