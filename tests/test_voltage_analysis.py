"""Unit tests for the voltage-curve analysis (:mod:`repro.analysis.voltage`)."""

from __future__ import annotations

import pytest

from repro.analysis.voltage import (
    VoltageCurveFit,
    compare_curves,
    fit_voltage_regions,
)
from repro.errors import ValidationError


def synthetic_curve(flat, breakpoint, slope, frequencies):
    return {
        f: flat if f <= breakpoint else flat + slope * (f - breakpoint)
        for f in frequencies
    }


class TestFitVoltageRegions:
    def test_recovers_flat_then_linear(self):
        frequencies = list(range(500, 1250, 50))
        curve = synthetic_curve(0.85, 700, 5e-4, frequencies)
        fit = fit_voltage_regions(curve)
        assert fit.flat_level == pytest.approx(0.85, abs=1e-6)
        assert fit.breakpoint_mhz == 700
        assert fit.slope_per_mhz == pytest.approx(5e-4, rel=1e-6)
        assert fit.rmse == pytest.approx(0.0, abs=1e-9)
        assert fit.has_flat_region

    def test_all_flat_curve(self):
        curve = {f: 0.9 for f in range(500, 1200, 100)}
        fit = fit_voltage_regions(curve)
        assert fit.flat_level == pytest.approx(0.9)
        assert fit.slope_per_mhz == 0.0
        assert not fit.has_flat_region  # no linear region = no "two regions"

    def test_fully_linear_curve(self):
        frequencies = list(range(500, 1200, 100))
        curve = {f: 0.5 + 5e-4 * f for f in frequencies}
        fit = fit_voltage_regions(curve)
        # Breakpoint collapses to the first level; the rest is linear.
        assert fit.breakpoint_mhz == 500
        assert fit.rmse < 1e-9

    def test_noisy_curve_breakpoint_within_one_level(self):
        import numpy as np

        rng = np.random.default_rng(0)
        frequencies = list(range(500, 1250, 50))
        clean = synthetic_curve(0.85, 700, 5e-4, frequencies)
        noisy = {f: v + 0.004 * rng.standard_normal() for f, v in clean.items()}
        fit = fit_voltage_regions(noisy)
        assert abs(fit.breakpoint_mhz - 700) <= 50

    def test_voltage_at_evaluates_fit(self):
        fit = VoltageCurveFit(
            breakpoint_mhz=700, flat_level=0.85, slope_per_mhz=5e-4, rmse=0.0
        )
        assert fit.voltage_at(600) == 0.85
        assert fit.voltage_at(900) == pytest.approx(0.95)

    def test_needs_three_levels(self):
        with pytest.raises(ValidationError):
            fit_voltage_regions({500: 0.9, 600: 0.95})


class TestCompareCurves:
    def test_identical_curves(self):
        curve = {500: 0.9, 700: 0.95, 900: 1.0}
        stats = compare_curves(curve, dict(curve))
        assert stats["max_abs_error"] == 0.0
        assert stats["rmse"] == 0.0

    def test_known_offset(self):
        a = {500: 0.9, 700: 0.95}
        b = {500: 0.92, 700: 0.97}
        stats = compare_curves(a, b)
        assert stats["mean_abs_error"] == pytest.approx(0.02)

    def test_only_common_frequencies_compared(self):
        a = {500: 0.9, 700: 0.95, 900: 10.0}
        b = {500: 0.9, 700: 0.95, 1100: -10.0}
        stats = compare_curves(a, b)
        assert stats["max_abs_error"] == 0.0

    def test_disjoint_curves_rejected(self):
        with pytest.raises(ValidationError):
            compare_curves({500: 0.9}, {600: 0.9})
